"""The warm serving daemon: resident caches behind a small HTTP front end.

One-shot CLI invocations pay the full cold-start bill on every run:
interpreter boot, import graph, chain construction, and -- dominating
everything for repeated scenarios -- recomputing results whose inputs
did not change.  The daemon keeps the expensive state **resident**
instead:

* one process-wide :class:`~repro.runtime.sweep.SweepCache` (bounded
  LRU, optionally file-backed) so a sweep point computed for any
  request is a dictionary lookup for every later request;
* one :class:`~repro.runtime.buildfarm.ArtifactStore` so tailored-shell
  builds resolve from content-addressed artifacts;
* the process-wide memos (sweep chains, tailoring, resolve) that the
  runtime already keeps -- now thread-safe -- stay hot across requests.

The HTTP surface is deliberately tiny and stdlib-only (asyncio
``start_server`` plus a hand-rolled HTTP/1.1 parser): this is an
operator-facing control plane for a simulation framework, not a
general web server.  Connections are ``Connection: close``; request
bodies are Scenario JSON exactly as ``repro.cli`` consumes from disk.

Endpoints::

    GET  /healthz          liveness + uptime + warm-state summary
    GET  /metrics          Prometheus text exposition of the daemon registry
    GET  /stats            JSON: registry snapshot, coalescer, admission, cache
    GET  /slo              evaluate the serving SLOs against the registry
    POST /v1/sweep         execute a sweep scenario (body: Scenario JSON)
    POST /v1/fleet         execute a fleet scenario
    POST /v1/build         execute a build scenario
    POST /v1/run           execute any scenario (kind from the body)
    POST /v1/shutdown      clean shutdown (only with --allow-remote-shutdown)

Execution requests accept ``?slo=default`` (the stock objectives for
the scenario's kind via :func:`repro.service.slo_monitor_for`; arbitrary
spec *files* are CLI-only -- an HTTP query must not name server paths)
and identify their tenant via the ``X-Tenant`` header.

Request flow: quota check (429) -> coalescer join -- followers attach
to an in-flight identical run for free -> leaders claim a bounded
queue slot (503 when full) and execute on a thread pool.  Responses for
identical scenarios are byte-identical no matter how they were served;
see :mod:`repro.serve.coalesce` and ``docs/serving.md``.
"""

import asyncio
import json
import multiprocessing
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ConfigurationError, HarmoniaError
from repro.runtime.buildfarm import ArtifactStore
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.sweep import SweepCache
from repro.scenario import Scenario
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import RequestCoalescer
from repro.service import run_scenario, slo_monitor_for

_MAX_REQUEST_LINE = 8_192
_MAX_HEADERS = 100
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Raised by handlers to produce a non-200 JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServeConfig:
    """Everything the daemon needs; mirrors the ``repro.cli serve`` flags."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = let the kernel pick (tests)
    exec_workers: int = 4              # scenario-execution thread pool
    pool_workers: int = 4              # resident sweep ProcessPool width
    max_queue: int = 32                # bounded execution queue (503 beyond)
    quota_rps: float = 0.0             # per-tenant tokens/s; <= 0 disables
    quota_burst: Optional[float] = None
    cache_entries: Optional[int] = 4_096   # SweepCache LRU bound; None = unbounded
    cache_file: Optional[str] = None   # load at boot, save on clean shutdown
    artifact_dir: Optional[str] = None  # ArtifactStore root; None = in-memory
    max_body: int = 1 << 20            # request body ceiling (413 beyond)
    allow_remote_shutdown: bool = False

    def validate(self) -> None:
        if self.exec_workers < 1:
            raise ConfigurationError("exec_workers must be >= 1")
        if self.pool_workers < 1:
            raise ConfigurationError("pool_workers must be >= 1")
        if self.max_body < 1:
            raise ConfigurationError("max_body must be >= 1")
        # max_queue / quota / cache bounds validate in their own types.


class ServingDaemon:
    """The long-lived server; owns all warm state.

    Construct once, then either :meth:`run` (blocking, installs signal
    handlers when on the main thread) or drive it from a test thread via
    :func:`serve_in_thread`.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.metrics = MetricsRegistry()
        self.cache = SweepCache(max_entries=self.config.cache_entries)
        self.cache.attach_metrics(self.metrics)
        if self.config.cache_file:
            try:
                self.cache.load(self.config.cache_file)
            except FileNotFoundError:
                pass  # first boot: the file appears on clean shutdown
        self.store = ArtifactStore(self.config.artifact_dir)
        self.coalescer = RequestCoalescer()
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            quota_rps=self.config.quota_rps,
            quota_burst=self.config.quota_burst,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.exec_workers,
            thread_name_prefix="serve-exec")
        # One resident ProcessPool for the whole daemon lifetime: sweep
        # requests whose points cannot fuse (traces, forced DES) fan out
        # to it instead of spawning a pool per request.  Construction
        # starts no processes; workers appear lazily on first dispatch.
        # The spawn start method keeps worker creation safe from the
        # multi-threaded request executor (a fork could inherit another
        # request thread's held locks).
        self.pool = ProcessPoolExecutor(
            max_workers=self.config.pool_workers,
            mp_context=multiprocessing.get_context("spawn"))
        self.started_at = time.monotonic()
        self.port: Optional[int] = None   # bound port, set once listening
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._requests = 0
        self._requests_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def run(self, on_ready: Optional[Callable[[str, int], None]] = None) -> int:
        """Serve until stopped; returns 0 on clean shutdown."""
        asyncio.run(self._main(on_ready))
        return 0

    def request_shutdown(self) -> None:
        """Begin a clean shutdown; safe from any thread or signal context."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    async def _main(self, on_ready: Optional[Callable[[str, int], None]]) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._install_signal_handlers()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()
        if on_ready is not None:
            on_ready(self.config.host, self.port)
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            self.executor.shutdown(wait=True)
            self.pool.shutdown(wait=True)
            if self.config.cache_file:
                self.cache.save(self.config.cache_file)

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # serve_in_thread: stopped via request_shutdown()
        loop = self._loop
        assert loop is not None and self._stop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._stop.set)
            except (NotImplementedError, RuntimeError):
                signal.signal(signum, lambda *_: self.request_shutdown())

    # ------------------------------------------------------------------ #
    # HTTP plumbing                                                      #
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        start = time.perf_counter()
        status, body, extra = 500, b"", {}
        try:
            method, target, headers, payload = await self._read_request(reader)
            self.metrics.increment("serve.requests")
            with self._requests_lock:
                self._requests += 1
            status, body, extra = await self._route(
                method, target, headers, payload)
        except _HttpError as exc:
            self.metrics.increment("serve.requests")
            status, body = exc.status, _error_body(exc.status, exc.message)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # a handler bug, not a client error
            status, body = 500, _error_body(500, f"internal error: {exc}")
        try:
            self.metrics.increment(f"serve.responses.{status}")
            elapsed = time.perf_counter() - start
            self.metrics.observe("serve.request.wall_ps",
                                 int(elapsed * 1e12))
            self.metrics.set_gauge("serve.queue.depth",
                                   self.admission.queue_depth)
            writer.write(_render_response(status, body, extra))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        if len(request_line) > _MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(400, "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise _HttpError(400, "negative Content-Length")
        if length > self.config.max_body:
            raise _HttpError(
                413, f"body of {length} bytes exceeds the "
                f"{self.config.max_body}-byte limit")
        payload = await reader.readexactly(length) if length else b""
        return method, target, headers, payload

    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], payload: bytes
                     ) -> Tuple[int, bytes, Dict[str, str]]:
        url = urlsplit(target)
        path = url.path
        query = dict(parse_qsl(url.query))
        if path in ("/healthz", "/metrics", "/stats", "/slo"):
            if method != "GET":
                raise _HttpError(405, f"{path} is GET-only")
            return getattr(self, "_get_" + path.strip("/"))()
        if path == "/v1/shutdown":
            if method != "POST":
                raise _HttpError(405, "/v1/shutdown is POST-only")
            if not self.config.allow_remote_shutdown:
                raise _HttpError(
                    404, "remote shutdown is disabled; start the daemon "
                    "with --allow-remote-shutdown or send SIGTERM")
            self.request_shutdown()
            return 200, _json_body({"status": "shutting down"}), {}
        if path.startswith("/v1/"):
            kind = path[len("/v1/"):]
            if kind not in ("sweep", "fleet", "build", "run"):
                raise _HttpError(404, f"unknown endpoint {path!r}")
            if method != "POST":
                raise _HttpError(405, f"{path} is POST-only")
            return await self._execute(kind, headers, payload, query)
        raise _HttpError(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------------ #
    # read-only endpoints                                                #
    # ------------------------------------------------------------------ #

    def _get_healthz(self) -> Tuple[int, bytes, Dict[str, str]]:
        with self._requests_lock:
            requests = self._requests
        return 200, _json_body({
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": requests,
            "warm": {
                "sweep_cache_entries": len(self.cache),
                "artifact_store_entries": len(self.store),
            },
        }), {}

    def _get_metrics(self) -> Tuple[int, bytes, Dict[str, str]]:
        from repro.obs.prometheus import to_prometheus_text

        text = to_prometheus_text(self.metrics)
        return 200, text.encode("utf-8"), {
            "Content-Type": "text/plain; version=0.0.4; charset=utf-8"}

    def _get_stats(self) -> Tuple[int, bytes, Dict[str, str]]:
        return 200, _json_body({
            "metrics": self.metrics.snapshot(),
            "coalescer": self.coalescer.counters(),
            "admission": {
                "queue_depth": self.admission.queue_depth,
                "max_queue": self.admission.max_queue,
                "shed": self.admission.shed,
                "quota_rejections": self.admission.quota_rejections,
                "tenants": self.admission.tenants(),
            },
            "cache": {
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                "evictions": self.cache.evictions,
            },
            "pool": {
                "max_workers": self.config.pool_workers,
                "resident": True,
            },
        }), {}

    def _get_slo(self) -> Tuple[int, bytes, Dict[str, str]]:
        monitor = slo_monitor_for("serve", "default")
        report = monitor.evaluate(self.metrics)
        body = dict(report.to_json())
        body["exit_code"] = report.exit_code
        return 200, _json_body(body), {}

    # ------------------------------------------------------------------ #
    # scenario execution                                                 #
    # ------------------------------------------------------------------ #

    async def _execute(self, endpoint_kind: str, headers: Dict[str, str],
                       payload: bytes, query: Dict[str, str]
                       ) -> Tuple[int, bytes, Dict[str, str]]:
        tenant = headers.get("x-tenant", "default")
        slo = query.get("slo")
        if slo is not None and slo != "default":
            raise _HttpError(
                400, "only ?slo=default is accepted over HTTP; file-based "
                "SLO specs are a CLI feature")
        scenario = self._parse_scenario(payload)
        if endpoint_kind != "run" and scenario.kind != endpoint_kind:
            raise _HttpError(
                400, f"scenario kind {scenario.kind!r} does not match "
                f"endpoint /v1/{endpoint_kind}; use /v1/run or "
                f"/v1/{scenario.kind}")

        if not self.admission.check_quota(tenant):
            self.metrics.increment("serve.quota_rejected")
            raise _HttpError(
                429, f"tenant {tenant!r} exceeded its "
                f"{self.admission.quota_rps:g} req/s quota")

        key = (scenario.kind, scenario.scenario_id(), slo)
        leader, future = self.coalescer.join(key)
        if leader:
            self.metrics.increment("serve.coalesce.executed")
            if not self.admission.try_enter():
                self.metrics.increment("serve.shed")
                error = _HttpError(
                    503, f"execution queue full "
                    f"({self.admission.max_queue} in flight); retry later")
                self.coalescer.reject(key, future, error)
            else:
                def _work() -> None:
                    try:
                        kwargs: Dict[str, Any] = {}
                        if scenario.kind == "sweep":
                            # Cold-cache sweeps go through the fused
                            # planner; points that cannot fuse reuse
                            # the resident pool instead of spawning one.
                            kwargs = {"workers": self.config.pool_workers,
                                      "executor": self.pool}
                        outcome = run_scenario(
                            scenario, cache=self.cache, store=self.store,
                            slo=slo, **kwargs)
                        self._record_execution(outcome)
                        body = outcome.response_text().encode("utf-8")
                        self.coalescer.resolve(key, future, body)
                    except BaseException as exc:
                        self.coalescer.reject(key, future, exc)
                    finally:
                        self.admission.leave()

                self.executor.submit(_work)
        else:
            self.metrics.increment("serve.coalesce.attached")

        try:
            body = await asyncio.wrap_future(future)
        except _HttpError:
            raise
        except ConfigurationError as exc:
            raise _HttpError(400, str(exc))
        except HarmoniaError as exc:
            raise _HttpError(400, str(exc))
        except Exception as exc:
            raise _HttpError(500, f"execution failed: {exc}")
        return 200, body, {
            "X-Scenario-Id": key[1],
            "X-Coalesced": "leader" if leader else "follower",
        }

    def _record_execution(self, outcome: Any) -> None:
        """Fold one execution's planner provenance into the registry.

        ``serve.sweep.fused_points`` / ``pooled_points`` count how the
        cold work of sweep requests actually ran; ``serve.pool.dispatches``
        counts resident-pool fan-outs and ``serve.pool.request_spawns``
        stays zero for as long as no request ever spawned its own
        executor -- the invariant ``benchmarks/serve_smoke.py`` gates.
        """
        if outcome.kind != "sweep":
            return
        meta = outcome.meta
        if meta.get("fused_points"):
            self.metrics.increment("serve.sweep.fused_points",
                                   meta["fused_points"])
            self.metrics.increment("serve.sweep.fused_groups",
                                   meta["fused_groups"])
        if meta.get("pooled_points"):
            self.metrics.increment("serve.sweep.pooled_points",
                                   meta["pooled_points"])
            self.metrics.increment("serve.pool.dispatches")
        if meta.get("spawned_pool"):
            self.metrics.increment("serve.pool.request_spawns")

    def _parse_scenario(self, payload: bytes) -> Scenario:
        if not payload:
            raise _HttpError(400, "empty body; POST a Scenario JSON object")
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}")
        try:
            return Scenario.from_json(data)
        except HarmoniaError as exc:
            raise _HttpError(400, str(exc))


# ---------------------------------------------------------------------- #
# response formatting                                                    #
# ---------------------------------------------------------------------- #

def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _error_body(status: int, message: str) -> bytes:
    return _json_body({"error": message, "status": status})


def _render_response(status: int, body: bytes,
                     extra: Dict[str, str]) -> bytes:
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    headers.update(extra)
    if status == 429:
        headers.setdefault("Retry-After", "1")
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# ---------------------------------------------------------------------- #
# in-thread harness (tests, benchmarks)                                  #
# ---------------------------------------------------------------------- #

class DaemonHandle:
    """A daemon running on a background thread; context-manager friendly."""

    def __init__(self, daemon: ServingDaemon, thread: threading.Thread) -> None:
        self.daemon = daemon
        self.thread = thread

    @property
    def host(self) -> str:
        return self.daemon.config.host

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    def stop(self, timeout: float = 10.0) -> None:
        self.daemon.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("serving daemon did not shut down in time")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(config: Optional[ServeConfig] = None,
                    ready_timeout: float = 10.0) -> DaemonHandle:
    """Start a daemon on a daemon thread and wait until it is listening."""
    daemon = ServingDaemon(config)
    thread = threading.Thread(target=daemon.run, name="serve-daemon",
                              daemon=True)
    thread.start()
    if not daemon.ready.wait(timeout=ready_timeout):
        raise RuntimeError("serving daemon failed to start listening")
    return DaemonHandle(daemon, thread)
