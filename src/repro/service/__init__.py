"""Shared service layer: one execution path for CLI and HTTP callers.

See :mod:`repro.service.runs`; ``docs/serving.md`` documents the
daemon-facing contract.
"""

from repro.service.runs import (
    SERVICE_KINDS,
    ServiceResult,
    build_payload,
    run_build_service,
    run_fleet_service,
    run_orchestrator_service,
    run_scenario,
    run_sweep_service,
    slo_monitor_for,
    sweep_payload,
)

__all__ = [
    "SERVICE_KINDS",
    "ServiceResult",
    "build_payload",
    "run_build_service",
    "run_fleet_service",
    "run_orchestrator_service",
    "run_scenario",
    "run_sweep_service",
    "slo_monitor_for",
    "sweep_payload",
]
