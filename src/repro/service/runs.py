"""Scenario execution as reusable service functions.

The CLI subcommands and the serving daemon (:mod:`repro.serve`) must
behave identically -- same execution path, same SLO evaluation, same
exit-code semantics -- so both call the functions here instead of
re-implementing run loops.  Each function takes a validated
:class:`repro.scenario.Scenario` plus execution options (worker count,
resident cache/store, SLO spec) and returns a :class:`ServiceResult`:

* ``result`` -- the tier-native outcome object
  (:class:`~repro.runtime.sweep.SweepResult`,
  :class:`~repro.runtime.fleet.FleetResult`,
  :class:`~repro.runtime.buildfarm.BuildReport`) for callers that format
  tables or write artifacts;
* ``payload`` -- a **deterministic** JSON projection of the outcome: a
  pure function of the scenario, independent of cache temperature,
  worker count, or wall-clock.  Execution provenance (per-point
  ``cached`` flags, built-vs-cached build statuses) is stripped, which
  is what lets the daemon serve byte-identical responses for identical
  scenarios no matter which request warmed the caches;
* ``slo`` -- the evaluated :class:`~repro.obs.slo.SloReport` when an SLO
  spec was given, and ``exit_code`` derived from it exactly the way the
  CLI's ``--slo`` flags always exited (0 ok, 4 on violations).

SLO specs resolve through one shared :func:`slo_monitor_for`, so
``--slo default`` and an HTTP ``?slo=default`` query pick the same
objectives per scenario kind.
"""

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.context import SimContext
from repro.scenario import Scenario

#: Scenario kinds the service layer can execute (== SCENARIO_KINDS).
SERVICE_KINDS = ("sweep", "fleet", "build")


def slo_monitor_for(kind: str, spec: Optional[str]):
    """Resolve an ``--slo`` argument into a monitor; one path for all.

    ``None`` disables checking; ``"default"`` picks the stock objectives
    for ``kind`` (fleet/sweep share the fleet defaults, builds get the
    build defaults, the daemon gets the serving defaults); anything else
    is a JSON spec file path.  Raises :class:`ConfigurationError` on
    unknown kinds and unreadable/invalid spec files.
    """
    from repro.obs.slo import (SloMonitor, default_build_slos,
                               default_epoch_slos, default_fleet_slos,
                               default_serve_slos)

    if spec is None:
        return None
    if spec == "default":
        defaults = {
            "sweep": default_fleet_slos,
            "fleet": default_fleet_slos,
            "epochs": default_epoch_slos,
            "build": default_build_slos,
            "serve": default_serve_slos,
        }
        factory = defaults.get(kind)
        if factory is None:
            raise ConfigurationError(
                f"no default SLOs for kind {kind!r}; known: "
                f"{', '.join(sorted(defaults))}"
            )
        return SloMonitor(factory())
    return SloMonitor.load(spec)


@dataclass
class ServiceResult:
    """One scenario execution's outcome, shared by CLI and HTTP callers."""

    kind: str
    scenario: Scenario
    result: Any
    payload: Dict[str, Any]
    slo: Any = None
    elapsed_s: float = 0.0
    context: Optional[SimContext] = None
    cache_hits: int = 0
    executed_points: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Stitched request-scoped span tree (sweeps with ``trace: true``);
    #: ``""`` otherwise.  Derived from the scenario, never the request,
    #: so including it in the response preserves purity.
    trace_jsonl: str = ""

    @property
    def exit_code(self) -> int:
        """0, or :data:`repro.obs.slo.SLO_EXIT_CODE` on SLO violations."""
        return self.slo.exit_code if self.slo is not None else 0

    def response_json(self) -> Dict[str, Any]:
        """The deterministic response body (the daemon's wire format).

        A pure function of (scenario, slo spec): wall-clock, cache
        temperature, and worker count never appear, so coalesced and
        solo executions of one scenario serialise byte-identically.
        """
        body = {
            "kind": self.kind,
            "scenario_id": self.scenario.scenario_id(),
            "result": self.payload,
            "slo": self.slo.to_json() if self.slo is not None else None,
            "exit_code": self.exit_code,
        }
        if self.trace_jsonl:
            # Only traced scenarios grow the key, so untraced responses
            # keep their original wire shape byte-for-byte.
            body["trace"] = self.trace_jsonl
        return body

    def response_text(self) -> str:
        """Canonical JSON text of :meth:`response_json`, newline-terminated."""
        from repro.scenario import canonical_dumps

        return canonical_dumps(self.response_json()) + "\n"


def _normalise(payload: Any) -> Any:
    """Round-trip through stdlib JSON so tuples become lists etc."""
    return json.loads(json.dumps(payload))


def sweep_payload(result: Any) -> Dict[str, Any]:
    """A :class:`SweepResult` minus execution provenance.

    Per-point ``cached`` flags depend on what ran earlier in the
    process, not on the scenario, so they are stripped; the content
    ``cache_key`` stays -- it is a pure function of the point.
    """
    payload = _normalise(result.to_json())
    for point in payload["points"]:
        point.pop("cached", None)
    return payload


def build_payload(report: Any) -> Dict[str, Any]:
    """A :class:`BuildReport` minus execution provenance.

    ``built`` / ``cached`` / ``shared`` all mean "this target is served
    by this artifact" and differ only by cache temperature, so they fold
    to ``ok``; ``failed`` and ``incompatible`` are properties of the
    matrix and survive.
    """
    payload = _normalise(report.to_json())
    for target in payload["targets"]:
        if target["status"] in ("built", "cached", "shared"):
            target["status"] = "ok"
    return payload


def _require_kind(scenario: Scenario, kind: str) -> None:
    if scenario.kind != kind:
        raise ConfigurationError(
            f"scenario kind {scenario.kind!r} cannot drive the {kind!r} "
            f"service; write a scenario with \"kind\": \"{kind}\""
        )


def run_sweep_service(scenario: Scenario, *, workers: int = 1,
                      cache: Any = None, use_cache: bool = True,
                      slo: Optional[str] = None, fuse: bool = True,
                      executor: Any = None) -> ServiceResult:
    """Execute a sweep scenario (the ``repro.cli sweep`` core).

    Cache misses route through the fused multi-point planner by default
    (``fuse=False`` forces per-point execution); ``executor`` injects a
    resident ProcessPool so a long-lived caller -- the serving daemon --
    never spawns one per request.  The planner's provenance (fused vs
    pooled point counts, whether a pool was spawned) lands in ``meta``.
    """
    from repro.obs.slo import registry_from_sweep
    from repro.runtime.sweep import SweepPlan, SweepRunner

    _require_kind(scenario, "sweep")
    monitor = slo_monitor_for("sweep", slo)   # fail loud before the run
    plan = SweepPlan.from_scenario(scenario)
    runner = SweepRunner(plan, workers=workers, cache=cache,
                         use_cache=use_cache, engine=scenario.engine,
                         fuse=fuse, executor=executor)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    report = (monitor.evaluate(registry_from_sweep(result))
              if monitor is not None else None)
    if scenario.workload.trace:
        from repro.obs.tracectx import TraceContext

        # The stitched tree's trace id derives from the scenario --
        # NOT from any per-request context -- so coalesced followers
        # and solo runs serialise byte-identical responses.
        scenario_id = scenario.scenario_id()
        trace_jsonl = result.stitched_trace_jsonl(
            trace_id=TraceContext.for_scenario(scenario_id).trace_id,
            scenario_id=scenario_id)
    else:
        trace_jsonl = ""
    return ServiceResult(
        kind="sweep", scenario=scenario, result=result,
        payload=sweep_payload(result), slo=report, elapsed_s=elapsed,
        trace_jsonl=trace_jsonl,
        cache_hits=result.cache_hits,
        executed_points=len(result) - result.cache_hits,
        meta={
            "fused_points": result.fused_points,
            "fused_groups": result.fused_groups,
            "pooled_points": result.pooled_points,
            "spawned_pool": result.spawned_pool,
        },
    )


def run_orchestrator_service(scenario: Scenario, *,
                             mode: str = "incremental",
                             slo: Optional[str] = None,
                             trace_out: Optional[str] = None,
                             trace_ring: int = 4_096,
                             context: Optional[SimContext] = None,
                             trace_context: Any = None) -> ServiceResult:
    """Execute a fleet scenario's ``epochs`` section (the epoch day).

    The resolved SLO monitor is more than a post-run check here: the
    orchestrator evaluates it **every epoch** and its violations drive
    the autoscaler, so ``--slo FILE`` changes the control loop's
    set-points, not just the exit code.  Without ``slo`` the stock
    :func:`~repro.obs.slo.default_epoch_slos` steer autoscaling and no
    report (or non-zero exit) is produced.  The response payload is
    :meth:`~repro.runtime.orchestrator.OrchestratorResult.to_json` --
    mode-independent by construction (incremental == full bit-exactly),
    so the daemon's byte-identical-response contract holds.
    """
    from repro.runtime.orchestrator import Orchestrator

    _require_kind(scenario, "fleet")
    monitor = slo_monitor_for("epochs", slo)
    run_context = context if context is not None else SimContext(
        name="orchestrator", trace=True)
    orchestrator = Orchestrator.from_scenario(
        scenario, mode=mode, monitor=monitor, context=run_context)
    start = time.perf_counter()

    def _run_and_check():
        root = (run_context.trace.begin(
                    "serve.execute", trace_id=trace_context.trace_id,
                    kind="fleet")
                if trace_context is not None else None)
        outcome = orchestrator.run()
        report = (monitor.evaluate(run_context.metrics,
                                   trace=run_context.trace)
                  if monitor is not None else None)
        run_context.trace.end(root)
        return outcome, report

    if trace_out:
        from repro.obs.recorder import FlightRecorder

        with FlightRecorder(run_context.trace, trace_out, ring=trace_ring):
            result, report = _run_and_check()
    else:
        result, report = _run_and_check()
    elapsed = time.perf_counter() - start
    payload = _normalise(result.to_json())
    return ServiceResult(
        kind="fleet", scenario=scenario, result=result, payload=payload,
        slo=report, elapsed_s=elapsed, context=run_context,
        executed_points=result.spec.epochs,
        meta={"mode": orchestrator.mode, "epochs": result.spec.epochs,
              "totals": payload["totals"]},
    )


def run_fleet_service(scenario: Scenario, *,
                      policies: Optional[Sequence[str]] = None,
                      slo: Optional[str] = None,
                      trace_out: Optional[str] = None,
                      trace_ring: int = 4_096,
                      mode: str = "incremental",
                      context: Optional[SimContext] = None,
                      trace_context: Any = None) -> ServiceResult:
    """Execute a fleet scenario (the ``repro.cli fleet`` core).

    A scenario carrying an ``epochs`` section is an orchestrated day,
    not a one-shot policy comparison, and dispatches to
    :func:`run_orchestrator_service` (``mode`` picks the aggregate
    maintenance path there; snapshot runs ignore it).  Naming
    ``policies`` alongside ``epochs`` is a loud error -- the epoch day
    runs the single policy its spec declares.

    With ``trace_out`` the run streams through the flight recorder, and
    SLOs are evaluated while the recorder is still attached so violation
    instants land inside the streamed trace -- the behaviour the CLI has
    always had, now shared with HTTP callers.  A ``trace_context``
    (:class:`repro.obs.tracectx.TraceContext`, threaded down from the
    daemon) wraps the whole run in a ``serve.execute`` root span
    carrying the request's trace id, so every simulation span in the
    context trace is reachable from one root.
    """
    from repro.runtime.fleet import POLICIES, FleetSimulation, FleetSpec

    _require_kind(scenario, "fleet")
    if scenario.epochs is not None:
        if policies:
            raise ConfigurationError(
                "an epochs scenario runs the single policy in its spec "
                f"({scenario.epochs.policy!r}); drop --policies or the "
                "scenario's epochs section")
        return run_orchestrator_service(
            scenario, mode=mode, slo=slo, trace_out=trace_out,
            trace_ring=trace_ring, context=context,
            trace_context=trace_context)
    monitor = slo_monitor_for("fleet", slo)
    spec = FleetSpec.from_scenario(scenario)
    run_policies = tuple(policies) if policies else POLICIES
    run_context = context if context is not None else SimContext(
        name="fleet", trace=True)
    simulation = FleetSimulation(spec, context=run_context)
    start = time.perf_counter()

    def _run_and_check():
        root = (run_context.trace.begin(
                    "serve.execute", trace_id=trace_context.trace_id,
                    kind="fleet")
                if trace_context is not None else None)
        outcome = simulation.run(run_policies)
        report = (monitor.evaluate(run_context.metrics,
                                   trace=run_context.trace)
                  if monitor is not None else None)
        run_context.trace.end(root)
        return outcome, report

    if trace_out:
        from repro.obs.recorder import FlightRecorder

        with FlightRecorder(run_context.trace, trace_out, ring=trace_ring):
            result, report = _run_and_check()
    else:
        result, report = _run_and_check()
    elapsed = time.perf_counter() - start
    return ServiceResult(
        kind="fleet", scenario=scenario, result=result,
        payload=_normalise(result.to_json()), slo=report,
        elapsed_s=elapsed, context=run_context,
        executed_points=len(run_policies),
    )


def run_build_service(scenario: Scenario, *, workers: int = 1,
                      store: Any = None, use_cache: bool = True,
                      slo: Optional[str] = None,
                      context: Optional[SimContext] = None,
                      trace_context: Any = None) -> ServiceResult:
    """Execute a build scenario (the ``repro.cli build`` core).

    ``trace_context`` behaves as in :func:`run_fleet_service`: the
    farm's ``build.target`` Gantt spans parent under one
    ``serve.execute`` root carrying the request's trace id.
    """
    from repro.runtime.buildfarm import BuildFarm, BuildPlan

    _require_kind(scenario, "build")
    monitor = slo_monitor_for("build", slo)
    plan = BuildPlan.from_scenario(scenario)
    run_context = context if context is not None else SimContext(
        name="buildfarm", trace=True)
    farm = BuildFarm(plan, workers=workers, store=store,
                     use_cache=use_cache, context=run_context)
    start = time.perf_counter()
    root = (run_context.trace.begin(
                "serve.execute", trace_id=trace_context.trace_id,
                kind="build")
            if trace_context is not None else None)
    report = farm.run()
    elapsed = time.perf_counter() - start
    slo_report = (monitor.evaluate(run_context.metrics,
                                   trace=run_context.trace)
                  if monitor is not None else None)
    run_context.trace.end(root)
    return ServiceResult(
        kind="build", scenario=scenario, result=report,
        payload=build_payload(report), slo=slo_report, elapsed_s=elapsed,
        context=run_context, cache_hits=report.cached,
        executed_points=report.built,
    )


def run_scenario(scenario: Scenario, *, workers: int = 1, cache: Any = None,
                 store: Any = None, use_cache: bool = True,
                 slo: Optional[str] = None,
                 policies: Optional[Sequence[str]] = None,
                 executor: Any = None,
                 trace_context: Any = None) -> ServiceResult:
    """Dispatch one scenario to its kind's service function.

    The daemon's single entry point: resident warm state (``cache`` for
    sweeps, ``store`` for builds, ``executor`` for pooled sweep points)
    is threaded through; options a kind does not use are ignored by
    construction, not error.  ``trace_context`` roots fleet/build
    context traces under the request's trace id; traced sweeps ignore
    it deliberately -- their stitched tree must stay a pure function of
    the scenario (see :meth:`ServiceResult.response_json`).
    """
    if scenario.kind == "sweep":
        return run_sweep_service(scenario, workers=workers, cache=cache,
                                 use_cache=use_cache, slo=slo,
                                 executor=executor)
    if scenario.kind == "fleet":
        return run_fleet_service(scenario, policies=policies, slo=slo,
                                 trace_context=trace_context)
    if scenario.kind == "build":
        return run_build_service(scenario, workers=workers, store=store,
                                 use_cache=use_cache, slo=slo,
                                 trace_context=trace_context)
    raise ConfigurationError(
        f"unknown scenario kind {scenario.kind!r}; known: "
        f"{', '.join(SERVICE_KINDS)}"
    )
