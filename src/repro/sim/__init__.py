"""Transaction-level discrete-event simulation substrate.

This package provides the hardware-simulation primitives on which every
behavioural model in the reproduction is built:

* :mod:`repro.sim.engine` -- the discrete-event simulator core with an
  integer-picosecond timeline.
* :mod:`repro.sim.clock` -- clock domains and cycle/time conversions.
* :mod:`repro.sim.fifo` -- synchronous and asynchronous (gray-code CDC)
  FIFO models.
* :mod:`repro.sim.pipeline` -- fully pipelined stage and chain models used
  by data paths (MAC, DMA, DDR, wrappers, roles).
* :mod:`repro.sim.stats` -- latency and throughput instrumentation.

The simulation is *transaction level*: the unit of work is a transaction
(a packet, a DMA descriptor, a memory burst) rather than an RTL signal
change.  Timing is still beat-accurate -- a stage with data width ``W``
bits running at ``F`` MHz moves one ``W``-bit beat per cycle when fully
pipelined, which is exactly the property the paper's interface wrapper
relies on ("no bubbles in the processing").
"""

from repro.sim.clock import ClockDomain
from repro.sim.engine import Event, Simulator
from repro.sim.fifo import AsyncFifo, FifoFullError, SyncFifo
from repro.sim.pipeline import PipelineChain, PipelineStage, Transaction
from repro.sim.stats import Counter, LatencyStats, ThroughputMeter
from repro.sim.vector import (
    ENGINES,
    TrainTiming,
    chain_supports_vector,
    process_batch_vector,
    resolve_engine,
    run_packet_sweep_vector,
    simulate_train,
)

__all__ = [
    "AsyncFifo",
    "ClockDomain",
    "Counter",
    "ENGINES",
    "Event",
    "FifoFullError",
    "LatencyStats",
    "PipelineChain",
    "PipelineStage",
    "Simulator",
    "SyncFifo",
    "ThroughputMeter",
    "TrainTiming",
    "Transaction",
    "chain_supports_vector",
    "process_batch_vector",
    "resolve_engine",
    "run_packet_sweep_vector",
    "simulate_train",
]
