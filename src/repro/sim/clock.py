"""Clock domains.

Every data-path element in the reproduction belongs to a clock domain.
The paper's RBBs run in their own domains (e.g. the 100G MAC core clock at
322.265625 MHz) while user roles pick an independent frequency; the
parameterised clock-domain crossing in :mod:`repro.core.rbb.cdc` bridges
the two with an asynchronous FIFO.
"""

import math
from dataclasses import dataclass, field

PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class ClockDomain:
    """A named clock with a fixed frequency.

    Attributes:
        name: human-readable domain name (e.g. ``"cmac_core"``).
        freq_mhz: frequency in MHz.  Fractional frequencies (such as the
            322.265625 MHz CMAC clock) are supported; periods are rounded
            to the nearest picosecond.
    """

    name: str
    freq_mhz: float
    period_ps: int = field(init=False)

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError(f"clock {self.name!r} must have positive frequency")
        object.__setattr__(self, "period_ps", int(round(1e6 / self.freq_mhz)))

    @property
    def freq_hz(self) -> float:
        """Frequency in Hz."""
        return self.freq_mhz * 1e6

    def cycles_to_ps(self, cycles: int) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        return int(cycles) * self.period_ps

    def ps_to_cycles(self, duration_ps: int) -> int:
        """Whole cycles that fit in ``duration_ps`` (floor)."""
        return int(duration_ps) // self.period_ps

    def next_edge_ps(self, time_ps: int) -> int:
        """Time of the first rising edge at or after ``time_ps``.

        Edges are assumed to fall on multiples of the period starting at
        time zero -- sufficient for transaction-level alignment.
        """
        return int(math.ceil(time_ps / self.period_ps)) * self.period_ps

    def bandwidth_bps(self, data_width_bits: int) -> float:
        """Raw bandwidth of a bus of ``data_width_bits`` in this domain."""
        return self.freq_hz * data_width_bits

    def __str__(self) -> str:
        return f"{self.name}@{self.freq_mhz:g}MHz"
