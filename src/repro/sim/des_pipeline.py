"""Event-driven pipeline with finite buffers and backpressure.

The analytic model in :mod:`repro.sim.pipeline` assumes infinite
elasticity between stages; this module runs the same stage parameters
on the discrete-event simulator with *finite FIFOs* between stages, so
it can answer the questions the analytic model cannot:

* how deep must the inter-stage buffers be before a bursty source
  stops losing packets, and
* what queue occupancy does a given load produce (the "queue usage"
  gauge the Network RBB monitors).

For steady, admissible load the two models agree on throughput and
zero-load latency -- a property the tests check, which keeps the fast
analytic model honest.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime import SimContext, ensure_context
from repro.sim.engine import Simulator
from repro.sim.fifo import SyncFifo
from repro.sim.pipeline import PipelineStage
from repro.sim.stats import LatencyStats


@dataclass
class DesPacket:
    """One packet moving through the event-driven pipeline."""

    size_bytes: int
    created_ps: int
    completed_ps: Optional[int] = None


class _StageProcess:
    """One stage: pulls from its input FIFO when free, pushes downstream.

    Service and hand-off callbacks are the *bound methods* ``_finish``
    and ``_deliver`` with the packet passed as an event argument -- no
    per-packet closure is allocated on the hot path -- and per-size
    service times are memoised (a train repeats a handful of sizes
    thousands of times).
    """

    __slots__ = ("simulator", "stage", "input_fifo", "downstream", "sink",
                 "busy", "dropped_in_flight", "_latency_ps", "_service_cache")

    def __init__(self, simulator: Simulator, stage: PipelineStage,
                 input_fifo: SyncFifo,
                 downstream: Optional["_StageProcess"],
                 sink: List[DesPacket]) -> None:
        self.simulator = simulator
        self.stage = stage
        self.input_fifo = input_fifo
        self.downstream = downstream
        self.sink = sink
        self.busy = False
        self.dropped_in_flight = 0
        self._latency_ps = stage.clock.cycles_to_ps(stage.latency_cycles)
        self._service_cache: dict = {}

    def _service_ps(self, size_bytes: int) -> int:
        service = self._service_cache.get(size_bytes)
        if service is None:
            stage = self.stage
            service = stage.clock.cycles_to_ps(
                stage.beats(size_bytes) * stage.initiation_interval
                + stage.per_transaction_overhead_cycles
            )
            self._service_cache[size_bytes] = service
        return service

    def kick(self) -> None:
        """Try to start service (idempotent; called on arrival/finish)."""
        if self.busy or self.input_fifo.is_empty:
            return
        if self.downstream is not None and self.downstream.input_fifo.is_full:
            return  # backpressure: hold the packet upstream
        packet: DesPacket = self.input_fifo.pop()
        self.busy = True
        self.simulator.schedule(self._service_ps(packet.size_bytes),
                                self._finish, packet)

    def _finish(self, packet: DesPacket) -> None:
        self.busy = False
        if self.downstream is not None:
            # The fixed pipeline latency rides along with the hand-off.
            self.simulator.schedule(self._latency_ps, self._deliver, packet)
        else:
            packet.completed_ps = self.simulator.now_ps + self._latency_ps
            self.sink.append(packet)
        self.kick()

    def _deliver(self, packet: DesPacket) -> None:
        if self.downstream.input_fifo.try_push(packet, self.simulator.now_ps):
            self.downstream.kick()
        else:
            # Finite buffer overflowed despite backpressure (the latency
            # hand-off was already in flight when the FIFO filled); count
            # it like a hardware skid-buffer drop so loss accounting
            # stays honest.
            self.dropped_in_flight += 1
        self.kick()


class DesPipeline:
    """A chain of stages joined by finite FIFOs.

    The pipeline runs on its :class:`~repro.runtime.SimContext`'s event
    engine -- an explicitly passed context, the ambient one, or a fresh
    private context (the default, matching the old one-engine-per-
    pipeline behaviour).  Each :meth:`run` publishes offered/delivered/
    dropped counters, a latency histogram, and FIFO-occupancy gauges
    under ``des.<name>`` in the context's metrics registry.
    """

    def __init__(self, stages: List[PipelineStage], fifo_depth: int = 16,
                 context: Optional[SimContext] = None,
                 name: str = "pipeline") -> None:
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        if fifo_depth < 1:
            raise ConfigurationError("inter-stage FIFOs need depth >= 1")
        self.context = ensure_context(context)
        self.name = name
        self.simulator = self.context.simulator
        self.fifo_depth = fifo_depth
        self.delivered: List[DesPacket] = []
        self.fifos = [
            SyncFifo(f"fifo{index}", fifo_depth) for index in range(len(stages))
        ]
        self.processes: List[_StageProcess] = []
        downstream: Optional[_StageProcess] = None
        for index in reversed(range(len(stages))):
            process = _StageProcess(
                self.simulator, stages[index], self.fifos[index], downstream,
                self.delivered,
            )
            self.processes.insert(0, process)
            downstream = process
        self.offered = 0
        self.dropped_at_ingress = 0

    def offer(self, packet: DesPacket) -> bool:
        """Present a packet at the ingress at its creation time."""
        self.offered += 1
        entry = self.fifos[0]
        if not entry.try_push(packet, packet.created_ps):
            self.dropped_at_ingress += 1
            return False
        return True

    @property
    def dropped_in_flight(self) -> int:
        """Packets lost to in-flight hand-off overflow, summed over stages."""
        return sum(process.dropped_in_flight for process in self.processes)

    def _inject(self, packet: DesPacket) -> None:
        """Arrival callback: offer at the ingress and kick the first stage."""
        self.offer(packet)
        self.processes[0].kick()

    def run(self, source: List[DesPacket]) -> "DesRunResult":
        """Drive a packet train and run to completion.

        On a shared context whose clock has already advanced, the train
        is rebased so creation times are relative to *now*.  The rebase
        works on **copies** -- the caller's packets are never mutated, so
        re-running the same train on the same context cannot double-shift
        its timestamps.
        """
        base_ps = self.simulator.now_ps
        if base_ps:
            source = [
                DesPacket(size_bytes=packet.size_bytes,
                          created_ps=packet.created_ps + base_ps)
                for packet in source
            ]
        span = self.context.trace.begin(
            f"des.{self.name}.run", ts_ps=base_ps, packets=len(source)
        )
        delivered_mark = len(self.delivered)
        offered_mark, dropped_mark = self.offered, self.dropped_at_ingress
        in_flight_mark = self.dropped_in_flight
        self.simulator.schedule_at_batch(
            (packet.created_ps, self._inject, (packet,))
            for packet in sorted(source, key=lambda item: item.created_ps)
        )
        self.simulator.run()
        result = self._result()
        self._publish(delivered_mark, offered_mark, dropped_mark, in_flight_mark)
        self.context.trace.end(span, delivered=result.delivered,
                               dropped=result.dropped)
        return result

    def _publish(self, delivered_mark: int, offered_mark: int,
                 dropped_mark: int, in_flight_mark: int) -> None:
        """Fold this run's deltas into the context metrics registry."""
        ns = self.context.metrics.namespace(f"des.{self.name}")
        ns.increment("offered", self.offered - offered_mark)
        ns.increment("delivered", len(self.delivered) - delivered_mark)
        ns.increment("dropped", self.dropped_at_ingress - dropped_mark)
        ns.increment("dropped_in_flight", self.dropped_in_flight - in_flight_mark)
        histogram = ns.histogram("latency_ps")
        for packet in self.delivered[delivered_mark:]:
            histogram.add(packet.completed_ps - packet.created_ps)
        for fifo in self.fifos:
            ns.set_gauge(f"{fifo.name}.peak_occupancy", fifo.peak_occupancy)

    def _result(self) -> "DesRunResult":
        latency = LatencyStats()
        total_bytes = 0
        for packet in self.delivered:
            latency.add(packet.completed_ps - packet.created_ps)
            total_bytes += packet.size_bytes
        if len(self.delivered) > 1:
            window_ps = max(
                self.delivered[-1].completed_ps - self.delivered[0].completed_ps, 1
            )
            # Steady-state window opens at the first completion, so the
            # first packet's bytes sit outside it; summing the actual
            # bytes of the rest keeps mixed-size trains honest (a
            # uniform train reduces to the old (n-1) * size formula).
            window_bytes = total_bytes - self.delivered[0].size_bytes
            throughput_bps = window_bytes * 8 / (window_ps / 1e12)
        else:
            throughput_bps = 0.0
        return DesRunResult(
            delivered=len(self.delivered),
            dropped=self.dropped_at_ingress,
            throughput_bps=throughput_bps,
            latency=latency,
            peak_occupancies=tuple(fifo.peak_occupancy for fifo in self.fifos),
            dropped_in_flight=self.dropped_in_flight,
        )


@dataclass(frozen=True)
class DesRunResult:
    """Outcome of one event-driven run.

    ``dropped`` counts ingress-FIFO rejections; ``dropped_in_flight``
    counts packets lost when a latency hand-off overflowed a downstream
    FIFO (previously discarded silently, under-reporting loss).
    """

    delivered: int
    dropped: int
    throughput_bps: float
    latency: LatencyStats
    peak_occupancies: Tuple[int, ...]
    dropped_in_flight: int = 0

    @property
    def lost(self) -> int:
        """Every packet that entered and never completed."""
        return self.dropped + self.dropped_in_flight

    @property
    def loss_fraction(self) -> float:
        total = self.delivered + self.lost
        return self.lost / total if total else 0.0


def packet_train(count: int, size_bytes: int, gap_ps: int,
                 burst: int = 1) -> List[DesPacket]:
    """``count`` packets, ``burst`` back-to-back per ``gap_ps`` interval."""
    packets = []
    for index in range(count):
        slot = index // burst
        packets.append(DesPacket(size_bytes=size_bytes, created_ps=slot * gap_ps))
    return packets
