"""Event-driven pipeline with finite buffers and backpressure.

The analytic model in :mod:`repro.sim.pipeline` assumes infinite
elasticity between stages; this module runs the same stage parameters
on the discrete-event simulator with *finite FIFOs* between stages, so
it can answer the questions the analytic model cannot:

* how deep must the inter-stage buffers be before a bursty source
  stops losing packets, and
* what queue occupancy does a given load produce (the "queue usage"
  gauge the Network RBB monitors).

For steady, admissible load the two models agree on throughput and
zero-load latency -- a property the tests check, which keeps the fast
analytic model honest.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.fifo import SyncFifo
from repro.sim.pipeline import PipelineStage
from repro.sim.stats import LatencyStats


@dataclass
class DesPacket:
    """One packet moving through the event-driven pipeline."""

    size_bytes: int
    created_ps: int
    completed_ps: Optional[int] = None


class _StageProcess:
    """One stage: pulls from its input FIFO when free, pushes downstream."""

    def __init__(self, simulator: Simulator, stage: PipelineStage,
                 input_fifo: SyncFifo,
                 downstream: Optional["_StageProcess"],
                 sink: List[DesPacket]) -> None:
        self.simulator = simulator
        self.stage = stage
        self.input_fifo = input_fifo
        self.downstream = downstream
        self.sink = sink
        self.busy = False

    def kick(self) -> None:
        """Try to start service (idempotent; called on arrival/finish)."""
        if self.busy or self.input_fifo.is_empty:
            return
        if self.downstream is not None and self.downstream.input_fifo.is_full:
            return  # backpressure: hold the packet upstream
        packet: DesPacket = self.input_fifo.pop()
        self.busy = True
        beats = self.stage.beats(packet.size_bytes)
        service_ps = self.stage.clock.cycles_to_ps(
            beats * self.stage.initiation_interval
            + self.stage.per_transaction_overhead_cycles
        )
        latency_ps = self.stage.clock.cycles_to_ps(self.stage.latency_cycles)
        self.simulator.schedule(
            service_ps, lambda: self._finish(packet, latency_ps)
        )

    def _finish(self, packet: DesPacket, latency_ps: int) -> None:
        self.busy = False
        if self.downstream is not None:
            # The fixed pipeline latency rides along with the hand-off.
            self.simulator.schedule(
                latency_ps, lambda: self._deliver(packet)
            )
        else:
            packet.completed_ps = self.simulator.now_ps + latency_ps
            self.sink.append(packet)
        self.kick()

    def _deliver(self, packet: DesPacket) -> None:
        if self.downstream.input_fifo.try_push(packet, self.simulator.now_ps):
            self.downstream.kick()
        else:
            # Finite buffer overflowed despite backpressure (the latency
            # hand-off is in flight); count it as a drop like hardware
            # skid buffers do.
            pass
        self.kick()


class DesPipeline:
    """A chain of stages joined by finite FIFOs."""

    def __init__(self, stages: List[PipelineStage], fifo_depth: int = 16) -> None:
        if not stages:
            raise ConfigurationError("a pipeline needs at least one stage")
        if fifo_depth < 1:
            raise ConfigurationError("inter-stage FIFOs need depth >= 1")
        self.simulator = Simulator()
        self.fifo_depth = fifo_depth
        self.delivered: List[DesPacket] = []
        self.fifos = [
            SyncFifo(f"fifo{index}", fifo_depth) for index in range(len(stages))
        ]
        self.processes: List[_StageProcess] = []
        downstream: Optional[_StageProcess] = None
        for index in reversed(range(len(stages))):
            process = _StageProcess(
                self.simulator, stages[index], self.fifos[index], downstream,
                self.delivered,
            )
            self.processes.insert(0, process)
            downstream = process
        self.offered = 0
        self.dropped_at_ingress = 0

    def offer(self, packet: DesPacket) -> bool:
        """Present a packet at the ingress at its creation time."""
        self.offered += 1
        entry = self.fifos[0]
        if not entry.try_push(packet, packet.created_ps):
            self.dropped_at_ingress += 1
            return False
        return True

    def run(self, source: List[DesPacket]) -> "DesRunResult":
        """Drive a packet train and run to completion."""
        for packet in sorted(source, key=lambda item: item.created_ps):
            self.simulator.schedule_at(
                packet.created_ps, lambda packet=packet: (self.offer(packet),
                                                          self.processes[0].kick())
            )
        self.simulator.run()
        return self._result()

    def _result(self) -> "DesRunResult":
        latency = LatencyStats()
        total_bytes = 0
        for packet in self.delivered:
            latency.add(packet.completed_ps - packet.created_ps)
            total_bytes += packet.size_bytes
        if self.delivered:
            window_ps = max(
                self.delivered[-1].completed_ps - self.delivered[0].completed_ps, 1
            )
            throughput_bps = (
                (len(self.delivered) - 1) * self.delivered[0].size_bytes * 8
                / (window_ps / 1e12)
            ) if len(self.delivered) > 1 else 0.0
        else:
            throughput_bps = 0.0
        return DesRunResult(
            delivered=len(self.delivered),
            dropped=self.dropped_at_ingress,
            throughput_bps=throughput_bps,
            latency=latency,
            peak_occupancies=tuple(fifo.peak_occupancy for fifo in self.fifos),
        )


@dataclass(frozen=True)
class DesRunResult:
    """Outcome of one event-driven run."""

    delivered: int
    dropped: int
    throughput_bps: float
    latency: LatencyStats
    peak_occupancies: Tuple[int, ...]

    @property
    def loss_fraction(self) -> float:
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0


def packet_train(count: int, size_bytes: int, gap_ps: int,
                 burst: int = 1) -> List[DesPacket]:
    """``count`` packets, ``burst`` back-to-back per ``gap_ps`` interval."""
    packets = []
    for index in range(count):
        slot = index // burst
        packets.append(DesPacket(size_bytes=size_bytes, created_ps=slot * gap_ps))
    return packets
