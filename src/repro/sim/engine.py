"""Discrete-event simulator core.

Time is kept as an integer number of picoseconds.  Using integers (rather
than floats) makes event ordering exact and keeps long simulations free of
accumulated rounding error; a picosecond granularity is fine enough to
represent every clock in the catalog (the fastest domain in the paper's
device fleet is the PCIe Gen5 user clock at 1 GHz, i.e. a 1000 ps period).

The queue is a heap of ``(time_ps, seq, event)`` tuples: comparisons stay
in C (the unique ``seq`` breaks ties before the :class:`Event` object is
ever compared) and the :class:`Event` itself is a ``__slots__`` record, so
scheduling allocates one small object and one tuple per event.  Callbacks
may carry positional arguments (``schedule(delay, fn, arg)``), which lets
hot callers pre-bind a method once instead of building a closure per
event.  Cancelled events are purged lazily: they stay in the heap until
popped, but a live-event counter keeps :meth:`Simulator.pending_events`
O(1) and the heap is compacted outright when cancelled entries outnumber
live ones.
"""

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.obs.profiler import phase as _profile_phase

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000

#: Compact the heap only past this size; tiny queues are not worth it.
_COMPACT_MIN_QUEUE = 64


class Event:
    """A scheduled callback.

    Events order by ``(time_ps, seq)`` so simultaneous events fire in
    the order they were scheduled (deterministic replay).
    """

    __slots__ = ("time_ps", "seq", "callback", "args", "cancelled", "_simulator")

    def __init__(self, time_ps: int, seq: int, callback: Callable[..., Any],
                 args: Tuple[Any, ...] = (),
                 simulator: Optional["Simulator"] = None) -> None:
        self.time_ps = time_ps
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent the event's callback from running when it is popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._simulator is not None:
            self._simulator._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ps, self.seq) < (other.time_ps, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_ps}ps, seq={self.seq}, {state})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1_000, lambda: print("1 ns elapsed"))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq = itertools.count()
        self._now_ps = 0
        self._running = False
        self._live = 0          # non-cancelled events still queued
        self._stale = 0         # cancelled events awaiting lazy purge
        self.events_processed = 0
        self._dispatch_hooks: List[Callable[[int, int], Any]] = []

    def add_dispatch_hook(self, hook: Callable[[int, int], Any]) -> None:
        """Register ``hook(time_ps, seq)`` to run after each dispatch.

        This is how the runtime's trace bus observes the engine without
        the engine knowing about tracing; with no hooks registered the
        dispatch path pays a single truthiness check.
        """
        self._dispatch_hooks.append(hook)

    def remove_dispatch_hook(self, hook: Callable[[int, int], Any]) -> None:
        self._dispatch_hooks.remove(hook)

    @property
    def now_ps(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now_ps / PS_PER_NS

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now_ps / PS_PER_US

    def schedule(self, delay_ps: int, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay_ps`` picoseconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        Raises ``ValueError`` for negative delays -- the simulator never
        travels backwards.
        """
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps} ps)")
        time_ps = self._now_ps + int(delay_ps)
        event = Event(time_ps, next(self._seq), callback, args, self)
        heapq.heappush(self._queue, (time_ps, event.seq, event))
        self._live += 1
        return event

    def schedule_at(self, time_ps: int, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(int(time_ps) - self._now_ps, callback, *args)

    def schedule_at_batch(
        self, items: Iterable[Tuple[int, Callable[..., Any], Tuple[Any, ...]]],
    ) -> List[Event]:
        """Schedule a batch of ``(time_ps, callback, args)`` entries at once.

        Sequence numbers are assigned in iteration order (matching what a
        loop of :meth:`schedule_at` calls would produce), but the heap is
        restored with one O(n) ``heapify`` instead of n pushes -- the win
        when a packet train of thousands of arrivals is loaded up front.
        """
        now = self._now_ps
        queue = self._queue
        events: List[Event] = []
        for time_ps, callback, args in items:
            time_ps = int(time_ps)
            if time_ps < now:
                raise ValueError(
                    f"cannot schedule into the past (t={time_ps} ps < now={now} ps)"
                )
            event = Event(time_ps, next(self._seq), callback, args, self)
            queue.append((time_ps, event.seq, event))
            events.append(event)
        if events:
            heapq.heapify(queue)
            self._live += len(events)
        return events

    def _note_cancelled(self) -> None:
        """Bookkeeping for a queued event that was just cancelled."""
        self._live -= 1
        self._stale += 1
        queue_len = len(self._queue)
        if queue_len >= _COMPACT_MIN_QUEUE and self._stale * 2 > queue_len:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (lazy purge, amortised)."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._stale = 0

    def peek_next_time(self) -> Optional[int]:
        """Return the timestamp of the next pending event, if any."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._stale -= 1
        if not queue:
            return None
        return queue[0][0]

    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        queue = self._queue
        while queue:
            _time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._stale -= 1
                continue
            self._live -= 1
            event._simulator = None   # cancel() after firing is a no-op
            self._now_ps = event.time_ps
            event.callback(*event.args)
            self.events_processed += 1
            if self._dispatch_hooks:
                for hook in self._dispatch_hooks:
                    hook(event.time_ps, event.seq)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, a deadline, or an event cap.

        ``until_ps`` is an absolute simulation time; events scheduled at
        exactly ``until_ps`` are still processed.  When the queue drains
        before the deadline, the clock still advances to ``until_ps`` --
        the window a caller asked to simulate has elapsed whether or not
        events filled it, and time-window throughput math relies on
        ``now_ps`` landing on the deadline.  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            # Wall-clock phase for the self-profiler (repro.obs.profiler)
            # -- a single no-op context when no profiler is active, so
            # the dispatch loop itself stays untouched.
            with _profile_phase("engine.run"):
                while True:
                    if max_events is not None and processed >= max_events:
                        break
                    next_time = self.peek_next_time()
                    if next_time is None:
                        if until_ps is not None and until_ps > self._now_ps:
                            self._now_ps = until_ps
                        break
                    if until_ps is not None and next_time > until_ps:
                        self._now_ps = until_ps
                        break
                    self.step()
                    processed += 1
        finally:
            self._running = False
        return processed

    def advance_to(self, time_ps: int) -> None:
        """Advance the clock to ``time_ps`` without running events.

        Only legal when no pending event precedes ``time_ps``.
        """
        next_time = self.peek_next_time()
        if next_time is not None and next_time < time_ps:
            raise ValueError(
                f"cannot advance to {time_ps} ps past pending event at {next_time} ps"
            )
        if time_ps < self._now_ps:
            raise ValueError("cannot advance backwards")
        self._now_ps = int(time_ps)

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(round(value * PS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return int(round(value * PS_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer picoseconds."""
    return int(round(value * PS_PER_S))
