"""Discrete-event simulator core.

Time is kept as an integer number of picoseconds.  Using integers (rather
than floats) makes event ordering exact and keeps long simulations free of
accumulated rounding error; a picosecond granularity is fine enough to
represent every clock in the catalog (the fastest domain in the paper's
device fleet is the PCIe Gen5 user clock at 1 GHz, i.e. a 1000 ps period).
"""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time_ps, seq)`` so simultaneous events fire in
    the order they were scheduled (deterministic replay).
    """

    time_ps: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event's callback from running when it is popped."""
        self.cancelled = True


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1_000, lambda: print("1 ns elapsed"))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now_ps = 0
        self._running = False
        self.events_processed = 0
        self._dispatch_hooks: List[Callable[[int, int], Any]] = []

    def add_dispatch_hook(self, hook: Callable[[int, int], Any]) -> None:
        """Register ``hook(time_ps, seq)`` to run after each dispatch.

        This is how the runtime's trace bus observes the engine without
        the engine knowing about tracing; with no hooks registered the
        dispatch path pays a single truthiness check.
        """
        self._dispatch_hooks.append(hook)

    def remove_dispatch_hook(self, hook: Callable[[int, int], Any]) -> None:
        self._dispatch_hooks.remove(hook)

    @property
    def now_ps(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now_ps / PS_PER_NS

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now_ps / PS_PER_US

    def schedule(self, delay_ps: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        Raises ``ValueError`` for negative delays -- the simulator never
        travels backwards.
        """
        if delay_ps < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ps} ps)")
        event = Event(self._now_ps + int(delay_ps), next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ps: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(int(time_ps) - self._now_ps, callback)

    def peek_next_time(self) -> Optional[int]:
        """Return the timestamp of the next pending event, if any."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time_ps

    def step(self) -> bool:
        """Process the next pending event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now_ps = event.time_ps
            event.callback()
            self.events_processed += 1
            if self._dispatch_hooks:
                for hook in self._dispatch_hooks:
                    hook(event.time_ps, event.seq)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, a deadline, or an event cap.

        ``until_ps`` is an absolute simulation time; events scheduled at
        exactly ``until_ps`` are still processed.  When the queue drains
        before the deadline, the clock still advances to ``until_ps`` --
        the window a caller asked to simulate has elapsed whether or not
        events filled it, and time-window throughput math relies on
        ``now_ps`` landing on the deadline.  Returns the number of
        events processed by this call.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_next_time()
                if next_time is None:
                    if until_ps is not None and until_ps > self._now_ps:
                        self._now_ps = until_ps
                    break
                if until_ps is not None and next_time > until_ps:
                    self._now_ps = until_ps
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        return processed

    def advance_to(self, time_ps: int) -> None:
        """Advance the clock to ``time_ps`` without running events.

        Only legal when no pending event precedes ``time_ps``.
        """
        next_time = self.peek_next_time()
        if next_time is not None and next_time < time_ps:
            raise ValueError(
                f"cannot advance to {time_ps} ps past pending event at {next_time} ps"
            )
        if time_ps < self._now_ps:
            raise ValueError("cannot advance backwards")
        self._now_ps = int(time_ps)

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(round(value * PS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return int(round(value * PS_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer picoseconds."""
    return int(round(value * PS_PER_S))
