"""Synchronous and asynchronous FIFO models.

The asynchronous FIFO follows the classic gray-code pointer design
(Cummings, SNUG 2002 -- the reference the paper itself cites for its
parameterised clock-domain crossing).  At transaction level we do not
model the pointer bits themselves; what matters for timing is that

* each pointer crossing passes through a two-flop synchroniser in the
  destination domain, adding ``sync_stages`` destination-clock cycles of
  latency, and
* the FIFO sustains one beat per cycle on both sides, so a crossing with
  matched bandwidth (``S x M == R x U`` in the paper's notation) is
  lossless.

Both properties are reproduced exactly.
"""

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from repro.sim.clock import ClockDomain


class FifoFullError(RuntimeError):
    """Raised when pushing to a FIFO that has no free slot."""


class FifoEmptyError(RuntimeError):
    """Raised when popping from an empty FIFO."""


def to_gray(value: int) -> int:
    """Binary-to-gray conversion (used by the CDC pointer model)."""
    return value ^ (value >> 1)


def from_gray(value: int) -> int:
    """Gray-to-binary conversion."""
    result = 0
    while value:
        result ^= value
        value >>= 1
    return result


@dataclass
class FifoEntry:
    """An item queued in a FIFO, stamped with its enqueue time."""

    item: Any
    enqueue_time_ps: int


class SyncFifo:
    """A single-clock FIFO with bounded depth and occupancy statistics."""

    def __init__(self, name: str, depth: int) -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.name = name
        self.depth = depth
        self._entries: Deque[FifoEntry] = deque()
        self.peak_occupancy = 0
        self.total_pushed = 0
        self.total_popped = 0
        self.drops = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Current number of queued items."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, item: Any, time_ps: int = 0) -> None:
        """Enqueue ``item``; raises :class:`FifoFullError` when full."""
        if self.is_full:
            self.drops += 1
            raise FifoFullError(f"FIFO {self.name!r} full (depth={self.depth})")
        self._entries.append(FifoEntry(item, time_ps))
        self.total_pushed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def try_push(self, item: Any, time_ps: int = 0) -> bool:
        """Enqueue if space is available; returns success."""
        if self.is_full:
            self.drops += 1
            return False
        self.push(item, time_ps)
        return True

    def pop(self) -> Any:
        """Dequeue the oldest item; raises :class:`FifoEmptyError` if empty."""
        if self.is_empty:
            raise FifoEmptyError(f"FIFO {self.name!r} empty")
        entry = self._entries.popleft()
        self.total_popped += 1
        return entry.item

    def pop_entry(self) -> FifoEntry:
        """Dequeue and return the full entry (item + enqueue time)."""
        if self.is_empty:
            raise FifoEmptyError(f"FIFO {self.name!r} empty")
        self.total_popped += 1
        return self._entries.popleft()

    def peek(self) -> Any:
        """Return the oldest item without dequeuing it."""
        if self.is_empty:
            raise FifoEmptyError(f"FIFO {self.name!r} empty")
        return self._entries[0].item


class AsyncFifo(SyncFifo):
    """A dual-clock FIFO with gray-code pointer synchronisation timing.

    ``crossing_latency_ps`` reports the extra latency a beat pays to cross
    from the write domain to the read domain: the write-pointer gray code
    must settle through ``sync_stages`` flops of the read clock before the
    read side observes the new occupancy, plus one read-clock cycle for
    the output register.
    """

    def __init__(
        self,
        name: str,
        depth: int,
        write_clock: ClockDomain,
        read_clock: ClockDomain,
        sync_stages: int = 2,
    ) -> None:
        super().__init__(name, depth)
        if sync_stages < 1:
            raise ValueError("a CDC synchroniser needs at least one stage")
        self.write_clock = write_clock
        self.read_clock = read_clock
        self.sync_stages = sync_stages

    @property
    def crossing_latency_ps(self) -> int:
        """Write-to-read latency added by the pointer synchronisers."""
        return self.read_clock.cycles_to_ps(self.sync_stages + 1)

    @property
    def write_bandwidth_bps(self) -> float:
        """Sustainable write-side bandwidth for a given beat width."""
        raise NotImplementedError("use bandwidth_for(width_bits) instead")

    def bandwidth_for(self, write_width_bits: int, read_width_bits: int) -> Tuple[float, float]:
        """(write, read) bandwidth in bits/s for the two port widths."""
        return (
            self.write_clock.bandwidth_bps(write_width_bits),
            self.read_clock.bandwidth_bps(read_width_bits),
        )

    def is_lossless(self, write_width_bits: int, read_width_bits: int) -> bool:
        """True when read bandwidth >= write bandwidth (the S*M <= R*U rule).

        The paper instructs users to select instances matching
        ``S x M = R x U`` for lossless bandwidth; a faster read side is
        equally safe, so the check is an inequality.
        """
        write_bw, read_bw = self.bandwidth_for(write_width_bits, read_width_bits)
        return read_bw >= write_bw
