"""Fully pipelined stage and chain timing models.

A :class:`PipelineStage` models a hardware block that

* accepts one data beat of ``data_width_bits`` per ``initiation_interval``
  clock cycles (``initiation_interval == 1`` means fully pipelined), and
* delays each beat by a fixed ``latency_cycles`` from input to output.

This is exactly the contract the paper's interface wrapper makes: "fully
pipelined sequential translation logic ... operates without generating
bubbles in the processing and consumes a few fixed clock cycles".  In
this model an extra fully pipelined stage therefore *never* reduces
throughput and adds only a constant latency -- the mechanism behind
Figures 10 and 17 is reproduced structurally, not by fiat.

Transactions flow through a :class:`PipelineChain` in cut-through fashion:
a downstream stage starts working as soon as the first beat of a
transaction emerges from the upstream stage.
"""

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.clock import ClockDomain


class _TransactionIdCounter:
    """Resettable allocator behind :attr:`Transaction.txn_id`.

    The seed used a module-global ``itertools.count()``, so the ids a
    run observed depended on every Transaction any earlier test or
    reused pool worker had ever created.  A resettable counter keeps
    allocation O(1) while letting each run (the sweep runner resets it
    per point) hand out the same ids every time.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def reset(self, start: int = 0) -> None:
        self._next = start


_TXN_IDS = _TransactionIdCounter()


def next_transaction_id() -> int:
    """Allocate the next transaction id (monotonic within a run)."""
    return _TXN_IDS.allocate()


def reset_transaction_ids(start: int = 0) -> None:
    """Restart transaction-id allocation (deterministic-run boundary)."""
    _TXN_IDS.reset(start)


@dataclass
class Transaction:
    """A unit of work moving through a data path (packet, burst, ...)."""

    size_bytes: int
    created_ps: int = 0
    kind: str = "data"
    metadata: Dict[str, Any] = field(default_factory=dict)
    txn_id: int = field(default_factory=next_transaction_id)
    completed_ps: Optional[int] = None

    @property
    def latency_ps(self) -> int:
        """End-to-end latency; only valid once the transaction completed."""
        if self.completed_ps is None:
            raise ValueError(f"transaction {self.txn_id} has not completed")
        return self.completed_ps - self.created_ps


@dataclass
class StageTiming:
    """Timing record for one transaction through one stage."""

    start_ps: int
    first_beat_out_ps: int
    last_beat_out_ps: int


class PipelineStage:
    """One fully or partially pipelined processing stage.

    Args:
        name: stage name for diagnostics.
        clock: the stage's clock domain.
        data_width_bits: beat width.
        latency_cycles: fixed input-to-output delay per beat.
        initiation_interval: cycles between accepted beats (1 = full rate).
        per_transaction_overhead_cycles: extra busy cycles charged once per
            transaction (e.g. a DMA descriptor fetch or a DDR row
            activation); this consumes issue slots and therefore *does*
            reduce throughput for small transactions.
    """

    def __init__(
        self,
        name: str,
        clock: ClockDomain,
        data_width_bits: int,
        latency_cycles: int = 1,
        initiation_interval: int = 1,
        per_transaction_overhead_cycles: int = 0,
        per_transaction_overhead_bytes: int = 0,
    ) -> None:
        if data_width_bits <= 0:
            raise ValueError("data width must be positive")
        if latency_cycles < 0:
            raise ValueError("latency cannot be negative")
        if initiation_interval < 1:
            raise ValueError("initiation interval must be >= 1")
        self.name = name
        self.clock = clock
        self.data_width_bits = data_width_bits
        self.latency_cycles = latency_cycles
        self.initiation_interval = initiation_interval
        self.per_transaction_overhead_cycles = per_transaction_overhead_cycles
        if per_transaction_overhead_bytes:
            # Framing overhead (preamble + IFG on Ethernet, TLP headers on
            # PCIe) expressed as extra busy cycles per transaction.
            self.per_transaction_overhead_cycles += math.ceil(
                per_transaction_overhead_bytes * 8 / data_width_bits
            )
        self._next_free_ps = 0
        self.transactions_processed = 0
        self.busy_ps = 0
        self._beats_cache: Dict[int, int] = {}

    def beats(self, size_bytes: int) -> int:
        """Number of data beats needed to carry ``size_bytes``.

        Sweeps push thousands of same-sized transactions through a
        stage, so the ceil-division is memoised per size.
        """
        cached = self._beats_cache.get(size_bytes)
        if cached is None:
            cached = 1 if size_bytes <= 0 else math.ceil(
                size_bytes * 8 / self.data_width_bits
            )
            self._beats_cache[size_bytes] = cached
        return cached

    @property
    def bandwidth_bps(self) -> float:
        """Peak sustainable bandwidth in bits per second."""
        return self.clock.bandwidth_bps(self.data_width_bits) / self.initiation_interval

    def effective_bandwidth_bps(self, size_bytes: int) -> float:
        """Sustainable bandwidth for back-to-back ``size_bytes`` transactions."""
        beats = self.beats(size_bytes)
        busy_cycles = beats * self.initiation_interval + self.per_transaction_overhead_cycles
        return size_bytes * 8 * self.clock.freq_hz / busy_cycles

    def process(self, arrival_ps: int, size_bytes: int) -> StageTiming:
        """Account one transaction through the stage; returns its timing."""
        period = self.clock.period_ps
        start = max(arrival_ps, self._next_free_ps)
        start = self.clock.next_edge_ps(start)
        beats = self.beats(size_bytes)
        busy = (beats * self.initiation_interval + self.per_transaction_overhead_cycles) * period
        self._next_free_ps = start + busy
        first_out = start + self.latency_cycles * period
        last_out = start + (self.latency_cycles + (beats - 1) * self.initiation_interval) * period
        self.transactions_processed += 1
        self.busy_ps += busy
        return StageTiming(start, first_out, last_out)

    def reset(self) -> None:
        """Clear occupancy and statistics (new measurement window)."""
        self._next_free_ps = 0
        self.transactions_processed = 0
        self.busy_ps = 0

    def __repr__(self) -> str:
        return (
            f"PipelineStage({self.name!r}, {self.data_width_bits}b@"
            f"{self.clock.freq_mhz:g}MHz, lat={self.latency_cycles}cyc)"
        )


class PipelineChain:
    """A cut-through chain of pipeline stages.

    The chain's sustainable bandwidth is the minimum stage bandwidth; its
    zero-load latency is the sum of per-stage fixed latencies.  Both are
    available analytically (:meth:`bandwidth_bps`,
    :meth:`zero_load_latency_ps`) and are also what the transaction-level
    accounting converges to.
    """

    def __init__(self, name: str, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ValueError("a pipeline chain needs at least one stage")
        self.name = name
        self.stages: List[PipelineStage] = list(stages)

    def bandwidth_bps(self, size_bytes: Optional[int] = None) -> float:
        """Bottleneck bandwidth, optionally for a given transaction size."""
        if size_bytes is None:
            return min(stage.bandwidth_bps for stage in self.stages)
        return min(stage.effective_bandwidth_bps(size_bytes) for stage in self.stages)

    def zero_load_latency_ps(self, size_bytes: int = 0) -> int:
        """First-beat-in to last-beat-out latency with no contention."""
        latency = 0
        for stage in self.stages:
            latency += stage.latency_cycles * stage.clock.period_ps
        last = self.stages[-1]
        latency += (last.beats(size_bytes) - 1) * last.initiation_interval * last.clock.period_ps
        return latency

    def process(self, transaction: Transaction, arrival_ps: Optional[int] = None) -> Transaction:
        """Push one transaction through every stage (cut-through)."""
        time_ps = transaction.created_ps if arrival_ps is None else arrival_ps
        last_out = time_ps
        for stage in self.stages:
            timing = stage.process(time_ps, transaction.size_bytes)
            time_ps = timing.first_beat_out_ps
            last_out = timing.last_beat_out_ps
        transaction.completed_ps = last_out
        return transaction

    def process_batch(
        self,
        size_bytes: int,
        gap_ps: float,
        start_index: int,
        count: int,
        latencies: Optional[List[int]] = None,
    ) -> Tuple[int, int, int]:
        """Push ``count`` equal-sized transactions through the chain.

        Packet ``i`` (absolute index ``start_index + i``) arrives at
        ``int(round(index * gap_ps))`` -- the same arrival law as the
        per-Transaction sweep loop.  Returns ``(first_completion_ps,
        last_completion_ps, total_latency_ps)`` and, when ``latencies``
        is given, appends each packet's latency to it.

        This is the sweep hot path: per-stage constants (period, busy
        time, fixed latency, last-beat offset) are hoisted out of the
        packet loop, no Transaction objects are allocated, and stage
        occupancy/statistics are folded back in bulk afterwards --
        observationally identical to ``count`` :meth:`process` calls
        (pinned by tests against :func:`run_packet_sweep_reference`).
        """
        if count <= 0:
            return 0, 0, 0
        params = []
        for stage in self.stages:
            period = stage.clock.period_ps
            beats = stage.beats(size_bytes)
            busy = (beats * stage.initiation_interval
                    + stage.per_transaction_overhead_cycles) * period
            latency = stage.latency_cycles * period
            tail = (stage.latency_cycles
                    + (beats - 1) * stage.initiation_interval) * period
            params.append([stage.clock.next_edge_ps, busy, latency, tail,
                           stage._next_free_ps, busy * count])
        first_completion = None
        last_out = 0
        total_latency = 0
        collect = latencies.append if latencies is not None else None
        for index in range(start_index, start_index + count):
            arrival = int(round(index * gap_ps))
            time_ps = arrival
            for entry in params:
                free_ps = entry[4]
                start = time_ps if time_ps > free_ps else free_ps
                start = entry[0](start)
                entry[4] = start + entry[1]
                last_out = start + entry[3]
                time_ps = start + entry[2]
            latency = last_out - arrival
            total_latency += latency
            if collect is not None:
                collect(latency)
            if first_completion is None:
                first_completion = last_out
        for stage, entry in zip(self.stages, params):
            stage._next_free_ps = entry[4]
            stage.transactions_processed += count
            stage.busy_ps += entry[5]
        return first_completion, last_out, total_latency

    def process_traced(self, transaction: Transaction, trace,
                       arrival_ps: Optional[int] = None) -> Transaction:
        """Like :meth:`process`, emitting one trace span per stage.

        A parent span covers the transaction end to end; each stage's
        occupancy window (issue edge to last beat out) becomes a child
        complete-span, so the JSONL trace shows the request crossing
        link -> RBB -> wrapper/CDC -> role.  ``trace`` is a
        :class:`repro.runtime.TraceBus`.
        """
        time_ps = transaction.created_ps if arrival_ps is None else arrival_ps
        span = trace.begin(f"{self.name}.txn", ts_ps=time_ps,
                           size_bytes=transaction.size_bytes,
                           txn=transaction.txn_id)
        last_out = time_ps
        for stage in self.stages:
            timing = stage.process(time_ps, transaction.size_bytes)
            trace.complete(stage.name, timing.start_ps, timing.last_beat_out_ps)
            time_ps = timing.first_beat_out_ps
            last_out = timing.last_beat_out_ps
        transaction.completed_ps = last_out
        trace.end(span, ts_ps=last_out)
        return transaction

    def reset(self) -> None:
        """Reset every stage in the chain."""
        for stage in self.stages:
            stage.reset()

    def extended(self, name: str, extra: Sequence[PipelineStage]) -> "PipelineChain":
        """A new chain with ``extra`` stages appended (shares stage objects)."""
        return PipelineChain(name, self.stages + list(extra))

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"PipelineChain({self.name!r}, {len(self.stages)} stages)"


def run_packet_sweep(
    chain: PipelineChain,
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
    context=None,
    trace_packets: int = 4,
    engine: str = "auto",
) -> Tuple[float, float]:
    """Drive ``packet_count`` packets through ``chain``; measure performance.

    Packets arrive back to back at ``offered_load_bps`` (default: line
    rate of the first stage).  Returns ``(throughput_bps, mean_latency_ns)``.

    When a :class:`repro.runtime.SimContext` is supplied (or ambient),
    the sweep point is wrapped in a trace span, the first
    ``trace_packets`` transactions emit per-stage child spans, and the
    point's latency histogram and throughput land in the metrics
    registry under ``sweep.<chain>.<size>B``.  With no context the hot
    loop is untouched.

    ``engine`` selects how the untraced bulk of the train executes:
    ``"auto"`` (the default) uses the closed-form numpy kernel in
    :mod:`repro.sim.vector` whenever the chain is analytic, ``"vector"``
    demands it, and ``"des"`` forces the scalar reference-semantics
    loop.  The kernel is pinned to exact integer equality against the
    scalar path, so the engine is invisible in the results.
    """
    from repro.sim.vector import process_batch_vector, resolve_engine

    use_vector = resolve_engine(chain, engine)
    if context is None:
        from repro.runtime import current_context

        context = current_context()
    chain.reset()
    # A sweep point is a run boundary: ids restart at zero so the txn
    # ids embedded in traced spans are a pure function of the point, not
    # of whatever ran earlier in this process (test order, pool-worker
    # reuse, a previous sweep on the same context).
    reset_transaction_ids()
    if offered_load_bps is None:
        # Saturate the chain without unbounded queueing: offer slightly
        # under the bottleneck's effective bandwidth for this size.
        offered_load_bps = chain.bandwidth_bps(packet_size_bytes) * 0.98
    gap_ps = packet_size_bytes * 8 / offered_load_bps * 1e12
    total_latency_ps = 0
    first_completion = None
    last_completion = 0
    point_span = None
    latencies: Optional[List[int]] = None
    if context is not None:
        point_span = context.trace.begin(
            f"sweep.{chain.name}.{packet_size_bytes}B", ts_ps=0,
            packets=packet_count,
        )
        latencies = []
    traced_head = min(trace_packets, packet_count) if latencies is not None else 0
    for index in range(traced_head):
        arrival = int(round(index * gap_ps))
        txn = Transaction(size_bytes=packet_size_bytes, created_ps=arrival)
        chain.process_traced(txn, context.trace)
        latency_ps = txn.completed_ps - arrival
        total_latency_ps += latency_ps
        latencies.append(latency_ps)
        if first_completion is None:
            first_completion = txn.completed_ps
        last_completion = txn.completed_ps or last_completion
    if packet_count > traced_head:
        if use_vector:
            first_batch, last_batch, batch_latency = process_batch_vector(
                chain, packet_size_bytes, gap_ps, traced_head,
                packet_count - traced_head, latencies,
            )
        else:
            first_batch, last_batch, batch_latency = chain.process_batch(
                packet_size_bytes, gap_ps, traced_head,
                packet_count - traced_head, latencies,
            )
        total_latency_ps += batch_latency
        if first_completion is None:
            first_completion = first_batch
        last_completion = last_batch
    # Steady-state window: first completion to last completion, so the
    # pipeline's fill latency does not bias the throughput of a finite
    # packet train.
    duration_ps = max(last_completion - (first_completion or 0), 1)
    throughput_bps = (packet_count - 1) * packet_size_bytes * 8 / (duration_ps / 1e12)
    mean_latency_ns = total_latency_ps / packet_count / 1_000
    if context is not None:
        ns = context.metrics.namespace(
            f"sweep.{chain.name}.{packet_size_bytes}B"
        )
        ns.histogram("latency_ps").extend(latencies)
        ns.set_gauge("throughput_gbps", throughput_bps / 1e9)
        ns.set_gauge("mean_latency_ns", mean_latency_ns)
        context.trace.end(point_span, ts_ps=last_completion)
    return throughput_bps, mean_latency_ns


def run_packet_sweep_reference(
    chain: PipelineChain,
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
) -> Tuple[float, float]:
    """The original per-Transaction sweep loop, preserved verbatim.

    Kept for two jobs: tests pin :func:`run_packet_sweep`'s fast path to
    it transaction for transaction, and ``benchmarks/sweep_smoke.py``
    times it as the serial baseline the optimised runner is measured
    against.  Do not optimise this function.
    """
    chain.reset()
    if offered_load_bps is None:
        offered_load_bps = chain.bandwidth_bps(packet_size_bytes) * 0.98
    gap_ps = packet_size_bytes * 8 / offered_load_bps * 1e12
    total_latency_ps = 0
    first_completion = None
    last_completion = 0
    for index in range(packet_count):
        arrival = int(round(index * gap_ps))
        txn = Transaction(size_bytes=packet_size_bytes, created_ps=arrival)
        chain.process(txn)
        total_latency_ps += txn.latency_ps
        if first_completion is None:
            first_completion = txn.completed_ps
        last_completion = txn.completed_ps or last_completion
    duration_ps = max(last_completion - (first_completion or 0), 1)
    throughput_bps = (packet_count - 1) * packet_size_bytes * 8 / (duration_ps / 1e12)
    mean_latency_ns = total_latency_ps / packet_count / 1_000
    return throughput_bps, mean_latency_ns
