"""Fully pipelined stage and chain timing models.

A :class:`PipelineStage` models a hardware block that

* accepts one data beat of ``data_width_bits`` per ``initiation_interval``
  clock cycles (``initiation_interval == 1`` means fully pipelined), and
* delays each beat by a fixed ``latency_cycles`` from input to output.

This is exactly the contract the paper's interface wrapper makes: "fully
pipelined sequential translation logic ... operates without generating
bubbles in the processing and consumes a few fixed clock cycles".  In
this model an extra fully pipelined stage therefore *never* reduces
throughput and adds only a constant latency -- the mechanism behind
Figures 10 and 17 is reproduced structurally, not by fiat.

Transactions flow through a :class:`PipelineChain` in cut-through fashion:
a downstream stage starts working as soon as the first beat of a
transaction emerges from the upstream stage.
"""

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.clock import ClockDomain

_transaction_ids = itertools.count()


@dataclass
class Transaction:
    """A unit of work moving through a data path (packet, burst, ...)."""

    size_bytes: int
    created_ps: int = 0
    kind: str = "data"
    metadata: Dict[str, Any] = field(default_factory=dict)
    txn_id: int = field(default_factory=lambda: next(_transaction_ids))
    completed_ps: Optional[int] = None

    @property
    def latency_ps(self) -> int:
        """End-to-end latency; only valid once the transaction completed."""
        if self.completed_ps is None:
            raise ValueError(f"transaction {self.txn_id} has not completed")
        return self.completed_ps - self.created_ps


@dataclass
class StageTiming:
    """Timing record for one transaction through one stage."""

    start_ps: int
    first_beat_out_ps: int
    last_beat_out_ps: int


class PipelineStage:
    """One fully or partially pipelined processing stage.

    Args:
        name: stage name for diagnostics.
        clock: the stage's clock domain.
        data_width_bits: beat width.
        latency_cycles: fixed input-to-output delay per beat.
        initiation_interval: cycles between accepted beats (1 = full rate).
        per_transaction_overhead_cycles: extra busy cycles charged once per
            transaction (e.g. a DMA descriptor fetch or a DDR row
            activation); this consumes issue slots and therefore *does*
            reduce throughput for small transactions.
    """

    def __init__(
        self,
        name: str,
        clock: ClockDomain,
        data_width_bits: int,
        latency_cycles: int = 1,
        initiation_interval: int = 1,
        per_transaction_overhead_cycles: int = 0,
        per_transaction_overhead_bytes: int = 0,
    ) -> None:
        if data_width_bits <= 0:
            raise ValueError("data width must be positive")
        if latency_cycles < 0:
            raise ValueError("latency cannot be negative")
        if initiation_interval < 1:
            raise ValueError("initiation interval must be >= 1")
        self.name = name
        self.clock = clock
        self.data_width_bits = data_width_bits
        self.latency_cycles = latency_cycles
        self.initiation_interval = initiation_interval
        self.per_transaction_overhead_cycles = per_transaction_overhead_cycles
        if per_transaction_overhead_bytes:
            # Framing overhead (preamble + IFG on Ethernet, TLP headers on
            # PCIe) expressed as extra busy cycles per transaction.
            self.per_transaction_overhead_cycles += math.ceil(
                per_transaction_overhead_bytes * 8 / data_width_bits
            )
        self._next_free_ps = 0
        self.transactions_processed = 0
        self.busy_ps = 0

    def beats(self, size_bytes: int) -> int:
        """Number of data beats needed to carry ``size_bytes``."""
        if size_bytes <= 0:
            return 1
        return math.ceil(size_bytes * 8 / self.data_width_bits)

    @property
    def bandwidth_bps(self) -> float:
        """Peak sustainable bandwidth in bits per second."""
        return self.clock.bandwidth_bps(self.data_width_bits) / self.initiation_interval

    def effective_bandwidth_bps(self, size_bytes: int) -> float:
        """Sustainable bandwidth for back-to-back ``size_bytes`` transactions."""
        beats = self.beats(size_bytes)
        busy_cycles = beats * self.initiation_interval + self.per_transaction_overhead_cycles
        return size_bytes * 8 * self.clock.freq_hz / busy_cycles

    def process(self, arrival_ps: int, size_bytes: int) -> StageTiming:
        """Account one transaction through the stage; returns its timing."""
        period = self.clock.period_ps
        start = max(arrival_ps, self._next_free_ps)
        start = self.clock.next_edge_ps(start)
        beats = self.beats(size_bytes)
        busy = (beats * self.initiation_interval + self.per_transaction_overhead_cycles) * period
        self._next_free_ps = start + busy
        first_out = start + self.latency_cycles * period
        last_out = start + (self.latency_cycles + (beats - 1) * self.initiation_interval) * period
        self.transactions_processed += 1
        self.busy_ps += busy
        return StageTiming(start, first_out, last_out)

    def reset(self) -> None:
        """Clear occupancy and statistics (new measurement window)."""
        self._next_free_ps = 0
        self.transactions_processed = 0
        self.busy_ps = 0

    def __repr__(self) -> str:
        return (
            f"PipelineStage({self.name!r}, {self.data_width_bits}b@"
            f"{self.clock.freq_mhz:g}MHz, lat={self.latency_cycles}cyc)"
        )


class PipelineChain:
    """A cut-through chain of pipeline stages.

    The chain's sustainable bandwidth is the minimum stage bandwidth; its
    zero-load latency is the sum of per-stage fixed latencies.  Both are
    available analytically (:meth:`bandwidth_bps`,
    :meth:`zero_load_latency_ps`) and are also what the transaction-level
    accounting converges to.
    """

    def __init__(self, name: str, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ValueError("a pipeline chain needs at least one stage")
        self.name = name
        self.stages: List[PipelineStage] = list(stages)

    def bandwidth_bps(self, size_bytes: Optional[int] = None) -> float:
        """Bottleneck bandwidth, optionally for a given transaction size."""
        if size_bytes is None:
            return min(stage.bandwidth_bps for stage in self.stages)
        return min(stage.effective_bandwidth_bps(size_bytes) for stage in self.stages)

    def zero_load_latency_ps(self, size_bytes: int = 0) -> int:
        """First-beat-in to last-beat-out latency with no contention."""
        latency = 0
        for stage in self.stages:
            latency += stage.latency_cycles * stage.clock.period_ps
        last = self.stages[-1]
        latency += (last.beats(size_bytes) - 1) * last.initiation_interval * last.clock.period_ps
        return latency

    def process(self, transaction: Transaction, arrival_ps: Optional[int] = None) -> Transaction:
        """Push one transaction through every stage (cut-through)."""
        time_ps = transaction.created_ps if arrival_ps is None else arrival_ps
        last_out = time_ps
        for stage in self.stages:
            timing = stage.process(time_ps, transaction.size_bytes)
            time_ps = timing.first_beat_out_ps
            last_out = timing.last_beat_out_ps
        transaction.completed_ps = last_out
        return transaction

    def process_traced(self, transaction: Transaction, trace,
                       arrival_ps: Optional[int] = None) -> Transaction:
        """Like :meth:`process`, emitting one trace span per stage.

        A parent span covers the transaction end to end; each stage's
        occupancy window (issue edge to last beat out) becomes a child
        complete-span, so the JSONL trace shows the request crossing
        link -> RBB -> wrapper/CDC -> role.  ``trace`` is a
        :class:`repro.runtime.TraceBus`.
        """
        time_ps = transaction.created_ps if arrival_ps is None else arrival_ps
        span = trace.begin(f"{self.name}.txn", ts_ps=time_ps,
                           size_bytes=transaction.size_bytes)
        last_out = time_ps
        for stage in self.stages:
            timing = stage.process(time_ps, transaction.size_bytes)
            trace.complete(stage.name, timing.start_ps, timing.last_beat_out_ps)
            time_ps = timing.first_beat_out_ps
            last_out = timing.last_beat_out_ps
        transaction.completed_ps = last_out
        trace.end(span, ts_ps=last_out)
        return transaction

    def reset(self) -> None:
        """Reset every stage in the chain."""
        for stage in self.stages:
            stage.reset()

    def extended(self, name: str, extra: Sequence[PipelineStage]) -> "PipelineChain":
        """A new chain with ``extra`` stages appended (shares stage objects)."""
        return PipelineChain(name, self.stages + list(extra))

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"PipelineChain({self.name!r}, {len(self.stages)} stages)"


def run_packet_sweep(
    chain: PipelineChain,
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
    context=None,
    trace_packets: int = 4,
) -> Tuple[float, float]:
    """Drive ``packet_count`` packets through ``chain``; measure performance.

    Packets arrive back to back at ``offered_load_bps`` (default: line
    rate of the first stage).  Returns ``(throughput_bps, mean_latency_ns)``.

    When a :class:`repro.runtime.SimContext` is supplied (or ambient),
    the sweep point is wrapped in a trace span, the first
    ``trace_packets`` transactions emit per-stage child spans, and the
    point's latency histogram and throughput land in the metrics
    registry under ``sweep.<chain>.<size>B``.  With no context the hot
    loop is untouched.
    """
    if context is None:
        from repro.runtime import current_context

        context = current_context()
    chain.reset()
    if offered_load_bps is None:
        # Saturate the chain without unbounded queueing: offer slightly
        # under the bottleneck's effective bandwidth for this size.
        offered_load_bps = chain.bandwidth_bps(packet_size_bytes) * 0.98
    gap_ps = packet_size_bytes * 8 / offered_load_bps * 1e12
    total_latency_ps = 0
    first_completion = None
    last_completion = 0
    point_span = None
    latencies: Optional[List[int]] = None
    if context is not None:
        point_span = context.trace.begin(
            f"sweep.{chain.name}.{packet_size_bytes}B", ts_ps=0,
            packets=packet_count,
        )
        latencies = []
    for index in range(packet_count):
        arrival = int(round(index * gap_ps))
        txn = Transaction(size_bytes=packet_size_bytes, created_ps=arrival)
        if latencies is not None and index < trace_packets:
            chain.process_traced(txn, context.trace)
        else:
            chain.process(txn)
        total_latency_ps += txn.latency_ps
        if latencies is not None:
            latencies.append(txn.latency_ps)
        if first_completion is None:
            first_completion = txn.completed_ps
        last_completion = txn.completed_ps or last_completion
    # Steady-state window: first completion to last completion, so the
    # pipeline's fill latency does not bias the throughput of a finite
    # packet train.
    duration_ps = max(last_completion - (first_completion or 0), 1)
    throughput_bps = (packet_count - 1) * packet_size_bytes * 8 / (duration_ps / 1e12)
    mean_latency_ns = total_latency_ps / packet_count / 1_000
    if context is not None:
        ns = context.metrics.namespace(
            f"sweep.{chain.name}.{packet_size_bytes}B"
        )
        ns.histogram("latency_ps").extend(latencies)
        ns.set_gauge("throughput_gbps", throughput_bps / 1e9)
        ns.set_gauge("mean_latency_ns", mean_latency_ns)
        context.trace.end(point_span, ts_ps=last_completion)
    return throughput_bps, mean_latency_ns
