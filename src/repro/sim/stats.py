"""Measurement instrumentation: latency, throughput, and event counters.

These are the software equivalents of the monitoring logic the paper puts
in every RBB's reusable part ("real-time throughput, packet loss, queue
usage, and processing rate").
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Counter:
    """A named monotonic counter (packets, drops, hits, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a separate counter")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class LatencyStats:
    """Streaming latency statistics with exact percentiles.

    Samples are stored (picoseconds) so percentiles are exact; benchmark
    sweeps in this repository stay in the tens of thousands of samples so
    memory use is negligible.
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: List[int] = []
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None
        self._sorted: Optional[List[int]] = None

    def add(self, sample_ps: int) -> None:
        if sample_ps < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(sample_ps)
        self._sum += sample_ps
        self._min = sample_ps if self._min is None else min(self._min, sample_ps)
        self._max = sample_ps if self._max is None else max(self._max, sample_ps)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean_ps(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return self._sum / len(self._samples)

    @property
    def mean_ns(self) -> float:
        return self.mean_ps / 1_000

    @property
    def mean_us(self) -> float:
        return self.mean_ps / 1_000_000

    @property
    def min_ps(self) -> int:
        if self._min is None:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def max_ps(self) -> int:
        if self._max is None:
            raise ValueError("no samples recorded")
        return self._max

    def percentile_ps(self, fraction: float) -> int:
        """Exact percentile by nearest-rank (``fraction`` in [0, 1]).

        The sorted view is cached and invalidated on mutation, so
        reading many percentiles costs one sort, not one per call.
        """
        if not self._samples:
            raise ValueError("no samples recorded")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(0, math.ceil(fraction * len(self._sorted)) - 1)
        return self._sorted[rank]

    def extend(self, samples_ps: List[int]) -> None:
        """Bulk-add samples (one pass of C-speed ``sum``/``min``/``max``)."""
        if not samples_ps:
            return
        low = min(samples_ps)
        if low < 0:
            raise ValueError("latency cannot be negative")
        high = max(samples_ps)
        self._samples.extend(samples_ps)
        self._sum += sum(samples_ps)
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)
        self._sorted = None

    def merge(self, other: "LatencyStats") -> None:
        """Fold another stats object's samples into this one."""
        if not other._samples:
            return
        self._samples.extend(other._samples)
        self._sum += other._sum
        self._min = other._min if self._min is None else min(self._min, other._min)
        self._max = other._max if self._max is None else max(self._max, other._max)
        self._sorted = None

    def reset(self) -> None:
        self._samples.clear()
        self._sum = 0
        self._min = None
        self._max = None
        self._sorted = None


class ThroughputMeter:
    """Accumulates transferred bytes/items over a simulated time window."""

    def __init__(self, name: str = "throughput") -> None:
        self.name = name
        self.total_bytes = 0
        self.total_items = 0
        self._first_ps: Optional[int] = None
        self._last_ps: Optional[int] = None

    def record(self, size_bytes: int, time_ps: int) -> None:
        """Record a completed transfer of ``size_bytes`` at ``time_ps``."""
        self.total_bytes += size_bytes
        self.total_items += 1
        if self._first_ps is None or time_ps < self._first_ps:
            self._first_ps = time_ps
        if self._last_ps is None or time_ps > self._last_ps:
            self._last_ps = time_ps

    @property
    def window_ps(self) -> int:
        if self._first_ps is None or self._last_ps is None:
            raise ValueError("no transfers recorded")
        return max(self._last_ps - self._first_ps, 1)

    @property
    def bits_per_second(self) -> float:
        return self.total_bytes * 8 / (self.window_ps / 1e12)

    @property
    def gbps(self) -> float:
        return self.bits_per_second / 1e9

    @property
    def items_per_second(self) -> float:
        return self.total_items / (self.window_ps / 1e12)

    def reset(self) -> None:
        self.total_bytes = 0
        self.total_items = 0
        self._first_ps = None
        self._last_ps = None


@dataclass
class MonitorSnapshot:
    """A point-in-time dump of a module's monitoring counters.

    This is the payload a ``MODULE_STATUS_READ`` command returns from an
    RBB's monitoring logic.
    """

    module: str
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        merged: Dict[str, float] = dict(self.counters)
        merged.update(self.gauges)
        return merged
