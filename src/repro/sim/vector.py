"""Closed-form vectorized packet-train kernel.

The scalar sweep loop (:meth:`repro.sim.pipeline.PipelineChain.process`
and its batch form ``process_batch``) walks one packet at a time through
the cut-through recurrence

    start[i, j] = next_edge_j(max(out[i, j-1], start[i-1, j] + busy[i-1, j]))

where ``out[i, j-1]`` is the first-beat-out time of packet ``i`` at the
upstream stage and ``busy`` is the stage's occupancy per packet.  Two
facts make the recurrence collapse into array operations:

* ``busy`` is always a whole number of clock periods, and ``start`` is
  always edge-aligned, so ``start[i-1] + busy[i-1]`` is already on a
  clock edge -- ``next_edge`` distributes over the ``max``:
  ``start[i] = max(next_edge(out[i]), start[i-1] + busy[i-1])``;
* subtracting the exclusive prefix sum ``B[i] = busy[0] + ... +
  busy[i-1]`` turns that into a running maximum:
  ``start[i] - B[i] = max(next_edge(out[i]) - B[i], start[i-1] -
  B[i-1])``, i.e. ``start = B + cummax(next_edge(out) - B)``.

One ``cumsum`` + one ``cummax`` per stage therefore replays the entire
train -- back-pressure through stage occupancy included -- in a handful
of numpy passes, and every operation reproduces the scalar arithmetic
bit for bit (the float divisions inside ``next_edge`` and ``beats`` are
replicated, not "improved", so the kernel is pinned to **exact integer
equality** against :func:`repro.sim.pipeline.run_packet_sweep_reference`
for uniform and mixed-size trains alike).

When numpy is unavailable every entry point degrades gracefully:
:func:`chain_supports_vector` returns ``False`` and the callers fall
back to the scalar path.
"""

import math
from typing import Any, List, Optional, Sequence, Tuple

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.errors import ConfigurationError
from repro.obs.profiler import phase as _profile_phase
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage

#: Recognised execution engines for analytic packet sweeps.
ENGINES: Tuple[str, ...] = ("auto", "vector", "des")


def numpy_available() -> bool:
    """Whether the vector kernel can run at all."""
    return _np is not None


def chain_supports_vector(chain: PipelineChain) -> bool:
    """True when every stage is an analytic :class:`PipelineStage`.

    Subclassed stages or clocks may override ``process``/``next_edge_ps``
    with behaviour the closed form cannot see, so anything but the exact
    base types routes to the scalar (DES-equivalent) fallback.
    """
    if _np is None:
        return False
    return all(
        type(stage) is PipelineStage and type(stage.clock) is ClockDomain
        for stage in chain.stages
    )


def resolve_engine(chain: PipelineChain, engine: str) -> bool:
    """Map an engine name to "use the vector kernel?" for ``chain``.

    ``auto`` picks the vector kernel whenever the chain supports it;
    ``vector`` demands it (raising :class:`ConfigurationError` when the
    chain has non-analytic features or numpy is missing); ``des`` forces
    the scalar reference-semantics path.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown sweep engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    if engine == "des":
        return False
    supported = chain_supports_vector(chain)
    if engine == "vector" and not supported:
        raise ConfigurationError(
            "engine='vector' requested but the chain has non-analytic "
            "stages (or numpy is unavailable); use engine='auto' or 'des'"
        )
    return supported


class TrainTiming:
    """Per-packet timings of one vectorized train replay."""

    __slots__ = ("arrivals_ps", "completed_ps", "latencies_ps")

    def __init__(self, arrivals_ps, completed_ps) -> None:
        self.arrivals_ps = arrivals_ps
        self.completed_ps = completed_ps
        self.latencies_ps = completed_ps - arrivals_ps

    def __len__(self) -> int:
        return len(self.completed_ps)

    @property
    def first_completion_ps(self) -> int:
        return int(self.completed_ps[0])

    @property
    def last_completion_ps(self) -> int:
        return int(self.completed_ps[-1])

    @property
    def total_latency_ps(self) -> int:
        return int(self.latencies_ps.sum())

    def latencies_list(self) -> List[int]:
        """Latencies as plain Python ints (registry/JSON safe)."""
        return self.latencies_ps.tolist()


def _next_edge_array(times_ps, period_ps: int):
    """Vectorized ``ClockDomain.next_edge_ps`` -- same float ceil-divide."""
    return _np.ceil(times_ps / period_ps).astype(_np.int64) * period_ps


def _stage_beats(stage: PipelineStage, sizes_bytes) -> Any:
    """Vectorized ``PipelineStage.beats`` (same float ceil-divide)."""
    beats = _np.ceil((sizes_bytes * 8) / stage.data_width_bits).astype(_np.int64)
    return _np.where(sizes_bytes <= 0, 1, beats)


def simulate_train(
    chain: PipelineChain,
    arrivals_ps,
    sizes_bytes,
    update_state: bool = True,
) -> TrainTiming:
    """Replay a whole train through ``chain`` as array operations.

    ``arrivals_ps`` is an int64 array of creation times; ``sizes_bytes``
    is either a scalar (uniform train) or an int64 array of per-packet
    sizes (mixed train).  Starting occupancy is read from each stage's
    live ``_next_free_ps``, and with ``update_state`` (the default) the
    final occupancy and the ``transactions_processed``/``busy_ps``
    statistics are folded back -- observationally identical to calling
    :meth:`PipelineChain.process` once per packet, which the tests pin
    packet for packet.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for the vector kernel")
    arrivals = _np.asarray(arrivals_ps, dtype=_np.int64)
    count = int(arrivals.shape[0])
    if count == 0:
        raise ConfigurationError("a train needs at least one packet")
    uniform = _np.isscalar(sizes_bytes) or getattr(sizes_bytes, "ndim", 1) == 0
    if not uniform:
        sizes = _np.asarray(sizes_bytes, dtype=_np.int64)
        if sizes.shape != arrivals.shape:
            raise ConfigurationError("per-packet sizes must match arrivals")
    out = arrivals
    last_out = arrivals
    index = _np.arange(count, dtype=_np.int64)
    with _profile_phase("vector.kernel"):
        for stage in chain.stages:
            period = stage.clock.period_ps
            if uniform:
                beats = stage.beats(int(sizes_bytes))
                busy = (beats * stage.initiation_interval
                        + stage.per_transaction_overhead_cycles) * period
                tail = (stage.latency_cycles
                        + (beats - 1) * stage.initiation_interval) * period
                ramp = busy * index
                busy_total = busy * count
                last_busy = busy
            else:
                beats = _stage_beats(stage, sizes)
                busy = (beats * stage.initiation_interval
                        + stage.per_transaction_overhead_cycles) * period
                tail = (stage.latency_cycles
                        + (beats - 1) * stage.initiation_interval) * period
                ramp = _np.concatenate(([0], _np.cumsum(busy[:-1])))
                busy_total = int(busy.sum())
                last_busy = int(busy[-1])
            latency = stage.latency_cycles * period
            edges = _next_edge_array(out, period)
            free0 = stage._next_free_ps
            if free0 > 0:
                # next_edge distributes over max, so the carried-in occupancy
                # only needs folding into the first packet's issue edge.
                aligned = int(math.ceil(free0 / period)) * period
                if aligned > edges[0]:
                    edges[0] = aligned
            starts = ramp + _np.maximum.accumulate(edges - ramp)
            out = starts + latency
            last_out = starts + tail
            if update_state:
                stage._next_free_ps = int(starts[-1]) + last_busy
                stage.transactions_processed += count
                stage.busy_ps += busy_total
    return TrainTiming(arrivals, last_out)


def process_batch_vector(
    chain: PipelineChain,
    size_bytes: int,
    gap_ps: float,
    start_index: int,
    count: int,
    latencies: Optional[List[int]] = None,
) -> Tuple[int, int, int]:
    """Drop-in vector replacement for :meth:`PipelineChain.process_batch`.

    Same arrival law (``int(round(index * gap_ps))``, replicated via
    ``np.rint`` on the identical float products), same return tuple,
    same side effects on stage occupancy and statistics.
    """
    if count <= 0:
        return 0, 0, 0
    indices = _np.arange(start_index, start_index + count, dtype=_np.float64)
    arrivals = _np.rint(indices * gap_ps).astype(_np.int64)
    timing = simulate_train(chain, arrivals, size_bytes)
    if latencies is not None:
        latencies.extend(timing.latencies_list())
    return (timing.first_completion_ps, timing.last_completion_ps,
            timing.total_latency_ps)


def run_packet_sweep_vector(
    chain: PipelineChain,
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
) -> Tuple[float, float]:
    """Vectorized :func:`repro.sim.pipeline.run_packet_sweep_reference`.

    Returns the identical ``(throughput_bps, mean_latency_ns)`` floats:
    the arrival grid, the per-stage recurrence, and the final float
    arithmetic all reproduce the reference loop exactly.
    """
    chain.reset()
    if offered_load_bps is None:
        offered_load_bps = chain.bandwidth_bps(packet_size_bytes) * 0.98
    gap_ps = packet_size_bytes * 8 / offered_load_bps * 1e12
    first, last, total_latency = process_batch_vector(
        chain, packet_size_bytes, gap_ps, 0, packet_count,
    )
    duration_ps = max(last - (first or 0), 1)
    throughput_bps = (packet_count - 1) * packet_size_bytes * 8 / (duration_ps / 1e12)
    mean_latency_ns = total_latency / packet_count / 1_000
    return throughput_bps, mean_latency_ns


def simulate_train_reference(
    chain: PipelineChain,
    arrivals_ps: Sequence[int],
    sizes_bytes: Sequence[int],
) -> List[int]:
    """Scalar oracle for :func:`simulate_train` (per-packet completions).

    Pushes one :class:`~repro.sim.pipeline.Transaction` per packet
    through :meth:`PipelineChain.process` -- the bench and the property
    tests compare the kernel against this loop packet for packet.
    """
    from repro.sim.pipeline import Transaction

    completed: List[int] = []
    for arrival, size in zip(arrivals_ps, sizes_bytes):
        txn = Transaction(size_bytes=int(size), created_ps=int(arrival))
        chain.process(txn)
        completed.append(txn.completed_ps)
    return completed
