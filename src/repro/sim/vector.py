"""Closed-form vectorized packet-train kernel.

The scalar sweep loop (:meth:`repro.sim.pipeline.PipelineChain.process`
and its batch form ``process_batch``) walks one packet at a time through
the cut-through recurrence

    start[i, j] = next_edge_j(max(out[i, j-1], start[i-1, j] + busy[i-1, j]))

where ``out[i, j-1]`` is the first-beat-out time of packet ``i`` at the
upstream stage and ``busy`` is the stage's occupancy per packet.  Two
facts make the recurrence collapse into array operations:

* ``busy`` is always a whole number of clock periods, and ``start`` is
  always edge-aligned, so ``start[i-1] + busy[i-1]`` is already on a
  clock edge -- ``next_edge`` distributes over the ``max``:
  ``start[i] = max(next_edge(out[i]), start[i-1] + busy[i-1])``;
* subtracting the exclusive prefix sum ``B[i] = busy[0] + ... +
  busy[i-1]`` turns that into a running maximum:
  ``start[i] - B[i] = max(next_edge(out[i]) - B[i], start[i-1] -
  B[i-1])``, i.e. ``start = B + cummax(next_edge(out) - B)``.

One ``cumsum`` + one ``cummax`` per stage therefore replays the entire
train -- back-pressure through stage occupancy included -- in a handful
of numpy passes, and every operation reproduces the scalar arithmetic
bit for bit (the float divisions inside ``next_edge`` and ``beats`` are
replicated, not "improved", so the kernel is pinned to **exact integer
equality** against :func:`repro.sim.pipeline.run_packet_sweep_reference`
for uniform and mixed-size trains alike).

When numpy is unavailable every entry point degrades gracefully:
:func:`chain_supports_vector` returns ``False`` and the callers fall
back to the scalar path.
"""

import math
from typing import Any, List, Optional, Sequence, Tuple

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.errors import ConfigurationError
from repro.obs.profiler import phase as _profile_phase
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage

#: Recognised execution engines for analytic packet sweeps.
ENGINES: Tuple[str, ...] = ("auto", "vector", "des")


def numpy_available() -> bool:
    """Whether the vector kernel can run at all."""
    return _np is not None


def chain_supports_vector(chain: PipelineChain) -> bool:
    """True when every stage is an analytic :class:`PipelineStage`.

    Subclassed stages or clocks may override ``process``/``next_edge_ps``
    with behaviour the closed form cannot see, so anything but the exact
    base types routes to the scalar (DES-equivalent) fallback.
    """
    if _np is None:
        return False
    return all(
        type(stage) is PipelineStage and type(stage.clock) is ClockDomain
        for stage in chain.stages
    )


def resolve_engine(chain: PipelineChain, engine: str) -> bool:
    """Map an engine name to "use the vector kernel?" for ``chain``.

    ``auto`` picks the vector kernel whenever the chain supports it;
    ``vector`` demands it (raising :class:`ConfigurationError` when the
    chain has non-analytic features or numpy is missing); ``des`` forces
    the scalar reference-semantics path.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown sweep engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    if engine == "des":
        return False
    supported = chain_supports_vector(chain)
    if engine == "vector" and not supported:
        raise ConfigurationError(
            "engine='vector' requested but the chain has non-analytic "
            "stages (or numpy is unavailable); use engine='auto' or 'des'"
        )
    return supported


class TrainTiming:
    """Per-packet timings of one vectorized train replay."""

    __slots__ = ("arrivals_ps", "completed_ps", "latencies_ps")

    def __init__(self, arrivals_ps, completed_ps) -> None:
        self.arrivals_ps = arrivals_ps
        self.completed_ps = completed_ps
        self.latencies_ps = completed_ps - arrivals_ps

    def __len__(self) -> int:
        return len(self.completed_ps)

    @property
    def first_completion_ps(self) -> int:
        return int(self.completed_ps[0])

    @property
    def last_completion_ps(self) -> int:
        return int(self.completed_ps[-1])

    @property
    def total_latency_ps(self) -> int:
        return int(self.latencies_ps.sum())

    def latencies_list(self) -> List[int]:
        """Latencies as plain Python ints (registry/JSON safe)."""
        return self.latencies_ps.tolist()


def _next_edge_array(times_ps, period_ps: int):
    """Vectorized ``ClockDomain.next_edge_ps`` -- same float ceil-divide.

    Always returns a fresh buffer (the division allocates it), so
    callers may mutate the result in place.
    """
    edges = times_ps / period_ps
    _np.ceil(edges, out=edges)
    edges = edges.astype(_np.int64)
    edges *= period_ps
    return edges


def _stage_beats(stage: PipelineStage, sizes_bytes) -> Any:
    """Vectorized ``PipelineStage.beats`` (same float ceil-divide)."""
    beats = _np.ceil((sizes_bytes * 8) / stage.data_width_bits).astype(_np.int64)
    return _np.where(sizes_bytes <= 0, 1, beats)


def simulate_train(
    chain: PipelineChain,
    arrivals_ps,
    sizes_bytes,
    update_state: bool = True,
) -> TrainTiming:
    """Replay a whole train through ``chain`` as array operations.

    ``arrivals_ps`` is an int64 array of creation times; ``sizes_bytes``
    is either a scalar (uniform train) or an int64 array of per-packet
    sizes (mixed train).  Starting occupancy is read from each stage's
    live ``_next_free_ps``, and with ``update_state`` (the default) the
    final occupancy and the ``transactions_processed``/``busy_ps``
    statistics are folded back -- observationally identical to calling
    :meth:`PipelineChain.process` once per packet, which the tests pin
    packet for packet.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for the vector kernel")
    arrivals = _np.asarray(arrivals_ps, dtype=_np.int64)
    count = int(arrivals.shape[0])
    if count == 0:
        raise ConfigurationError("a train needs at least one packet")
    uniform = _np.isscalar(sizes_bytes) or getattr(sizes_bytes, "ndim", 1) == 0
    if not uniform:
        sizes = _np.asarray(sizes_bytes, dtype=_np.int64)
        if sizes.shape != arrivals.shape:
            raise ConfigurationError("per-packet sizes must match arrivals")
    out = arrivals
    last_out = arrivals
    index = _np.arange(count, dtype=_np.int64)
    with _profile_phase("vector.kernel"):
        for stage in chain.stages:
            period = stage.clock.period_ps
            if uniform:
                beats = stage.beats(int(sizes_bytes))
                busy = (beats * stage.initiation_interval
                        + stage.per_transaction_overhead_cycles) * period
                tail = (stage.latency_cycles
                        + (beats - 1) * stage.initiation_interval) * period
                ramp = busy * index
                busy_total = busy * count
                last_busy = busy
            else:
                beats = _stage_beats(stage, sizes)
                busy = (beats * stage.initiation_interval
                        + stage.per_transaction_overhead_cycles) * period
                tail = (stage.latency_cycles
                        + (beats - 1) * stage.initiation_interval) * period
                ramp = _np.concatenate(([0], _np.cumsum(busy[:-1])))
                busy_total = int(busy.sum())
                last_busy = int(busy[-1])
            latency = stage.latency_cycles * period
            edges = _next_edge_array(out, period)
            free0 = stage._next_free_ps
            if free0 > 0:
                # next_edge distributes over max, so the carried-in occupancy
                # only needs folding into the first packet's issue edge.
                aligned = int(math.ceil(free0 / period)) * period
                if aligned > edges[0]:
                    edges[0] = aligned
            starts = ramp + _np.maximum.accumulate(edges - ramp)
            out = starts + latency
            last_out = starts + tail
            if update_state:
                stage._next_free_ps = int(starts[-1]) + last_busy
                stage.transactions_processed += count
                stage.busy_ps += busy_total
    return TrainTiming(arrivals, last_out)


def process_batch_vector(
    chain: PipelineChain,
    size_bytes: int,
    gap_ps: float,
    start_index: int,
    count: int,
    latencies: Optional[List[int]] = None,
) -> Tuple[int, int, int]:
    """Drop-in vector replacement for :meth:`PipelineChain.process_batch`.

    Same arrival law (``int(round(index * gap_ps))``, replicated via
    ``np.rint`` on the identical float products), same return tuple,
    same side effects on stage occupancy and statistics.
    """
    if count <= 0:
        return 0, 0, 0
    indices = _np.arange(start_index, start_index + count, dtype=_np.float64)
    arrivals = _np.rint(indices * gap_ps).astype(_np.int64)
    timing = simulate_train(chain, arrivals, size_bytes)
    if latencies is not None:
        latencies.extend(timing.latencies_list())
    return (timing.first_completion_ps, timing.last_completion_ps,
            timing.total_latency_ps)


def run_packet_sweep_vector(
    chain: PipelineChain,
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
) -> Tuple[float, float]:
    """Vectorized :func:`repro.sim.pipeline.run_packet_sweep_reference`.

    Returns the identical ``(throughput_bps, mean_latency_ns)`` floats:
    the arrival grid, the per-stage recurrence, and the final float
    arithmetic all reproduce the reference loop exactly.
    """
    chain.reset()
    if offered_load_bps is None:
        offered_load_bps = chain.bandwidth_bps(packet_size_bytes) * 0.98
    gap_ps = packet_size_bytes * 8 / offered_load_bps * 1e12
    first, last, total_latency = process_batch_vector(
        chain, packet_size_bytes, gap_ps, 0, packet_count,
    )
    duration_ps = max(last - (first or 0), 1)
    throughput_bps = (packet_count - 1) * packet_size_bytes * 8 / (duration_ps / 1e12)
    mean_latency_ns = total_latency / packet_count / 1_000
    return throughput_bps, mean_latency_ns


class BatchTrainTiming:
    """Per-packet timings of a fused multi-train replay.

    ``arrivals_ps``/``completed_ps``/``latencies_ps`` are ``(rows,
    packets)`` int64 tensors: row ``i`` is one independent train replay
    of the chain, bit-exact equal to what :func:`simulate_train` would
    have produced for that row alone.
    """

    __slots__ = ("arrivals_ps", "completed_ps", "latencies_ps")

    def __init__(self, arrivals_ps, completed_ps) -> None:
        self.arrivals_ps = arrivals_ps
        self.completed_ps = completed_ps
        self.latencies_ps = completed_ps - arrivals_ps

    def __len__(self) -> int:
        return int(self.completed_ps.shape[0])

    @property
    def rows(self) -> int:
        return int(self.completed_ps.shape[0])

    @property
    def packets(self) -> int:
        return int(self.completed_ps.shape[1])

    def row(self, index: int) -> TrainTiming:
        """One row's timings as a :class:`TrainTiming` (array views)."""
        return TrainTiming(self.arrivals_ps[index], self.completed_ps[index])


def _replay_trains(chain: PipelineChain, arrivals, sizes):
    """The fused cut-through recurrence over a ``(rows, packets)`` grid.

    Each row replays the chain independently from the chain's current
    carried-in ``_next_free_ps``, exactly as :func:`simulate_train`
    would for that row alone: the recurrence runs once per stage along
    axis 1, with per-row ``busy``/``tail`` columns broadcast across the
    packet axis.  ``sizes`` is a scalar (every row uniform at one size)
    or a ``(rows,)`` int64 array (per-row uniform sizes -- the sweep
    planner's shape).  Mutates nothing; returns ``(completed, info)``
    where ``completed`` is the ``(rows, packets)`` completion tensor and
    ``info`` is one ``(busy_per_txn, last_starts)`` pair per stage for
    the caller's state fold-back (``busy_per_txn`` is an int or a
    ``(rows,)`` array; ``last_starts`` is each row's final issue edge at
    that stage).
    """
    rows, count = (int(arrivals.shape[0]), int(arrivals.shape[1]))
    uniform = _np.isscalar(sizes) or getattr(sizes, "ndim", 1) == 0
    out = arrivals
    completed = arrivals
    index = _np.arange(count, dtype=_np.int64)[None, :]
    info = []
    final = len(chain.stages) - 1
    for position, stage in enumerate(chain.stages):
        period = stage.clock.period_ps
        if uniform:
            beats = stage.beats(int(sizes))
            busy = (beats * stage.initiation_interval
                    + stage.per_transaction_overhead_cycles) * period
            tail = (stage.latency_cycles
                    + (beats - 1) * stage.initiation_interval) * period
            busy_col = busy
            tail_col = tail
        else:
            beats = _stage_beats(stage, sizes)
            busy = (beats * stage.initiation_interval
                    + stage.per_transaction_overhead_cycles) * period
            tail = (stage.latency_cycles
                    + (beats - 1) * stage.initiation_interval) * period
            busy_col = busy[:, None]
            tail_col = tail[:, None]
        latency = stage.latency_cycles * period
        # _next_edge_array hands back a fresh buffer; from here on every
        # op mutates it in place -- same integer operations as the
        # per-train kernel, just without per-stage temporaries.
        starts = _next_edge_array(out, period)
        free0 = stage._next_free_ps
        if free0 > 0:
            # Same fold as simulate_train: the carried-in occupancy only
            # gates each row's first issue edge.
            aligned = int(math.ceil(free0 / period)) * period
            _np.maximum(starts[:, 0], aligned, out=starts[:, 0])
        ramp = busy_col * index
        # starts = ramp + cummax(edges - ramp) along the packet axis.
        starts -= ramp
        _np.maximum.accumulate(starts, axis=1, out=starts)
        starts += ramp
        info.append((busy, starts[:, -1].copy()))
        if position == final:
            starts += tail_col
            completed = starts
        else:
            starts += latency
            out = starts
    return completed, info


def simulate_trains(
    chain: PipelineChain,
    arrivals_ps,
    sizes_bytes,
    update_state: bool = True,
) -> BatchTrainTiming:
    """Replay many independent trains through ``chain`` in one pass.

    ``arrivals_ps`` is a ``(rows, packets)`` int64 tensor of creation
    times; ``sizes_bytes`` is a scalar (one size everywhere) or a
    ``(rows,)`` int64 array of per-row uniform sizes.  Every row starts
    from the chain's current carried-in ``_next_free_ps`` and replays
    independently -- the results are bit-exact equal to calling
    :func:`simulate_train` once per row with the starting occupancy
    restored in between.

    With ``update_state`` (the default) the fold-back matches that
    sequential oracle loop too: ``transactions_processed`` and
    ``busy_ps`` accumulate over **all** rows and the final occupancy is
    the **last** row's, which the property tests pin stage for stage.

    Rows must share one packet count: the sweep planner buckets points
    by ``packet_count`` before calling in, so no padding packets ever
    exist to lie about throughput or latency.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for the vector kernel")
    arrivals = _np.asarray(arrivals_ps, dtype=_np.int64)
    if arrivals.ndim != 2:
        raise ConfigurationError(
            "simulate_trains needs a (rows, packets) arrival tensor; "
            f"got shape {arrivals.shape}"
        )
    rows, count = (int(arrivals.shape[0]), int(arrivals.shape[1]))
    if rows == 0 or count == 0:
        raise ConfigurationError("a train batch needs >= 1 row and packet")
    uniform = _np.isscalar(sizes_bytes) or getattr(sizes_bytes, "ndim", 1) == 0
    if not uniform:
        sizes_bytes = _np.asarray(sizes_bytes, dtype=_np.int64)
        if sizes_bytes.shape != (rows,):
            raise ConfigurationError(
                "per-row sizes must be one int per train row"
            )
    with _profile_phase("vector.kernel"):
        completed, info = _replay_trains(chain, arrivals, sizes_bytes)
    if update_state:
        for stage, (busy, last_starts) in zip(chain.stages, info):
            if _np.isscalar(busy) or getattr(busy, "ndim", 1) == 0:
                total_busy = int(busy) * count * rows
                last_busy = int(busy)
            else:
                total_busy = int(busy.sum()) * count
                last_busy = int(busy[-1])
            stage._next_free_ps = int(last_starts[-1]) + last_busy
            stage.transactions_processed += rows * count
            stage.busy_ps += total_busy
    return BatchTrainTiming(arrivals, completed)


def run_packet_sweep_vector_batch(
    chain: PipelineChain,
    packet_sizes: Sequence[int],
    packet_count: int,
    offered_loads_bps: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float]]:
    """Fused multi-point :func:`run_packet_sweep_vector`.

    Executes one sweep point per entry of ``packet_sizes`` (all sharing
    ``packet_count``) against ``chain`` in a single ``(points, packets)``
    kernel pass.  Returns one ``(throughput_bps, mean_latency_ns)`` pair
    per point, **bit-exact** equal to calling
    :func:`run_packet_sweep_vector` once per size in order -- including
    the chain's folded-back stage occupancy and statistics, which end up
    exactly as the sequential per-point loop leaves them (each point
    resets the chain, so the final state is the last point's).

    This is the sweep hot path's fused tier: per-point dispatch, memo
    probes, and kernel launches collapse into one batched replay, so a
    cold app x device x size grid costs a handful of numpy passes per
    tailored chain instead of one per point.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for the vector kernel")
    sizes = [int(size) for size in packet_sizes]
    if not sizes:
        return []
    if packet_count < 1:
        raise ConfigurationError("packet_count must be >= 1")
    if offered_loads_bps is not None and len(offered_loads_bps) != len(sizes):
        raise ConfigurationError(
            "offered_loads_bps must match packet_sizes one for one"
        )
    chain.reset()
    gaps = []
    for row, size in enumerate(sizes):
        load = (offered_loads_bps[row] if offered_loads_bps is not None
                else chain.bandwidth_bps(size) * 0.98)
        gaps.append(size * 8 / load * 1e12)
    index = _np.arange(packet_count, dtype=_np.float64)[None, :]
    arrivals = _np.rint(
        _np.asarray(gaps, dtype=_np.float64)[:, None] * index
    ).astype(_np.int64)
    sizes_arr = _np.asarray(sizes, dtype=_np.int64)
    with _profile_phase("vector.kernel"):
        completed, info = _replay_trains(chain, arrivals, sizes_arr)
    # Fold back the *last* row's state only: the sequential per-point
    # loop resets the chain at each point, so after it runs the chain
    # carries exactly (and only) the final point's occupancy and stats.
    for stage, (busy, last_starts) in zip(chain.stages, info):
        last_busy = int(busy if _np.isscalar(busy) else busy[-1])
        stage._next_free_ps = int(last_starts[-1]) + last_busy
        stage.transactions_processed += packet_count
        stage.busy_ps += last_busy * packet_count
    latencies = completed - arrivals
    results: List[Tuple[float, float]] = []
    for row, size in enumerate(sizes):
        # Per-row scalar arithmetic replicates run_packet_sweep_vector's
        # float expressions operand for operand.
        first = int(completed[row, 0])
        last = int(completed[row, -1])
        total_latency = int(latencies[row].sum())
        duration_ps = max(last - (first or 0), 1)
        throughput_bps = (packet_count - 1) * size * 8 / (duration_ps / 1e12)
        mean_latency_ns = total_latency / packet_count / 1_000
        results.append((throughput_bps, mean_latency_ns))
    return results


def simulate_train_reference(
    chain: PipelineChain,
    arrivals_ps: Sequence[int],
    sizes_bytes: Sequence[int],
) -> List[int]:
    """Scalar oracle for :func:`simulate_train` (per-packet completions).

    Pushes one :class:`~repro.sim.pipeline.Transaction` per packet
    through :meth:`PipelineChain.process` -- the bench and the property
    tests compare the kernel against this loop packet for packet.
    """
    from repro.sim.pipeline import Transaction

    completed: List[int] = []
    for arrival, size in zip(arrivals_ps, sizes_bytes):
        txn = Transaction(size_bytes=int(size), created_ps=int(arrival))
        chain.process(txn)
        completed.append(txn.completed_ps)
    return completed
