"""Synthetic workload generators.

Substitutes for the paper's production traffic: packet/flow streams for
the networking applications, matrices for the compute benchmark, vector
accesses for the storage benchmark, and TCP segments for the
communication benchmark.
"""

from repro.workloads.packets import FiveTuple, Packet, PacketGenerator

__all__ = ["FiveTuple", "Packet", "PacketGenerator"]
