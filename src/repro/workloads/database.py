"""Vector-database access benchmark (paper section 5.1, Figure 18c).

"We deploy a vector database on external memory and sequentially,
fixedly, and randomly read and write 32-bit vectors to measure the
number of vectors processed per second."

The database stores 32-bit elements in the Memory RBB's address space;
the three access modes generate the address patterns whose behaviour
the bank/row model differentiates (sequential > fixed > random).
"""

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.rbb.memory import AccessResult, MemoryAccess, MemoryRbb
from repro.errors import ConfigurationError

VECTOR_BYTES = 4  # 32-bit vectors
#: Vectors fetched per memory burst (64-byte DDR burst / 4 bytes).
VECTORS_PER_BURST = 16


class AccessMode(enum.Enum):
    SEQUENTIAL = "sequential"
    FIXED = "fixed"
    RANDOM = "random"


@dataclass
class VectorDatabase:
    """A flat array of 32-bit vectors on Memory-RBB-backed storage."""

    capacity_vectors: int = 1 << 20
    seed: int = 42

    def __post_init__(self) -> None:
        if self.capacity_vectors < VECTORS_PER_BURST:
            raise ConfigurationError("database too small for one burst")
        self._rng = random.Random(self.seed)
        self.data = np.zeros(self.capacity_vectors, dtype=np.uint32)

    # --- functional operations (correctness) ---------------------------------

    def write(self, index: int, value: int) -> None:
        self.data[index] = value & 0xFFFF_FFFF

    def read(self, index: int) -> int:
        return int(self.data[index])

    # --- address-pattern generation (performance) ---------------------------------

    def addresses(self, mode: AccessMode, count: int,
                  fixed_window: int = 8) -> List[int]:
        """Burst-granular addresses for ``count`` vector operations."""
        bursts = max(count // VECTORS_PER_BURST, 1)
        burst_bytes = VECTORS_PER_BURST * VECTOR_BYTES
        span = self.capacity_vectors * VECTOR_BYTES
        if mode is AccessMode.SEQUENTIAL:
            return [(index * burst_bytes) % span for index in range(bursts)]
        if mode is AccessMode.FIXED:
            # Fixed working set: the same small set of scattered rows
            # revisited over and over.  The rows stay open in their
            # banks, so fixed sits between sequential and random.
            row_stride = 17 * 1_024  # spread the set across distinct banks
            window = [
                (index * row_stride) % span for index in range(fixed_window)
            ]
            return [window[index % fixed_window] for index in range(bursts)]
        return [self._rng.randrange(0, span, burst_bytes) for _ in range(bursts)]


@dataclass(frozen=True)
class DatabaseRunResult:
    """Outcome of one access-mode run."""

    mode: AccessMode
    is_write: bool
    vectors_per_second: float
    memory: AccessResult


def vectors_per_access(mode: AccessMode) -> int:
    """Useful vectors delivered by one memory burst in each mode.

    Sequential requests coalesce: one 64-byte burst carries 16 useful
    vectors.  Fixed and random single-vector requests still move a full
    burst on the DRAM bus but deliver only the one vector asked for --
    the request amplification that makes random access so expensive.
    """
    return VECTORS_PER_BURST if mode is AccessMode.SEQUENTIAL else 1


def run_access_benchmark(
    memory: MemoryRbb,
    database: VectorDatabase,
    mode: AccessMode,
    vector_count: int = 64_000,
    is_write: bool = False,
) -> DatabaseRunResult:
    """Run one (mode, direction) point of Figure 18c."""
    addresses = database.addresses(mode, vector_count)
    accesses = [
        MemoryAccess(address=address, size_bytes=VECTORS_PER_BURST * VECTOR_BYTES,
                     is_write=is_write)
        for address in addresses
    ]
    result = memory.run_accesses(accesses)
    vectors = len(addresses) * vectors_per_access(mode)
    vectors_per_second = vectors / (result.total_ps / 1e12)
    return DatabaseRunResult(mode, is_write, vectors_per_second, result)


def full_sweep(memory: MemoryRbb, database: VectorDatabase,
               vector_count: int = 64_000) -> Dict[Tuple[str, str], float]:
    """All six (mode x direction) points; values in vectors/second."""
    results: Dict[Tuple[str, str], float] = {}
    for mode in AccessMode:
        for is_write in (False, True):
            run = run_access_benchmark(memory, database, mode, vector_count, is_write)
            direction = "write" if is_write else "read"
            results[(mode.value, direction)] = run.vectors_per_second
    return results
