"""Flow-level traffic generation with realistic skew.

Datacenter traffic is not uniform: flow popularity follows a Zipf-like
law and flow sizes are heavy-tailed (many mice, few elephants).  The
load balancer and flow director are only interesting under that skew,
so this module generates it deterministically:

* :func:`zipf_weights` -- a Zipf(alpha) popularity distribution;
* :class:`FlowSet` -- a population of flows with heavy-tailed sizes;
* :func:`skewed_packet_stream` -- packets drawn by flow popularity.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.workloads.packets import FiveTuple, Packet, PacketGenerator

#: Mice/elephant boundary used in the size statistics (bytes).
ELEPHANT_BYTES = 1_000_000


def zipf_weights(count: int, alpha: float = 1.1) -> List[float]:
    """Normalised Zipf popularity weights for ``count`` ranks."""
    if count < 1:
        raise ConfigurationError("need at least one flow")
    if alpha <= 0:
        raise ConfigurationError("Zipf alpha must be positive")
    raw = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


@dataclass(frozen=True)
class FlowProfile:
    """One flow with its popularity weight and total size."""

    flow: FiveTuple
    weight: float
    total_bytes: int

    @property
    def is_elephant(self) -> bool:
        return self.total_bytes >= ELEPHANT_BYTES


class FlowSet:
    """A deterministic population of skewed flows."""

    def __init__(self, count: int, alpha: float = 1.1,
                 pareto_shape: float = 1.2, mean_flow_bytes: int = 50_000,
                 seed: int = 2_025) -> None:
        if pareto_shape <= 1.0:
            raise ConfigurationError("Pareto shape must exceed 1 for a finite mean")
        self._rng = random.Random(seed)
        generator = PacketGenerator(seed=seed)
        weights = zipf_weights(count, alpha)
        scale = mean_flow_bytes * (pareto_shape - 1) / pareto_shape
        self.profiles: List[FlowProfile] = []
        for rank in range(count):
            size = int(scale * (1.0 - self._rng.random()) ** (-1.0 / pareto_shape))
            self.profiles.append(
                FlowProfile(generator.flow(rank), weights[rank], max(size, 64))
            )

    def __len__(self) -> int:
        return len(self.profiles)

    def elephants(self) -> List[FlowProfile]:
        return [profile for profile in self.profiles if profile.is_elephant]

    def top_share(self, fraction: float = 0.1) -> float:
        """Traffic share of the most popular ``fraction`` of flows."""
        head = max(int(len(self.profiles) * fraction), 1)
        return sum(profile.weight for profile in self.profiles[:head])


def skewed_packet_stream(
    flow_set: FlowSet,
    packet_count: int,
    packet_bytes: int = 512,
    tenant_count: int = 1,
    seed: int = 7,
) -> List[Packet]:
    """Packets drawn by flow popularity (deterministic per seed)."""
    rng = random.Random(seed)
    flows = [profile.flow for profile in flow_set.profiles]
    weights = [profile.weight for profile in flow_set.profiles]
    chosen = rng.choices(range(len(flows)), weights=weights, k=packet_count)
    packets: List[Packet] = []
    gap_ps = int(packet_bytes * 8 / 100e9 * 1e12)
    for index, flow_index in enumerate(chosen):
        packets.append(Packet(
            flow=flows[flow_index],
            size_bytes=packet_bytes,
            dst_mac=0x02_AA_BB_CC_DD_EE,
            tenant_id=flow_index % tenant_count,
            arrival_ps=index * gap_ps,
        ))
    return packets


def backend_imbalance(loads: Dict[str, int]) -> float:
    """max/mean load ratio -- 1.0 is perfect balance."""
    values = list(loads.values())
    if not values or sum(values) == 0:
        raise ConfigurationError("no load to measure")
    mean = sum(values) / len(values)
    return max(values) / mean
