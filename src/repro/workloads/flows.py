"""Flow-level traffic generation with realistic skew.

Datacenter traffic is not uniform: flow popularity follows a Zipf-like
law and flow sizes are heavy-tailed (many mice, few elephants).  The
load balancer and flow director are only interesting under that skew,
so this module generates it deterministically:

* :func:`zipf_weights` -- a Zipf(alpha) popularity distribution;
* :class:`FlowSet` -- a population of flows with heavy-tailed sizes;
* :func:`skewed_packet_stream` -- packets drawn by flow popularity.

Sampling is vectorized with a seeded :class:`numpy.random.Generator`,
so million-flow populations and million-packet streams build at array
speed; the fleet simulator (:mod:`repro.runtime.fleet`) leans on the
array forms (:func:`zipf_weights_array`, :func:`flow_hashes32`,
``FlowSet.sizes_bytes``) directly.  Without numpy everything falls back
to the original scalar loops.
"""

import random
from dataclasses import dataclass
from typing import Dict, List

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.errors import ConfigurationError
from repro.workloads.packets import FiveTuple, Packet, PacketGenerator

#: Mice/elephant boundary used in the size statistics (bytes).
ELEPHANT_BYTES = 1_000_000

_MASK64 = (1 << 64) - 1


def _check_zipf(count: int, alpha: float) -> None:
    if count < 1:
        raise ConfigurationError("need at least one flow")
    if alpha <= 0:
        raise ConfigurationError("Zipf alpha must be positive")


def zipf_weights_array(count: int, alpha: float = 1.1):
    """Normalised Zipf weights as a float64 array (requires numpy)."""
    if _np is None:
        raise ConfigurationError("numpy is required for zipf_weights_array")
    _check_zipf(count, alpha)
    ranks = _np.arange(1, count + 1, dtype=_np.float64)
    raw = 1.0 / ranks ** alpha
    return raw / raw.sum()


def zipf_weights(count: int, alpha: float = 1.1) -> List[float]:
    """Normalised Zipf popularity weights for ``count`` ranks."""
    if _np is not None:
        return zipf_weights_array(count, alpha).tolist()
    _check_zipf(count, alpha)
    raw = [1.0 / (rank ** alpha) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def _splitmix64(value: int) -> int:
    """Scalar splitmix64 finaliser (the fallback for :func:`flow_hashes32`)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def flow_hashes32(count: int, seed: int = 0):
    """Deterministic 32-bit hashes for flow ranks 0..count-1.

    A vectorized splitmix64 finaliser over ``rank + seed * golden``;
    statistically well-mixed, stable across platforms and numpy
    versions (pure integer arithmetic, no Generator state involved).
    Returns a ``uint32`` array, or a plain list without numpy.
    """
    if count < 0:
        raise ConfigurationError("hash count must be non-negative")
    offset = (seed * 0x9E3779B97F4A7C15) & _MASK64
    if _np is None:
        return [_splitmix64((rank + offset) & _MASK64) >> 32
                for rank in range(count)]
    x = _np.arange(count, dtype=_np.uint64) + _np.uint64(offset)
    x = x + _np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> _np.uint64(31))
    return (x >> _np.uint64(32)).astype(_np.uint32)


def _fnv1a64(text: str) -> int:
    """FNV-1a 64-bit hash of a channel label (stable across platforms)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 0x100000001B3) & _MASK64
    return value


def churn_stream_hashes32(count: int, seed: int, epoch: int, channel: str):
    """Deterministic 32-bit draws for one ``(seed, epoch, channel)`` stream.

    Each named channel of each epoch is an independent splitmix64
    stream: the triple is folded into a derived seed and handed to
    :func:`flow_hashes32`, so epoch N's arrivals never perturb epoch
    N's departures (or any other epoch's anything).  Pure integer
    arithmetic -- no :class:`numpy.random.Generator` state -- which is
    what lets the epoch orchestrator replay the exact same churn under
    both its incremental and full-recompute paths.
    """
    derived = _splitmix64(
        _splitmix64((seed & _MASK64) ^ _fnv1a64(channel))
        ^ _splitmix64((epoch * 0x9E3779B97F4A7C15) & _MASK64)
    )
    return flow_hashes32(count, derived)


class ChurnStream:
    """Vectorized, replayable churn randomness for epoch stepping.

    The fleet orchestrator draws every stochastic decision -- arrival
    rates and tenants, departure victims, migration picks -- from named
    per-epoch channels so any epoch's churn set is a pure function of
    ``(seed, epoch)``.  Rates come out as *integer* units (1 unit =
    1 kbps): integer loads keep every partial sum below 2**53, which
    makes float64 bincount accumulation exact and order-independent --
    the keystone of the incremental-vs-oracle bit-exactness guarantee.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def draws(self, epoch: int, channel: str, count: int):
        """``count`` raw uint32 draws from one epoch channel."""
        return churn_stream_hashes32(count, self.seed, epoch, channel)

    def block(self, epoch: int, channel: str, sizes):
        """One channel draw split across several consumers.

        The epoch hot loop needs four independent draw streams per
        epoch (departure victims, arrival rates, arrival tenants,
        arrival placement); materialising them as slices of ONE
        splitmix64 pass amortises the per-call vector setup four ways.
        Slicing is position-based, so the split is exactly as
        deterministic as separate channels would be.
        """
        draws = self.draws(epoch, channel, sum(sizes))
        parts = []
        offset = 0
        for size in sizes:
            parts.append(draws[offset:offset + size])
            offset += size
        return parts

    @staticmethod
    def as_picks(draws, modulus: int):
        """Raw uint32 draws folded to indices in ``[0, modulus)``."""
        if modulus < 1:
            raise ConfigurationError("pick modulus must be positive")
        if _np is None:
            return [int(value) % modulus for value in draws]
        return draws.astype(_np.int64) % modulus

    def picks(self, epoch: int, channel: str, count: int, modulus: int):
        """``count`` indices in ``[0, modulus)`` as an int64 array."""
        return self.as_picks(self.draws(epoch, channel, count), modulus)

    @staticmethod
    def as_harmonic_units(draws, scale_units: int, max_rank: int):
        """Raw draws folded to Zipf(alpha=1)-shaped integer rates.

        Each draw picks a uniform rank in ``[1, max_rank]`` and offers
        ``scale_units // rank`` -- the harmonic popularity law in pure
        integer division, so the same draw reproduces the same rate on
        every platform with no float pow in the loop.
        """
        if scale_units < 1:
            raise ConfigurationError("rate scale must be positive")
        ranks = ChurnStream.as_picks(draws, max_rank)
        if _np is None:
            return [max(scale_units // (rank + 1), 1) for rank in ranks]
        return _np.maximum(scale_units // (ranks + 1), 1)

    def harmonic_rate_units(self, epoch: int, channel: str, count: int,
                            scale_units: int, max_rank: int):
        """``count`` Zipf-shaped integer arrival rates from one channel."""
        return self.as_harmonic_units(
            self.draws(epoch, channel, count), scale_units, max_rank)


@dataclass(frozen=True)
class FlowProfile:
    """One flow with its popularity weight and total size."""

    flow: FiveTuple
    weight: float
    total_bytes: int

    @property
    def is_elephant(self) -> bool:
        return self.total_bytes >= ELEPHANT_BYTES


class FlowSet:
    """A deterministic population of skewed flows.

    ``weights`` and ``sizes_bytes`` are built as arrays up front (cheap
    even for millions of flows); the per-flow :class:`FlowProfile` list
    -- which needs a Python :class:`FiveTuple` object per flow -- is
    materialised lazily on first access to :attr:`profiles`.
    """

    def __init__(self, count: int, alpha: float = 1.1,
                 pareto_shape: float = 1.2, mean_flow_bytes: int = 50_000,
                 seed: int = 2_025) -> None:
        if pareto_shape <= 1.0:
            raise ConfigurationError("Pareto shape must exceed 1 for a finite mean")
        _check_zipf(count, alpha)
        self.count = count
        self._seed = seed
        scale = mean_flow_bytes * (pareto_shape - 1) / pareto_shape
        if _np is not None:
            self.weights = zipf_weights_array(count, alpha)
            rng = _np.random.default_rng(seed)
            raw = scale * (1.0 - rng.random(count)) ** (-1.0 / pareto_shape)
            # Inverse-CDF Pareto sampling; clip the astronomically rare
            # top draws so the int64 cast can never overflow.
            self.sizes_bytes = _np.clip(raw, 64, 2.0 ** 62).astype(_np.int64)
        else:
            self.weights = zipf_weights(count, alpha)
            rng = random.Random(seed)
            self.sizes_bytes = [
                max(int(scale * (1.0 - rng.random()) ** (-1.0 / pareto_shape)), 64)
                for _ in range(count)
            ]
        self._profiles: List[FlowProfile] = []

    @property
    def profiles(self) -> List[FlowProfile]:
        if not self._profiles:
            generator = PacketGenerator(seed=self._seed)
            weights = self.weights.tolist() if _np is not None else self.weights
            sizes = (self.sizes_bytes.tolist() if _np is not None
                     else self.sizes_bytes)
            self._profiles = [
                FlowProfile(generator.flow(rank), weights[rank], sizes[rank])
                for rank in range(self.count)
            ]
        return self._profiles

    def __len__(self) -> int:
        return self.count

    def elephants(self) -> List[FlowProfile]:
        return [profile for profile in self.profiles if profile.is_elephant]

    def top_share(self, fraction: float = 0.1) -> float:
        """Traffic share of the most popular ``fraction`` of flows."""
        head = max(int(self.count * fraction), 1)
        if _np is not None:
            return float(self.weights[:head].sum())
        return sum(self.weights[:head])


def skewed_packet_stream(
    flow_set: FlowSet,
    packet_count: int,
    packet_bytes: int = 512,
    tenant_count: int = 1,
    seed: int = 7,
) -> List[Packet]:
    """Packets drawn by flow popularity (deterministic per seed)."""
    if _np is not None:
        rng = _np.random.default_rng(seed)
        chosen = rng.choice(
            flow_set.count, size=packet_count, p=_np.asarray(flow_set.weights)
        ).tolist()
    else:
        rng = random.Random(seed)
        chosen = rng.choices(
            range(flow_set.count), weights=list(flow_set.weights), k=packet_count
        )
    flows = [profile.flow for profile in flow_set.profiles]
    packets: List[Packet] = []
    gap_ps = int(packet_bytes * 8 / 100e9 * 1e12)
    for index, flow_index in enumerate(chosen):
        packets.append(Packet(
            flow=flows[flow_index],
            size_bytes=packet_bytes,
            dst_mac=0x02_AA_BB_CC_DD_EE,
            tenant_id=flow_index % tenant_count,
            arrival_ps=index * gap_ps,
        ))
    return packets


def backend_imbalance(loads: Dict[str, int]) -> float:
    """max/mean load ratio -- 1.0 is perfect balance."""
    values = list(loads.values())
    if not values or sum(values) == 0:
        raise ConfigurationError("no load to measure")
    mean = sum(values) / len(values)
    return max(values) / mean
