"""Matrix-multiplication benchmark (paper section 5.1, Figure 18b).

"We perform single-precision floating-point matrix calculations for
matrices sized 64x64 across 1024 iterations, measuring the number of
matrix calculations per second.  ... the speed of matrix calculations
improves with increased parallelism through loop unrolling and using
more DSPs."

Two pieces: a *numerical kernel* (numpy reference + a blocked software
implementation, cross-checked by the tests) and a *hardware throughput
model* of a loop-unrolled systolic array whose MAC lanes scale with the
unroll degree.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

MATRIX_N = 64
ITERATIONS = 1_024

#: DSP48/AGX DSP blocks consumed per single-precision MAC lane
#: (mult + add, vendor soft-float mapping).
DSPS_PER_LANE = 5


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The golden result."""
    return a.astype(np.float32) @ b.astype(np.float32)


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int = 16) -> np.ndarray:
    """A blocked implementation mirroring the FPGA kernel's loop order."""
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError("inner dimensions do not match")
    n, k = a.shape
    _, m = b.shape
    out = np.zeros((n, m), dtype=np.float32)
    for row in range(0, n, block):
        for col in range(0, m, block):
            for inner in range(0, k, block):
                out[row:row + block, col:col + block] += (
                    a[row:row + block, inner:inner + block].astype(np.float32)
                    @ b[inner:inner + block, col:col + block].astype(np.float32)
                )
    return out


@dataclass(frozen=True)
class MatmulThroughputModel:
    """A loop-unrolled FPGA matmul kernel.

    With unroll degree P, the kernel performs ``P`` MACs per cycle, so a
    full N^3-MAC matrix product takes ``N^3 / P`` cycles plus a fixed
    drain latency.
    """

    n: int = MATRIX_N
    clock_mhz: float = 250.0
    drain_cycles: int = 128
    #: Initiation interval of the floating-point accumulation loop: the
    #: FP adder's 4-cycle latency serialises dependent accumulations
    #: unless the reduction tree is unrolled further.
    accumulate_ii: int = 4

    def cycles_per_matmul(self, parallelism: int) -> float:
        if parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        return self.n ** 3 * self.accumulate_ii / parallelism + self.drain_cycles

    def matmuls_per_second(self, parallelism: int) -> float:
        return self.clock_mhz * 1e6 / self.cycles_per_matmul(parallelism)

    def dsps_used(self, parallelism: int) -> int:
        return parallelism * DSPS_PER_LANE

    def sweep(self, degrees: Tuple[int, ...] = (4, 8, 16)) -> Tuple[Tuple[int, float], ...]:
        """(parallelism, matmuls/s) series -- the Figure 18b x-axis."""
        return tuple((degree, self.matmuls_per_second(degree)) for degree in degrees)


def run_iterations(parallelism: int, iterations: int = ITERATIONS,
                   model: MatmulThroughputModel = MatmulThroughputModel()) -> float:
    """Wall-clock seconds (simulated) for the paper's 1024 iterations."""
    return iterations * model.cycles_per_matmul(parallelism) / (model.clock_mhz * 1e6)
