"""Packet and flow models plus deterministic traffic generators."""

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

#: Ethernet frame size limits (bytes, without FCS games -- we keep it simple).
MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 9_600

#: Multicast MAC addresses have the least-significant bit of the first
#: octet set (IEEE 802.3).
_MULTICAST_BIT = 1 << 40


@dataclass(frozen=True)
class FiveTuple:
    """A transport flow identity."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def hash32(self) -> int:
        """A stable 32-bit flow hash (what the flow director keys on)."""
        data = (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.protocol.to_bytes(1, "big")
        )
        return zlib.crc32(data) & 0xFFFF_FFFF


@dataclass
class Packet:
    """One network packet moving through the data path."""

    flow: FiveTuple
    size_bytes: int
    dst_mac: int
    src_mac: int = 0x02_00_00_00_00_01
    tenant_id: int = 0
    arrival_ps: int = 0

    def __post_init__(self) -> None:
        if not MIN_FRAME_BYTES <= self.size_bytes <= MAX_FRAME_BYTES:
            raise ValueError(
                f"frame of {self.size_bytes} B outside [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}]"
            )

    @property
    def is_multicast(self) -> bool:
        return bool(self.dst_mac & _MULTICAST_BIT)


class PacketGenerator:
    """Deterministic (seeded) packet stream generator."""

    def __init__(self, seed: int = 2025) -> None:
        self._rng = random.Random(seed)

    def flow(self, index: Optional[int] = None) -> FiveTuple:
        """A random flow; pass ``index`` for a reproducible distinct flow."""
        rng = random.Random(index) if index is not None else self._rng
        return FiveTuple(
            src_ip=rng.getrandbits(32),
            dst_ip=rng.getrandbits(32),
            src_port=rng.randrange(1_024, 65_536),
            dst_port=rng.choice((80, 443, 8_080, 6_379, 3_306)),
            protocol=rng.choice((6, 6, 6, 17)),
        )

    def uniform_stream(
        self,
        count: int,
        size_bytes: int,
        flow_count: int = 64,
        local_mac: int = 0x02_AA_BB_CC_DD_EE,
        foreign_fraction: float = 0.0,
        multicast_fraction: float = 0.0,
        tenant_count: int = 1,
        line_rate_gbps: float = 100.0,
    ) -> List[Packet]:
        """``count`` fixed-size packets over ``flow_count`` flows.

        Arrival times are spaced at ``line_rate_gbps`` so downstream
        pipeline models see realistic inter-arrival gaps.  A fraction of
        packets can target foreign unicast MACs (to exercise the packet
        filter) or multicast groups.
        """
        flows = [self.flow(index) for index in range(flow_count)]
        gap_ps = int(size_bytes * 8 / (line_rate_gbps * 1e9) * 1e12)
        packets: List[Packet] = []
        for index in range(count):
            draw = self._rng.random()
            if draw < multicast_fraction:
                dst_mac = _MULTICAST_BIT | 0x5E_00_00_00_01
            elif draw < multicast_fraction + foreign_fraction:
                dst_mac = 0x02_DE_AD_BE_EF_00
            else:
                dst_mac = local_mac
            packets.append(
                Packet(
                    flow=flows[index % flow_count],
                    size_bytes=size_bytes,
                    dst_mac=dst_mac,
                    tenant_id=index % tenant_count,
                    arrival_ps=index * gap_ps,
                )
            )
        return packets

    def imix_stream(self, count: int, **kwargs) -> List[Packet]:
        """An IMIX-like mix of 64/576/1500-byte packets (7:4:1)."""
        sizes = [64] * 7 + [576] * 4 + [1_500]
        packets: List[Packet] = []
        for index in range(count):
            size = sizes[index % len(sizes)]
            packets.extend(self.uniform_stream(1, size, **kwargs))
        for index, packet in enumerate(packets):
            packet.arrival_ps = index * 120_000  # ~100G average pacing
        return packets
