"""TCP transmission benchmark (paper section 5.1, Figure 18d).

"We deploy FPGAs on two servers and connect them via the device network
interfaces.  The FPGAs directly forward the host's TCP traffic,
measuring end-to-end throughput and latency with varying packet sizes."

The path modelled is host A -> FPGA A (forward) -> wire -> FPGA B
(forward) -> host B.  TCP/IP/Ethernet headers consume 54 bytes of every
frame, so goodput rises with payload size -- the Figure 18d shape.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.rbb.network import NetworkRbb
from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage, run_packet_sweep

#: Ethernet (14) + IPv4 (20) + TCP (20) headers.
TCP_HEADER_BYTES = 54
#: Preamble + inter-frame gap on the wire.
WIRE_OVERHEAD_BYTES = 20
#: One-way propagation between adjacent racks (~10 m of fibre + PHYs).
WIRE_LATENCY_NS = 430.0
#: Kernel TCP stacks on both hosts (socket, copy, interrupt); this is
#: what puts Figure 18d's end-to-end latency in the tens of
#: microseconds regardless of framework.
HOST_STACK_LATENCY_US = 20.0
#: Per-byte host cost (copies, checksum) paid on both ends.
HOST_COPY_NS_PER_BYTE = 4.0


@dataclass(frozen=True)
class TcpRunResult:
    """One payload-size point."""

    payload_bytes: int
    goodput_gbps: float
    latency_us: float


def _forwarding_chain(network: NetworkRbb, with_framework_stage: bool,
                      framework_latency_ns: float) -> PipelineChain:
    """One FPGA's forwarding data path (MAC in -> forward -> MAC out)."""
    stages: List[PipelineStage] = [network.instance.datapath_stage("(rx)")]
    if with_framework_stage:
        # The framework's plumbing (wrapper for Harmonia, platform
        # streams for the baselines) -- fully pipelined either way.
        clock = network.instance.clock
        cycles = max(int(round(framework_latency_ns / (clock.period_ps / 1_000))), 1)
        stages.append(
            PipelineStage(
                name="framework-plumbing",
                clock=clock,
                data_width_bits=network.instance.data_width_bits,
                latency_cycles=cycles,
            )
        )
    stages.append(
        PipelineStage(
            name="forwarder",
            clock=network.instance.clock,
            data_width_bits=network.instance.data_width_bits,
            latency_cycles=6,
        )
    )
    stages.append(network.instance.datapath_stage("(tx)"))
    return PipelineChain("tcp-forward", stages)


def _wire_stage(rate_gbps: float) -> PipelineStage:
    """The physical link, line-rate limited with framing overhead."""
    clock = ClockDomain("wire", rate_gbps * 1_000 / 64)
    return PipelineStage(
        name="wire",
        clock=clock,
        data_width_bits=64,
        latency_cycles=int(round(WIRE_LATENCY_NS / (clock.period_ps / 1_000))),
        per_transaction_overhead_bytes=WIRE_OVERHEAD_BYTES,
    )


def run_tcp_benchmark(
    payload_bytes: int,
    framework_latency_ns: float = 9.3,
    packet_count: int = 1_000,
    network: NetworkRbb = None,
) -> TcpRunResult:
    """One end-to-end point: two forwarding FPGAs and the wire between."""
    if payload_bytes < 1:
        raise ConfigurationError("payload must be at least one byte")
    if network is None:
        network = NetworkRbb()
    frame_bytes = payload_bytes + TCP_HEADER_BYTES
    fpga_a = _forwarding_chain(network, True, framework_latency_ns)
    fpga_b = _forwarding_chain(network, True, framework_latency_ns)
    chain = PipelineChain(
        "tcp-e2e",
        fpga_a.stages + [_wire_stage(network.instance.performance_gbps)] + fpga_b.stages,
    )
    throughput_bps, latency_ns = run_packet_sweep(
        chain, packet_size_bytes=frame_bytes, packet_count=packet_count
    )
    goodput_bps = throughput_bps * payload_bytes / frame_bytes
    return TcpRunResult(
        payload_bytes=payload_bytes,
        goodput_gbps=goodput_bps / 1e9,
        latency_us=latency_ns / 1_000.0 + HOST_STACK_LATENCY_US
        + payload_bytes * HOST_COPY_NS_PER_BYTE / 1_000.0,
    )


def payload_sweep(
    payloads: Tuple[int, ...] = (64, 512, 1_446),
    framework_latency_ns: float = 9.3,
) -> List[TcpRunResult]:
    """The Figure 18d x-axis (64B / 512B / ~1500B frames)."""
    return [run_tcp_benchmark(payload, framework_latency_ns) for payload in payloads]
