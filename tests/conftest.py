"""Shared fixtures for the test suite."""

import pytest

from repro.core.shell import build_unified_shell
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D
from repro.sim.clock import ClockDomain


@pytest.fixture
def device_a():
    return DEVICE_A


@pytest.fixture
def device_b():
    return DEVICE_B


@pytest.fixture
def device_c():
    return DEVICE_C


@pytest.fixture
def device_d():
    return DEVICE_D


@pytest.fixture(params=["device-a", "device-b", "device-c", "device-d"])
def any_device(request):
    """Parametrised over all four evaluation devices."""
    from repro.platform.catalog import device_by_name

    return device_by_name(request.param)


@pytest.fixture
def unified_shell_a():
    return build_unified_shell(DEVICE_A)


@pytest.fixture
def clk_300():
    return ClockDomain("clk300", 300.0)


@pytest.fixture
def clk_100():
    return ClockDomain("clk100", 100.0)
