"""Tests for adapter-script generation (tcl / ruby automation)."""

import pytest

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.scripts import (
    generate_deployment_ruby,
    generate_device_adapter_tcl,
    generate_ip_config_tcl,
    script_language_for,
)
from repro.adapters.vendor_adapter import VendorAdapter
from repro.hw.ip.mac import xilinx_cmac_100g
from repro.hw.ip.pcie import xilinx_qdma
from repro.platform.catalog import DEVICE_A, DEVICE_B
from repro.platform.vendor import ScriptLanguage, VIVADO_2023_1
from repro.platform.device import PeripheralKind


def configured_adapter():
    adapter = DeviceAdapter(DEVICE_A)
    adapter.allocate_pins("mac0", PeripheralKind.QSFP28)
    adapter.map_clock("cmac_core", "sysclk_156_25")
    return adapter


class TestDeviceAdapterTcl:
    def test_contains_static_and_dynamic_sections(self):
        script = generate_device_adapter_tcl(configured_adapter())
        assert "static resource group" in script
        assert "dynamic mapping group" in script

    def test_static_properties_emitted(self):
        script = generate_device_adapter_tcl(configured_adapter())
        assert "set harmonia::static(chip) {XCVU35P}" in script
        assert "set harmonia::static(pcie_generation) {4}" in script

    def test_dynamic_mappings_emitted(self):
        script = generate_device_adapter_tcl(configured_adapter())
        assert "assign_pins -module mac0 -peripheral qsfp28 -bank 0" in script
        assert "create_clock_mapping -logical cmac_core -source sysclk_156_25" in script

    def test_deterministic(self):
        assert (generate_device_adapter_tcl(configured_adapter())
                == generate_device_adapter_tcl(configured_adapter()))

    def test_header_names_device_and_toolchain(self):
        script = generate_device_adapter_tcl(DeviceAdapter(DEVICE_B))
        assert "device: device-b" in script
        assert "vivado" in script


class TestIpConfigTcl:
    def test_one_create_ip_per_module(self):
        script = generate_ip_config_tcl([xilinx_cmac_100g(), xilinx_qdma()])
        assert script.count("create_ip -name") == 2
        assert "create_ip -name cmac_usplus -version 3.1" in script

    def test_every_config_param_becomes_a_property(self):
        ip = xilinx_cmac_100g()
        script = generate_ip_config_tcl([ip])
        assert script.count("set_property CONFIG.") == ip.config_item_count

    def test_module_names_tclified(self):
        script = generate_ip_config_tcl([xilinx_cmac_100g()])
        assert "xilinx_cmac_100g" in script
        assert "get_ips xilinx-cmac" not in script


class TestDeploymentRuby:
    def test_environment_and_dependencies_serialised(self):
        script = generate_deployment_ruby(
            VendorAdapter(VIVADO_2023_1), [xilinx_cmac_100g()], "dci-1"
        )
        assert "'tool' => 'vivado'" in script
        assert "'module' => 'xilinx-cmac-100g'" in script
        assert "Harmonia::Deploy.check!(environment, dependencies)" in script

    def test_every_module_initialised(self):
        modules = [xilinx_cmac_100g(), xilinx_qdma()]
        script = generate_deployment_ruby(VendorAdapter(VIVADO_2023_1), modules, "c")
        assert script.count("Harmonia::Deploy.initialize_module") == 2

    def test_cluster_registered(self):
        script = generate_deployment_ruby(VendorAdapter(VIVADO_2023_1), [], "edge-7")
        assert "register_cluster('edge-7')" in script


class TestScriptLanguage:
    def test_language_follows_toolchain(self):
        assert script_language_for(DEVICE_A) is ScriptLanguage.TCL
