"""Tests for the platform-specific layer: adapters, wrappers, build flow."""

import pytest

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.toolchain import BuildFlow
from repro.adapters.vendor_adapter import VendorAdapter
from repro.adapters.wrapper import (
    InterfaceWrapper,
    WRAPPER_LATENCY_CYCLES,
    wrapper_resources,
)
from repro.errors import (
    ConfigurationError,
    DependencyError,
    DeploymentError,
    InterfaceMismatchError,
)
from repro.hw.ip.mac import intel_etile_100g, xilinx_cmac_100g
from repro.hw.ip.misc import i2c_controller, sensor_block
from repro.hw.ip.pcie import xilinx_qdma
from repro.hw.protocols.base import Direction, InterfaceSpec, ProtocolFamily, SignalSpec
from repro.hw.signal_types import UnifiedType
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import DEVICE_A, DEVICE_C
from repro.platform.device import PeripheralKind
from repro.platform.vendor import QUARTUS_23_2, VIVADO_2022_2, VIVADO_2023_1


class TestDeviceAdapter:
    def test_static_config_derives_from_device(self):
        config = DeviceAdapter(DEVICE_A).static_config()
        assert config["chip"] == "XCVU35P"
        assert config["pcie_generation"] == 4
        assert config["network_channels"] == 2
        assert config["memory_channels"]["hbm"] == 32

    def test_static_config_computed_once(self):
        adapter = DeviceAdapter(DEVICE_A)
        assert adapter.static_config() is adapter.static_config()

    def test_pin_allocation_tracks_banks(self):
        adapter = DeviceAdapter(DEVICE_A)
        first = adapter.allocate_pins("mac0", PeripheralKind.QSFP28)
        second = adapter.allocate_pins("mac1", PeripheralKind.QSFP28)
        assert first.bank != second.bank

    def test_overallocation_rejected(self):
        adapter = DeviceAdapter(DEVICE_A)
        adapter.allocate_pins("mac0", PeripheralKind.QSFP28)
        adapter.allocate_pins("mac1", PeripheralKind.QSFP28)
        with pytest.raises(ConfigurationError, match="already allocated"):
            adapter.allocate_pins("mac2", PeripheralKind.QSFP28)

    def test_missing_peripheral_rejected(self):
        with pytest.raises(ConfigurationError, match="no hbm"):
            DeviceAdapter(DEVICE_C).allocate_pins("hbm", PeripheralKind.HBM)

    def test_clock_mapping_conflict_detected(self):
        adapter = DeviceAdapter(DEVICE_A)
        adapter.map_clock("core", "sysclk_100")
        adapter.map_clock("core", "sysclk_100")  # idempotent remap is fine
        with pytest.raises(ConfigurationError, match="already mapped"):
            adapter.map_clock("core", "sysclk_300")

    def test_unknown_clock_source_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown clock source"):
            DeviceAdapter(DEVICE_A).map_clock("core", "bogus")

    def test_reset_dynamic_keeps_static(self):
        adapter = DeviceAdapter(DEVICE_A)
        static = adapter.static_config()
        adapter.allocate_pins("mac", PeripheralKind.QSFP28)
        adapter.reset_dynamic()
        assert adapter.pin_allocations == []
        assert adapter.static_config() is static

    def test_dynamic_config_dump(self):
        adapter = DeviceAdapter(DEVICE_A)
        adapter.allocate_pins("mac", PeripheralKind.QSFP28)
        adapter.map_clock("core", "sysclk_100")
        dump = adapter.dynamic_config()
        assert dump["pin_allocations"][0]["module"] == "mac"
        assert dump["clock_mappings"]["core"] == "sysclk_100"


class TestVendorAdapter:
    def test_matching_environment_passes(self):
        report = VendorAdapter(VIVADO_2023_1).inspect([xilinx_cmac_100g()])
        assert report.passed

    def test_wrong_tool_detected(self):
        report = VendorAdapter(QUARTUS_23_2).inspect([xilinx_cmac_100g()])
        assert not report.passed
        assert "requires tool 'vivado'" in report.violations[0]

    def test_wrong_tool_version_detected(self):
        report = VendorAdapter(VIVADO_2022_2).inspect([xilinx_cmac_100g()])
        assert any("2023.1" in violation for violation in report.violations)

    def test_tool_agnostic_module_passes_anywhere(self):
        for toolchain in (VIVADO_2023_1, QUARTUS_23_2):
            assert VendorAdapter(toolchain).inspect([sensor_block()]).passed

    def test_require_raises_on_violation(self):
        with pytest.raises(DependencyError):
            VendorAdapter(QUARTUS_23_2).require([xilinx_qdma()])

    def test_mixed_set_reports_all_violations(self):
        report = VendorAdapter(VIVADO_2023_1).inspect(
            [xilinx_cmac_100g(), intel_etile_100g()]
        )
        assert len(report.violations) == 1  # only the Intel module fails

    def test_environment_key_values(self):
        env = VendorAdapter(VIVADO_2023_1).environment
        assert env["tool"] == "vivado"
        assert env["ip_packaging"] == "ip-xact"


class TestInterfaceWrapper:
    def test_wrap_produces_unified_ports(self):
        wrapped = InterfaceWrapper().wrap(xilinx_cmac_100g())
        assert all(port.unified_type is UnifiedType.STREAM for port in wrapped.data_ports)
        assert wrapped.control_port.unified_type is UnifiedType.REG

    def test_avalon_and_axi_map_to_same_types(self):
        wrapper = InterfaceWrapper()
        xilinx_ports = wrapper.wrap(xilinx_cmac_100g()).data_ports
        intel_ports = wrapper.wrap(intel_etile_100g()).data_ports
        assert [p.unified_type for p in xilinx_ports] == [p.unified_type for p in intel_ports]

    def test_unknown_protocol_rejected(self):
        weird = InterfaceSpec(
            "weird", ProtocolFamily.CUSTOM,
            (SignalSpec("x", 8, Direction.OUTPUT),),
        )
        with pytest.raises(InterfaceMismatchError):
            InterfaceWrapper().convert_interface(weird, 8)

    def test_wrapper_preserves_throughput(self):
        wrapped = InterfaceWrapper().wrap(xilinx_cmac_100g())
        assert (wrapped.datapath_chain().bandwidth_bps()
                == pytest.approx(wrapped.native_chain().bandwidth_bps()))

    def test_wrapper_adds_fixed_latency(self):
        wrapped = InterfaceWrapper().wrap(xilinx_cmac_100g())
        extra = (wrapped.datapath_chain().zero_load_latency_ps(64)
                 - wrapped.native_chain().zero_load_latency_ps(64))
        assert extra == wrapped.ip.clock.cycles_to_ps(WRAPPER_LATENCY_CYCLES)
        assert wrapped.added_latency_ps == extra

    def test_resources_scale_with_width_and_count(self):
        narrow = wrapper_resources(128, 1)
        wide = wrapper_resources(2_048, 1)
        double = wrapper_resources(128, 2)
        assert wide.lut > narrow.lut
        assert double.lut == 2 * narrow.lut

    def test_no_interfaces_no_cost(self):
        assert wrapper_resources(512, 0).is_zero

    def test_wrapper_under_overhead_bound(self):
        # Figure 16: interface wrapper below 0.37% of the device.
        wrapped = InterfaceWrapper().wrap(xilinx_cmac_100g())
        utilisation = DEVICE_A.budget.utilisation(wrapped.resources)
        assert max(utilisation.values()) < 0.0037


class TestBuildFlow:
    MODULES = [xilinx_cmac_100g(), xilinx_qdma(), i2c_controller()]

    def test_successful_build_packages_everything(self):
        bundle = BuildFlow(DEVICE_A).build("proj", self.MODULES,
                                           software_components=("driver",))
        assert bundle.bitstream.device_name == "device-a"
        assert "xilinx-cmac-100g" in bundle.bitstream.module_names
        assert len(bundle.artifact_id) == 16

    def test_build_is_deterministic(self):
        first = BuildFlow(DEVICE_A).build("proj", self.MODULES)
        second = BuildFlow(DEVICE_A).build("proj", self.MODULES)
        assert first.bitstream.checksum == second.bitstream.checksum

    def test_checksum_changes_with_module_set(self):
        first = BuildFlow(DEVICE_A).build("proj", self.MODULES)
        second = BuildFlow(DEVICE_A).build("proj", self.MODULES[:-1])
        assert first.bitstream.checksum != second.bitstream.checksum

    def test_wrong_vendor_modules_fail_dependency_step(self):
        with pytest.raises(DeploymentError, match="dependency inspection"):
            BuildFlow(DEVICE_A).build("proj", [intel_etile_100g()])

    def test_oversized_design_fails_fit_step(self):
        with pytest.raises(Exception):
            BuildFlow(DEVICE_A).build(
                "huge", self.MODULES,
                extra_resources=ResourceUsage(lut=DEVICE_A.budget.lut),
            )

    def test_resources_accumulated(self):
        bundle = BuildFlow(DEVICE_A).build("proj", self.MODULES)
        expected = ResourceUsage.total(ip.resources for ip in self.MODULES)
        assert bundle.bitstream.resources == expected


class TestWrapperDataPlane:
    """The wrapper's functional (byte-exact) stream conversion."""

    def test_axi_ip_feeding_avalon_role(self):
        from repro.hw.beats import from_avalon_st, to_axi_stream

        payload = bytes(range(200)) * 3
        axi_beats = to_axi_stream(payload, 512)
        avalon_beats = InterfaceWrapper().convert_stream(
            axi_beats, ProtocolFamily.AVALON_ST
        )
        assert from_avalon_st(avalon_beats) == payload

    def test_avalon_ip_feeding_axi_role(self):
        from repro.hw.beats import from_axi_stream, to_avalon_st

        payload = b"\x5A" * 777
        avalon_beats = to_avalon_st(payload, 512)
        axi_beats = InterfaceWrapper().convert_stream(
            avalon_beats, ProtocolFamily.AXI4_STREAM
        )
        assert from_axi_stream(axi_beats) == payload

    def test_same_protocol_passthrough(self):
        from repro.hw.beats import to_axi_stream

        beats = to_axi_stream(b"\x01" * 64, 512)
        assert InterfaceWrapper().convert_stream(
            beats, ProtocolFamily.AXI4_STREAM
        ) == beats

    def test_non_stream_target_rejected(self):
        from repro.hw.beats import to_axi_stream

        beats = to_axi_stream(b"\x01" * 64, 512)
        with pytest.raises(InterfaceMismatchError):
            InterfaceWrapper().convert_stream(beats, ProtocolFamily.AXI4_LITE)

    def test_empty_stream_rejected(self):
        with pytest.raises(InterfaceMismatchError):
            InterfaceWrapper().convert_stream([], ProtocolFamily.AVALON_ST)
