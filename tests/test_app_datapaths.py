"""Tests for application data-path construction (apps/base.py)."""

import pytest

from repro.apps import HostNetwork, RetrievalApp, SecGateway
from repro.apps.base import PerformanceSample
from repro.platform.catalog import DEVICE_A


class TestDatapathComposition:
    def test_harmonia_path_has_wrapper_exfn_and_cdc(self):
        app = HostNetwork()
        shell = app.tailored_shell(DEVICE_A)
        with_harmonia = app.datapath(shell, with_harmonia=True)
        without = app.datapath(shell, with_harmonia=False)
        # link + ingress + wrapper + exfn + cdc + role + egress vs
        # link + ingress + role + egress.
        assert len(with_harmonia) == len(without) + 3

    def test_bitw_app_enters_through_network(self):
        app = SecGateway()
        shell = app.tailored_shell(DEVICE_A)
        chain = app.datapath(shell, with_harmonia=True)
        assert any("cmac" in stage.name for stage in chain.stages)

    def test_look_aside_app_enters_through_host(self):
        app = RetrievalApp()
        shell = app.tailored_shell(DEVICE_A)
        chain = app.datapath(shell, with_harmonia=True)
        assert any("qdma" in stage.name for stage in chain.stages)
        assert not any("cmac" in stage.name for stage in chain.stages)

    def test_link_stage_caps_throughput_at_line_rate(self):
        app = SecGateway()
        shell = app.tailored_shell(DEVICE_A)
        chain = app.datapath(shell, with_harmonia=True)
        # The 100G cage, not the 165 Gbps MAC core, is the bottleneck.
        assert chain.bandwidth_bps() <= 100e9 * 1.01

    def test_cdc_width_satisfies_lossless_rule(self):
        app = SecGateway()
        shell = app.tailored_shell(DEVICE_A)
        rbb = shell.rbbs["network"]
        role_stage = app.role_stage(rbb)
        rbb_bandwidth = rbb.instance.clock.bandwidth_bps(rbb.instance.data_width_bits)
        role_bandwidth = role_stage.clock.bandwidth_bps(role_stage.data_width_bits)
        assert role_bandwidth >= rbb_bandwidth

    def test_role_stage_runs_at_demanded_clock(self):
        app = SecGateway()
        shell = app.tailored_shell(DEVICE_A)
        stage = app.role_stage(shell.rbbs["network"])
        assert stage.clock.freq_mhz == app.role().demands.user_clock_mhz


class TestMeasurement:
    def test_path_latency_included_by_default(self):
        app = SecGateway()
        with_path = app.measure(DEVICE_A, packet_sizes=(256,), packets_per_point=100)
        without_path = app.measure(DEVICE_A, packet_sizes=(256,), packets_per_point=100,
                                   include_path_latency=False)
        delta = with_path[0].latency_us - without_path[0].latency_us
        assert delta == pytest.approx(app.PATH_LATENCY_US, abs=0.01)

    def test_sample_unit_conversion(self):
        sample = PerformanceSample("x", throughput_gbps=1.0, latency_us=2.5)
        assert sample.latency_ns == 2_500.0

    def test_throughput_monotone_in_packet_size(self):
        samples = SecGateway().measure(DEVICE_A, packet_sizes=(64, 256, 1_024),
                                       packets_per_point=300)
        throughputs = [sample.throughput_gbps for sample in samples]
        assert throughputs == sorted(throughputs)
