"""Tests for the five evaluation applications."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import all_applications
from repro.apps.board_test import BoardTest
from repro.apps.host_network import FlowAction, HostNetwork, OvsOffload, internet_checksum
from repro.apps.layer4_lb import Layer4LoadBalancer, MaglevTable
from repro.apps.retrieval import EmbeddingCorpus, RetrievalApp, RetrievalEngine
from repro.apps.sec_gateway import PolicyAction, PolicyEngine, PolicyRule, SecGateway
from repro.core.role import Architecture
from repro.errors import ConfigurationError
from repro.platform.catalog import DEVICE_A, DEVICE_B
from repro.workloads.packets import FiveTuple, Packet, PacketGenerator


class TestApplicationMix:
    def test_five_applications(self):
        apps = all_applications()
        assert len(apps) == 5
        assert [app.name for app in apps] == [
            "sec-gateway", "layer4-lb", "host-network", "retrieval", "board-test",
        ]

    def test_architectures_match_table2(self):
        architectures = {app.name: app.role().architecture for app in all_applications()}
        assert architectures["sec-gateway"] is Architecture.BUMP_IN_THE_WIRE
        assert architectures["retrieval"] is Architecture.LOOK_ASIDE
        assert architectures["board-test"] is Architecture.FLEXIBLE

    def test_every_app_tailors_on_device_a(self):
        for app in all_applications():
            shell = app.tailored_shell(DEVICE_A)
            assert shell.rbbs

    def test_every_app_measures_with_and_without_harmonia(self):
        for app in all_applications():
            harmonia = app.measure(DEVICE_A, packet_sizes=(256,), packets_per_point=200)
            native = app.measure(DEVICE_A, packet_sizes=(256,), packets_per_point=200,
                                 with_harmonia=False)
            assert harmonia[0].throughput_gbps == pytest.approx(
                native[0].throughput_gbps, rel=0.02
            )
            assert harmonia[0].latency_us >= native[0].latency_us
            increase = (harmonia[0].latency_us - native[0].latency_us) / native[0].latency_us
            assert increase < 0.02  # the paper's <1%, with simulation slack


class TestSecGateway:
    def test_longest_prefix_wins(self):
        engine = PolicyEngine()
        engine.install(PolicyRule(0x0A00_0000, 8, PolicyAction.ALLOW))
        engine.install(PolicyRule(0x0A0A_0000, 16, PolicyAction.DENY))
        denied = Packet(FiveTuple(0x0A0A_0001, 2, 3, 80), 64, dst_mac=1)
        allowed = Packet(FiveTuple(0x0A0B_0001, 2, 3, 80), 64, dst_mac=1)
        assert engine.decide(denied) is PolicyAction.DENY
        assert engine.decide(allowed) is PolicyAction.ALLOW

    def test_default_allow(self):
        engine = PolicyEngine()
        packet = Packet(FiveTuple(1, 2, 3, 80), 64, dst_mac=1)
        assert engine.decide(packet) is PolicyAction.ALLOW

    def test_filter_removes_denied_traffic(self):
        app = SecGateway()
        app.install_policies([PolicyRule(0x0A00_0000, 8, PolicyAction.DENY)])
        bad = Packet(FiveTuple(0x0A01_0203, 2, 3, 80), 64, dst_mac=1)
        good = Packet(FiveTuple(0xC0A8_0001, 2, 3, 80), 64, dst_mac=1)
        forwarded, counters = app.process([bad, good, bad])
        assert forwarded == [good]
        assert counters == {"allowed": 1, "denied": 2}

    def test_invalid_prefix_length(self):
        with pytest.raises(ValueError):
            PolicyRule(0, 33, PolicyAction.DENY)

    def test_zero_length_prefix_matches_all(self):
        rule = PolicyRule(0, 0, PolicyAction.DENY)
        assert rule.matches(0xFFFF_FFFF)


class TestLayer4Lb:
    def test_maglev_table_size_must_be_prime(self):
        with pytest.raises(ConfigurationError):
            MaglevTable(["a"], table_size=10)

    def test_maglev_spreads_load_evenly(self):
        table = MaglevTable([f"rs-{i}" for i in range(8)], table_size=251)
        shares = [table.share_of(f"rs-{i}") for i in range(8)]
        assert min(shares) > 0.5 / 8
        assert max(shares) < 2.0 / 8

    def test_established_flows_survive_backend_removal(self):
        app = Layer4LoadBalancer()
        packet = Packet(PacketGenerator().flow(1), 64, dst_mac=1)
        chosen = app.select_backend(packet)
        app.remove_backend(next(b for b in app.backends if b != chosen))
        assert app.select_backend(packet) == chosen
        assert app.established_hits >= 1

    def test_new_flows_avoid_removed_backend(self):
        app = Layer4LoadBalancer()
        victim = app.backends[0]
        app.remove_backend(victim)
        generator = PacketGenerator()
        packets = [Packet(generator.flow(seed), 64, dst_mac=1) for seed in range(200)]
        loads = app.distribute(packets)
        assert victim not in loads

    def test_removing_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            Layer4LoadBalancer().remove_backend("ghost")

    def test_needs_at_least_one_backend(self):
        with pytest.raises(ConfigurationError):
            MaglevTable([])

    @settings(max_examples=25)
    @given(seed=st.integers(0, 10_000))
    def test_lookup_deterministic(self, seed):
        table = MaglevTable([f"rs-{i}" for i in range(4)])
        flow = PacketGenerator().flow(seed)
        assert table.lookup(flow) == table.lookup(flow)


class TestHostNetwork:
    def test_rfc1071_known_vector(self):
        # Classic example: checksum of this header equals 0xB861.
        header = bytes.fromhex("45000073000040004011") + b"\x00\x00" + \
            bytes.fromhex("c0a80001c0a800c7")
        assert internet_checksum(header) == 0xB861

    def test_checksum_of_zero_padded_odd_length(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_first_packet_upcalls_then_hits(self):
        ovs = OvsOffload()
        packet = Packet(PacketGenerator().flow(1), 64, dst_mac=1)
        ovs.classify(packet)
        ovs.classify(packet)
        assert ovs.upcalls == 1
        assert ovs.cache_hits == 1

    def test_hit_rate_approaches_one_for_stable_flows(self):
        app = HostNetwork()
        generator = PacketGenerator()
        packets = [Packet(generator.flow(seed % 8), 64, dst_mac=1)
                   for seed in range(400)]
        app.process(packets)
        assert app.ovs.hit_rate > 0.95

    def test_cache_eviction_at_capacity(self):
        ovs = OvsOffload(capacity=2)
        generator = PacketGenerator()
        for seed in range(3):
            ovs.classify(Packet(generator.flow(seed), 64, dst_mac=1))
        assert len(ovs.flow_cache) == 2

    def test_process_counts_actions(self):
        app = HostNetwork()
        packets = [Packet(PacketGenerator().flow(seed), 64, dst_mac=1)
                   for seed in range(10)]
        outcome = app.process(packets)
        assert outcome[FlowAction.OUTPUT] == 10
        assert app.checksummed == 10


class TestRetrieval:
    def test_top1_recovers_perturbed_item(self):
        app = RetrievalApp(corpus_items=500, dim=32)
        result = app.engine.search(app.corpus.query_like(123))
        assert result.indices[0] == 123

    def test_scores_sorted_descending(self):
        app = RetrievalApp(corpus_items=200)
        result = app.engine.search(app.corpus.query_like(7))
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_k_capped_at_corpus_size(self):
        engine = RetrievalEngine(EmbeddingCorpus(5), k=10)
        assert engine.k == 5

    def test_wrong_query_dimension_rejected(self):
        app = RetrievalApp(corpus_items=100, dim=64)
        with pytest.raises(ConfigurationError):
            app.engine.search(np.zeros(32, dtype=np.float32))

    def test_qps_falls_with_corpus_size(self):
        app = RetrievalApp()
        assert app.queries_per_second(10 ** 3) > app.queries_per_second(10 ** 6)

    def test_matches_numpy_exhaustive_search(self):
        corpus = EmbeddingCorpus(300, dim=16, seed=5)
        engine = RetrievalEngine(corpus, k=5)
        query = corpus.query_like(42)
        result = engine.search(query)
        expected = np.argsort(-(corpus.vectors @ query))[:5]
        assert list(result.indices) == list(expected)

    def test_look_aside_shell_has_no_network(self):
        shell = RetrievalApp().tailored_shell(DEVICE_A)
        assert "network" not in shell.rbbs
        assert shell.rbbs["memory"].selected_instance_name == "hbm-xilinx"


class TestBoardTest:
    def test_suite_passes_on_device_a(self):
        reports = BoardTest().run_suite(DEVICE_A)
        assert BoardTest.all_passed(reports), [str(r) for r in reports]
        items = {report.item for report in reports}
        assert {"mac-loopback", "memory-march", "dma-echo", "sensor-read"} <= items

    def test_suite_adapts_to_device_peripherals(self):
        reports = BoardTest().run_suite(DEVICE_B)
        items = [report.item for report in reports]
        assert "memory-march" in items  # device B carries DDR

    def test_report_string_format(self):
        reports = BoardTest().run_suite(DEVICE_A)
        assert str(reports[0]).startswith("[PASS]")
