"""Tests for the framework comparison models (Vitis / oneAPI / Coyote)."""

import pytest

from repro.baselines import (
    CoyoteFramework,
    HarmoniaFramework,
    OneApiFramework,
    VitisFramework,
    all_frameworks,
)
from repro.baselines.base import BENCHMARK_SERVICES, Capability
from repro.baselines.vitis import benchmark_role
from repro.errors import IncompatiblePlatformError
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D, evaluation_devices

BENCHMARKS = sorted(BENCHMARK_SERVICES)


class TestDeviceSupport:
    """Table 3: the device-support matrix."""

    def test_vitis_supports_official_xilinx_only(self):
        framework = VitisFramework()
        assert framework.supports(DEVICE_A)
        assert not framework.supports(DEVICE_B)   # in-house board
        assert not framework.supports(DEVICE_D)   # Intel silicon

    def test_coyote_mirrors_vitis_board_support(self):
        framework = CoyoteFramework()
        assert framework.supports(DEVICE_A)
        assert not framework.supports(DEVICE_C)

    def test_oneapi_supports_official_intel_only(self):
        framework = OneApiFramework()
        assert framework.supports(DEVICE_D)
        assert not framework.supports(DEVICE_C)   # in-house board
        assert not framework.supports(DEVICE_A)

    def test_harmonia_supports_everything(self):
        framework = HarmoniaFramework()
        assert all(framework.supports(device) for device in evaluation_devices())

    def test_table3_matrix(self):
        rows = {
            framework.name: framework.supported_vendor_classes(evaluation_devices())
            for framework in all_frameworks()
        }
        assert rows["vitis"] == {"intel": False, "xilinx": True, "inhouse": False}
        assert rows["oneapi"] == {"intel": True, "xilinx": False, "inhouse": False}
        assert rows["coyote"] == {"intel": False, "xilinx": True, "inhouse": False}
        assert rows["harmonia"] == {"intel": True, "xilinx": True, "inhouse": True}

    def test_unsupported_deploy_raises(self):
        with pytest.raises(IncompatiblePlatformError):
            VitisFramework().deploy(DEVICE_D, "matmul")


class TestCapabilities:
    """Table 1: only Harmonia scores full marks everywhere."""

    def test_harmonia_row_all_yes(self):
        row = HarmoniaFramework().capability_row()
        assert all(value is Capability.YES for value in row.values())

    def test_baselines_have_partial_host_interface(self):
        for framework in (VitisFramework(), OneApiFramework(), CoyoteFramework()):
            assert framework.capability_row()["consistent_host_interface"] is Capability.PARTIAL

    def test_baselines_lack_unified_shell(self):
        for framework in (VitisFramework(), OneApiFramework(), CoyoteFramework()):
            assert framework.capability_row()["unified_shell"] is not Capability.YES


class TestShellResources:
    """Figure 18a: Harmonia's tailored shells are leaner."""

    @pytest.mark.parametrize("bench_name", BENCHMARKS)
    def test_harmonia_leaner_than_xilinx_baselines(self, bench_name):
        harmonia = HarmoniaFramework().deploy(DEVICE_A, bench_name).resources
        for framework in (VitisFramework(), CoyoteFramework()):
            baseline = framework.deploy(DEVICE_A, bench_name).resources
            assert harmonia.lut < baseline.lut
            assert harmonia.ff < baseline.ff

    @pytest.mark.parametrize("bench_name", BENCHMARKS)
    def test_reduction_in_paper_band(self, bench_name):
        # Figure 18a: 3.5%-14.9% lower shell resource consumption.
        harmonia_a = HarmoniaFramework().deploy(DEVICE_A, bench_name).resources
        harmonia_d = HarmoniaFramework().deploy(DEVICE_D, bench_name).resources
        pairs = [
            (VitisFramework(), DEVICE_A, harmonia_a),
            (CoyoteFramework(), DEVICE_A, harmonia_a),
            (OneApiFramework(), DEVICE_D, harmonia_d),
        ]
        for framework, device, harmonia in pairs:
            baseline = framework.deploy(device, bench_name).resources
            for kind in ("lut", "ff", "bram_36k"):
                base_value = getattr(baseline, kind)
                if base_value == 0:
                    continue
                reduction = (base_value - getattr(harmonia, kind)) / base_value
                assert 0.03 <= reduction <= 0.16, (framework.name, bench_name, kind)

    def test_host_interface_styles(self):
        assert HarmoniaFramework().deploy(DEVICE_A, "tcp").host_interface == "command"
        assert VitisFramework().deploy(DEVICE_A, "tcp").host_interface == "register"

    def test_shell_utilisation_within_device(self):
        for framework in all_frameworks():
            if framework.supports(DEVICE_A):
                shell = framework.deploy(DEVICE_A, "tcp")
                assert max(shell.utilisation().values()) < 1.0


class TestBenchmarkRoles:
    def test_benchmark_roles_demand_right_services(self):
        assert not benchmark_role("matmul", "x").demands.needs_network
        assert benchmark_role("database", "x").demands.needs_memory
        assert benchmark_role("tcp", "x").demands.needs_network

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(IncompatiblePlatformError):
            benchmark_role("raytracing", "x")

    def test_matmul_uses_bulk_dma(self):
        assert benchmark_role("matmul", "x").demands.bulk_dma
        assert not benchmark_role("tcp", "x").demands.bulk_dma
