"""Build farm: plans, content keys, the artifact store, determinism."""

import dataclasses
import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime import buildfarm
from repro.runtime.buildfarm import (
    ArtifactStore,
    BuildFarm,
    BuildPlan,
    BuildTarget,
    FARM_STEP_NAMES,
    build_one,
    fleet_build_plan,
    run_build_plan,
)
from repro.runtime.context import SimContext

SMALL = BuildPlan(devices=("device-a", "device-b"),
                  roles=("sec-gateway", "board-test"))
VARIANTS = BuildPlan(devices=("device-b", "device-b-rev2"),
                     roles=("sec-gateway",))


class TestPlan:
    def test_expand_is_device_major_ordered(self):
        labels = [target.label() for target in SMALL.expand()]
        assert labels == [
            "sec-gateway@device-a", "board-test@device-a",
            "sec-gateway@device-b", "board-test@device-b",
        ]
        assert len(SMALL) == 4

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            BuildPlan(devices=(), roles=("sec-gateway",))
        with pytest.raises(ConfigurationError):
            BuildPlan(devices=("device-a",), roles=())

    def test_negative_effort_rejected(self):
        with pytest.raises(ConfigurationError):
            BuildPlan(devices=("device-a",), roles=("sec-gateway",),
                      effort=-1)

    def test_fleet_plan_covers_active_types_and_all_roles(self):
        plan = fleet_build_plan(2024)
        assert "device-b-rev2" in plan.devices      # variant names included
        assert "device-c" in plan.devices
        assert len(plan.roles) == 5
        assert len(plan) == len(plan.devices) * 5

    def test_fleet_plan_rejects_empty_year(self):
        with pytest.raises(ConfigurationError):
            fleet_build_plan(1999)


class TestArtifactStore:
    def test_memory_store_hit_and_miss_counting(self):
        store = ArtifactStore()
        assert store.lookup("k") is None
        store.store("k", {"manifest": {"x": 1}})
        assert store.lookup("k") == {"manifest": {"x": 1}}
        assert (store.hits, store.misses) == (1, 1)
        assert len(store) == 1

    def test_disk_roundtrip_is_atomic(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.store("deadbeef", {"manifest": {"x": 1}, "schema": 1})
        again = ArtifactStore(str(tmp_path))
        assert again.lookup("deadbeef")["manifest"] == {"x": 1}
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_truncated_artifact_raises_configuration_error(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.store("cafe", {"manifest": {}})
        path = tmp_path / "cafe.json"
        path.write_text(path.read_text()[:10], encoding="utf-8")
        with pytest.raises(ConfigurationError, match="cafe.json"):
            ArtifactStore(str(tmp_path)).lookup("cafe")

    def test_non_artifact_json_raises_configuration_error(self, tmp_path):
        (tmp_path / "beef.json").write_text('["not", "an", "artifact"]',
                                            encoding="utf-8")
        with pytest.raises(ConfigurationError, match="no manifest"):
            ArtifactStore(str(tmp_path)).lookup("beef")

    def test_entry_without_manifest_rejected_at_store_time(self):
        with pytest.raises(ConfigurationError):
            ArtifactStore().store("k", {"schema": 1})


class TestContentKeys:
    def test_device_variant_shares_the_base_build(self):
        report = BuildFarm(VARIANTS).run()
        first, second = report.targets
        assert first.status == "built"
        assert second.status == "shared"
        assert first.build_key == second.build_key
        assert first.manifest == second.manifest
        assert report.tailor_memo_hits >= 1

    def test_key_varies_with_role_and_effort(self):
        base = BuildFarm(BuildPlan(devices=("device-a",),
                                   roles=("sec-gateway",))).run()
        other_role = BuildFarm(BuildPlan(devices=("device-a",),
                                         roles=("board-test",))).run()
        other_effort = BuildFarm(BuildPlan(devices=("device-a",),
                                           roles=("sec-gateway",),
                                           effort=3)).run()
        keys = {base.targets[0].build_key, other_role.targets[0].build_key,
                other_effort.targets[0].build_key}
        assert len(keys) == 3

    def test_incompatible_pairs_are_deterministic_and_uncached(self):
        plan = BuildPlan(devices=("device-c",), roles=("retrieval",))
        store = ArtifactStore()
        report = run_build_plan(plan, store=store)
        assert report.targets[0].status == "incompatible"
        assert "memory" in report.targets[0].error
        assert len(store) == 0

    def test_unfit_design_reported_incompatible_not_failed(self):
        # sec-gateway needs URAM device-vu125-legacy does not have.
        plan = BuildPlan(devices=("device-vu125-legacy",),
                         roles=("sec-gateway",))
        report = run_build_plan(plan)
        assert report.targets[0].status == "incompatible"
        assert "does not fit" in report.targets[0].error

    def test_unfit_outcome_is_memoised_across_runs(self, monkeypatch):
        # The store never caches failures, so repeat runs lean on the
        # in-process memo instead of re-executing a doomed flow.
        plan = BuildPlan(devices=("device-vu125-legacy",),
                         roles=("sec-gateway",))
        first = run_build_plan(plan)
        key = first.to_json()["targets"][0]["build_key"]
        assert key in buildfarm._BUILD_FAILED

        def boom(spec):
            raise AssertionError("memoised failure was re-executed")

        monkeypatch.setattr(buildfarm, "_execute_build", boom)
        again = run_build_plan(plan)
        assert again.targets[0].status == "incompatible"
        assert again.targets[0].error == first.targets[0].error


class TestDeterminism:
    def test_worker_count_is_invisible_in_manifests_and_report(self):
        serial = BuildFarm(SMALL, workers=1).run()
        pooled = BuildFarm(SMALL, workers=4).run()
        assert serial.manifests_jsonl() == pooled.manifests_jsonl()
        assert serial.to_json() == pooled.to_json()

    def test_warm_run_reproduces_cold_manifests_byte_for_byte(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cold = BuildFarm(SMALL, store=store).run()
        warm = BuildFarm(SMALL, store=ArtifactStore(str(tmp_path))).run()
        assert warm.built == 0
        assert warm.cached == len(SMALL)
        assert warm.manifests_jsonl() == cold.manifests_jsonl()

    def test_manifests_jsonl_is_canonical_json_lines(self):
        report = BuildFarm(SMALL).run()
        lines = report.manifests_jsonl().splitlines()
        assert len(lines) == len(SMALL)
        for line in lines:
            record = json.loads(line)
            assert set(record) == {"target", "build_key", "manifest"}
            assert record["manifest"]["bundle"]["checksum"]

    def test_use_cache_false_never_touches_the_store(self):
        store = ArtifactStore()
        store.store("unrelated", {"manifest": {}})
        report = BuildFarm(SMALL, store=store, use_cache=False).run()
        assert report.built == len(SMALL)
        assert store.hits == 0 and store.misses == 0
        assert len(store) == 1


class TestFarmExecution:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            BuildFarm(SMALL, workers=0)

    def test_build_one_manifest_matches_farm_manifest(self):
        report = BuildFarm(BuildPlan(devices=("device-a",),
                                     roles=("board-test",))).run()
        direct = build_one("device-a", "board-test")
        assert direct["manifest"] == report.targets[0].manifest
        assert [step["step"] for step in direct["steps"]] == \
            list(FARM_STEP_NAMES)

    def test_step_timings_survive_only_on_built_targets(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cold = BuildFarm(SMALL, store=store).run()
        warm = BuildFarm(SMALL, store=ArtifactStore(str(tmp_path))).run()
        for result in cold.targets:
            assert [timing.step for timing in result.steps] == \
                list(FARM_STEP_NAMES)
        for result in warm.targets:
            assert result.steps == ()


class TestDag:
    def test_chains_follow_farm_step_order(self):
        nodes = BuildFarm(BuildPlan(devices=("device-a",),
                                    roles=("sec-gateway",))).plan_dag()
        assert [node.step for node in nodes] == list(FARM_STEP_NAMES)
        for previous, node in zip(nodes, nodes[1:]):
            assert node.deps == (previous.node_id,)

    def test_variants_share_one_tailor_root_and_one_chain(self):
        nodes = BuildFarm(VARIANTS).plan_dag()
        tailors = [node for node in nodes if node.step == "tailor"]
        assert len(tailors) == 1
        assert set(tailors[0].targets) == {
            "sec-gateway@device-b", "sec-gateway@device-b-rev2"}
        fits = [node for node in nodes if node.step == "fit"]
        assert len(fits) == 1 and fits[0].cost_units > 0

    def test_incompatible_targets_have_no_chain(self):
        nodes = BuildFarm(BuildPlan(devices=("device-c",),
                                    roles=("retrieval",))).plan_dag()
        assert nodes == []


class TestObservability:
    def test_metrics_and_spans_published_to_context(self):
        context = SimContext(name="farm-test", trace=True)
        report = BuildFarm(SMALL, context=context).run()
        metrics = context.metrics
        assert metrics.counter("build.targets").value == len(SMALL)
        assert metrics.counter("build.built").value == report.built
        assert metrics.get("build.target.wall_ps").count == report.built
        for step in FARM_STEP_NAMES:
            assert metrics.get(f"build.step.{step}.wall_ps").count == \
                report.built
        names = context.trace.span_names()
        assert "build.target" in names
        assert "build.fit" in names
        spans = [record for record in context.trace.records
                 if record["name"] == "build.target"]
        assert len(spans) == report.built
        for record in spans:
            assert record["type"] == "X" and record["dur_ps"] >= 0
            assert record["attrs"]["device"] in SMALL.devices

    def test_cached_targets_emit_instants_not_spans(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        BuildFarm(SMALL, store=store).run()
        context = SimContext(name="farm-warm", trace=True)
        BuildFarm(SMALL, store=ArtifactStore(str(tmp_path)),
                  context=context).run()
        names = context.trace.span_names()
        assert "build.cached" in names
        assert "build.target" not in names
        assert context.metrics.counter("build.cached").value == len(SMALL)

    def test_default_build_slos_pass_on_the_fleet_matrix(self):
        from repro.obs.slo import SloMonitor, default_build_slos

        context = SimContext(name="farm-slo", trace=True)
        BuildFarm(fleet_build_plan(2024), context=context).run()
        report = SloMonitor(default_build_slos()).evaluate(context.metrics)
        assert report.ok, report.format()
        assert report.checked > 0
