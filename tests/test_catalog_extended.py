"""Tests for the extended device catalog (Stratix / Arria / Gen5-400G)."""

import pytest

from repro.core.host_software import ControlPlane
from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.platform.catalog import (
    DEVICE_ARRIA_EDGE,
    DEVICE_GEN5_400G,
    DEVICE_STRATIX_NIC,
    all_devices,
)
from repro.platform.device import PcieGeneration, PeripheralKind
from repro.platform.vendor import Vendor

EXTENDED = (DEVICE_STRATIX_NIC, DEVICE_ARRIA_EDGE, DEVICE_GEN5_400G)


class TestExtendedCatalog:
    def test_catalog_spans_all_six_chip_families(self):
        families = {device.family.name for device in all_devices()}
        assert families == {
            "Virtex UltraScale+", "Virtex UltraScale", "Zynq 7000",
            "Agilex", "Stratix 10", "Arria 10",
        }

    def test_gen5_device_doubles_host_bandwidth(self):
        gen5 = DEVICE_GEN5_400G.host_gbps
        gen4_equivalent = (PcieGeneration.GEN4.per_lane_gbps * 8)
        assert gen5 == pytest.approx(2 * gen4_equivalent, rel=0.01)

    def test_stratix_is_official_intel_board(self):
        assert DEVICE_STRATIX_NIC.board_vendor is Vendor.INTEL
        assert DEVICE_STRATIX_NIC.chip_vendor is Vendor.INTEL

    def test_arria_is_inhouse_board_on_intel_silicon(self):
        assert DEVICE_ARRIA_EDGE.board_vendor is Vendor.INHOUSE
        assert DEVICE_ARRIA_EDGE.chip_vendor is Vendor.INTEL

    def test_gen5_device_carries_400g_cage(self):
        assert DEVICE_GEN5_400G.has_peripheral(PeripheralKind.QSFP112)


class TestExtendedDeployment:
    @pytest.mark.parametrize("device", EXTENDED, ids=lambda d: d.name)
    def test_unified_shell_builds_and_fits(self, device):
        shell = build_unified_shell(device)
        device.budget.check_fits(shell.resources(), design="unified shell")

    @pytest.mark.parametrize("device", EXTENDED, ids=lambda d: d.name)
    def test_command_bring_up_clean(self, device):
        control = ControlPlane(build_unified_shell(device))
        control.command_full_init()
        assert control.kernel.commands_failed == 0

    def test_gen5_shell_uses_400g_mac_and_gen5_dma(self):
        shell = build_unified_shell(DEVICE_GEN5_400G)
        assert shell.network.selected_instance_name == "400g-inhouse"
        assert shell.host.instance.clock.freq_mhz == 1_000.0   # Gen5 user clock

    def test_400g_role_tailors_on_gen5_device(self):
        role = Role("nic-400", Architecture.BUMP_IN_THE_WIRE,
                    RoleDemands(network_gbps=400.0, host_gbps=100.0, bulk_dma=False,
                                user_clock_mhz=500.0))
        shell = HierarchicalTailor(build_unified_shell(DEVICE_GEN5_400G)).tailor(role)
        assert shell.rbbs["network"].instance.performance_gbps == 400.0

    def test_oneapi_supports_stratix_but_not_arria_board(self):
        from repro.baselines import OneApiFramework

        framework = OneApiFramework()
        assert framework.supports(DEVICE_STRATIX_NIC)
        assert not framework.supports(DEVICE_ARRIA_EDGE)
