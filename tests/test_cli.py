"""Tests for the operator CLI."""

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("device-a", "device-b", "device-c", "device-d"):
            assert name in out

    def test_shows_pcie_and_memory(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        assert "Gen4x8" in out
        assert "hbm" in out


class TestDescribe:
    def test_describes_device(self, capsys):
        assert main(["describe", "device-a"]) == 0
        out = capsys.readouterr().out
        assert "XCVU35P" in out
        assert "pcie_generation" in out

    def test_unknown_device_errors(self, capsys):
        assert main(["describe", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestTailor:
    def test_tailors_app_shell(self, capsys):
        assert main(["tailor", "device-a", "--app", "sec-gateway"]) == 0
        out = capsys.readouterr().out
        assert "RBBs: host, network" in out
        assert "x simpler" in out

    def test_unknown_app_errors(self, capsys):
        assert main(["tailor", "device-a", "--app", "nope"]) == 1
        assert "known:" in capsys.readouterr().err


class TestBringup:
    def test_reports_both_interface_costs(self, capsys):
        assert main(["bringup", "device-a", "--app", "sec-gateway"]) == 0
        out = capsys.readouterr().out
        assert "register interface:" in out
        assert "command interface :" in out


class TestMigrate:
    def test_reports_reduction(self, capsys):
        assert main(["migrate", "host-network", "device-c", "device-d"]) == 0
        out = capsys.readouterr().out
        assert "reduction:" in out
        assert "register-interface modifications: 182" in out


class TestHealth:
    def test_healthy_device_exit_zero(self, capsys):
        assert main(["health", "device-b"]) == 0
        out = capsys.readouterr().out
        assert "temperature_c" in out
        assert "ok" in out


class TestTrace:
    def test_exports_jsonl_to_stdout(self, capsys):
        assert main(["trace", "device-a", "--app", "sec-gateway",
                     "--packets", "50", "--sizes", "64"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("{")]
        assert lines, "expected JSONL records on stdout"
        import json

        names = {json.loads(line)["name"] for line in lines}
        assert any("role" in name for name in names)
        assert any(".link" in name for name in names)

    def test_writes_jsonl_file(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["trace", "device-a", "--app", "sec-gateway",
                     "--packets", "50", "--sizes", "64",
                     "--out", str(target)]) == 0
        assert target.is_file()
        assert "trace records" in capsys.readouterr().out
        assert target.read_text().count("\n") > 0

    def test_unknown_app_errors(self, capsys):
        assert main(["trace", "device-a", "--app", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_export_without_app_errors(self, capsys):
        assert main(["trace", "device-a"]) == 1
        assert "--app" in capsys.readouterr().err


class TestTraceAnalytics:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        import json

        records = [
            {"type": "B", "id": 0, "name": "root", "ts_ps": 0},
            {"type": "X", "id": 1, "name": "work", "ts_ps": 0,
             "dur_ps": 80, "parent": 0},
            {"type": "E", "id": 0, "name": "root", "ts_ps": 100},
        ]
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_analyze_prints_critical_path_and_flame(self, capsys,
                                                    trace_file):
        assert main(["trace", "analyze", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out
        assert "root" in out and "work" in out
        assert "Flame fold" in out

    def test_analyze_writes_json(self, capsys, trace_file, tmp_path):
        import json

        target = tmp_path / "analysis.json"
        assert main(["trace", "analyze", str(trace_file),
                     "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert [row["name"] for row in payload["critical_path"]] == \
            ["root", "work"]

    def test_diff_ranks_deltas(self, capsys, trace_file, tmp_path):
        import json

        after = tmp_path / "after.jsonl"
        after.write_text(json.dumps(
            {"type": "X", "id": 0, "name": "work", "ts_ps": 0,
             "dur_ps": 200}) + "\n")
        assert main(["trace", "diff", str(trace_file), str(after)]) == 0
        out = capsys.readouterr().out
        assert "Trace diff" in out
        assert "work" in out

    def test_wrong_arity_errors(self, capsys):
        assert main(["trace", "analyze"]) == 1
        assert main(["trace", "diff", "only-one.jsonl"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_missing_file_errors(self, capsys):
        assert main(["trace", "analyze", "/nonexistent/t.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err


class TestMetrics:
    def test_prints_snapshot_tree(self, capsys):
        assert main(["metrics", "device-a", "--app", "sec-gateway",
                     "--packets", "50", "--sizes", "64"]) == 0
        import json

        tree = json.loads(capsys.readouterr().out)
        assert tree["app"]["sec-gateway"]["harmonia"]["64B"]["throughput_gbps"] > 0

    def test_native_variant(self, capsys):
        assert main(["metrics", "device-a", "--app", "sec-gateway",
                     "--packets", "50", "--sizes", "64", "--native"]) == 0
        import json

        tree = json.loads(capsys.readouterr().out)
        assert "native" in tree["app"]["sec-gateway"]


class TestSweep:
    BASE = ["sweep", "--apps", "sec-gateway", "--devices", "device-a",
            "--sizes", "64", "256", "--packets", "100"]

    def test_prints_point_table(self, capsys):
        assert main(self.BASE) == 0
        captured = capsys.readouterr()
        assert "2 points" in captured.out
        assert "sec-gateway" in captured.out
        assert "cache hits" in captured.err

    def test_json_artifact_and_cache_file(self, capsys, tmp_path):
        import json

        artifact = tmp_path / "sweep.json"
        cache_file = tmp_path / "sweep.cache.json"
        args = self.BASE + ["--json", str(artifact),
                            "--cache-file", str(cache_file)]
        assert main(args) == 0
        points = json.loads(artifact.read_text())["points"]
        assert len(points) == 2
        assert all(point["throughput_gbps"] > 0 for point in points)
        assert not any(point["cached"] for point in points)
        # A second invocation is served entirely from the saved cache.
        assert main(args) == 0
        points = json.loads(artifact.read_text())["points"]
        assert all(point["cached"] for point in points)

    def test_trace_out_writes_merged_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "sweep.trace.jsonl"
        assert main(self.BASE + ["--trace-out", str(trace)]) == 0
        assert trace.read_text().count("\n") > 0

    def test_unknown_device_errors(self, capsys):
        assert main(["sweep", "--apps", "sec-gateway",
                     "--devices", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBuild:
    BASE = ["build", "--devices", "device-a", "device-b-rev2",
            "--apps", "sec-gateway", "board-test"]

    def test_prints_target_table(self, capsys):
        assert main(self.BASE) == 0
        captured = capsys.readouterr()
        assert "4 targets" in captured.out
        assert "built" in captured.out
        assert "tailor-memo hits" in captured.err

    def test_variant_devices_share_builds(self, capsys):
        assert main(self.BASE) == 0
        assert "shared" in capsys.readouterr().out

    def test_cache_dir_makes_the_rerun_warm(self, capsys, tmp_path):
        import json

        args = self.BASE + ["--cache-dir", str(tmp_path / "store"),
                            "--json", str(tmp_path / "build.json")]
        assert main(args) == 0
        cold = json.loads((tmp_path / "build.json").read_text())
        assert main(args) == 0
        warm = json.loads((tmp_path / "build.json").read_text())
        statuses = [target["status"] for target in warm["targets"]]
        assert statuses == ["cached"] * 4
        for before, after in zip(cold["targets"], warm["targets"]):
            assert before["checksum"] == after["checksum"]

    def test_manifests_and_trace_artifacts(self, capsys, tmp_path):
        manifests = tmp_path / "manifests.jsonl"
        trace = tmp_path / "build.trace.jsonl"
        assert main(self.BASE + ["--manifests-out", str(manifests),
                                 "--trace-out", str(trace)]) == 0
        assert manifests.read_text().count("\n") == 4
        assert '"build.target"' in trace.read_text()

    def test_default_slos_pass(self, capsys):
        assert main(self.BASE + ["--slo", "default"]) == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_unknown_device_errors(self, capsys):
        assert main(["build", "--devices", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_missing_command_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])


class TestFleet:
    def test_small_fleet_run(self, capsys):
        assert main(["fleet", "--flows", "20000", "--devices", "64",
                     "--tenants", "8", "--slots", "2"]) == 0
        out = capsys.readouterr().out
        assert "least-loaded" in out
        assert "round-robin" in out
        assert "flow-hash" in out
        assert "best policy by p99" in out

    def test_policy_subset_and_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "fleet.json"
        assert main(["fleet", "--flows", "5000", "--devices", "16",
                     "--tenants", "4", "--slots", "2",
                     "--policies", "least-loaded",
                     "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert [p["policy"] for p in payload["policies"]] == ["least-loaded"]
        assert payload["spec"]["flow_count"] == 5000
        assert len(payload["policies"][0]["device_utilization"]) == 16

    def test_invalid_spec_errors(self, capsys):
        assert main(["fleet", "--flows", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFleetEpochs:
    ARGS = ["fleet", "--flows", "2000", "--devices", "16",
            "--tenants", "4", "--slots", "2", "--epochs", "4",
            "--churn", "0.02"]

    def test_epoch_run_prints_day_table_and_totals(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Orchestrated day: 4 epochs" in out
        assert "incremental mode" in out
        assert "totals:" in out
        assert "final:" in out

    def test_epoch_mode_flag_reaches_the_report(self, capsys):
        assert main(self.ARGS + ["--epoch-mode", "verify"]) == 0
        assert "verify mode" in capsys.readouterr().out

    def test_json_artifact_round_trips(self, capsys, tmp_path):
        import json

        target = tmp_path / "epochs.json"
        assert main(self.ARGS + ["--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["spec"]["epochs"]["epochs"] == 4
        assert len(payload["epochs"]) == 4
        assert payload["digest"]

    def test_churn_without_epochs_errors(self, capsys):
        assert main(["fleet", "--flows", "2000", "--devices", "16",
                     "--churn", "0.02"]) == 1
        assert "--epochs" in capsys.readouterr().err

    def test_policies_conflict_with_epochs(self, capsys):
        assert main(self.ARGS + ["--policies", "round-robin"]) == 1
        assert "epochs" in capsys.readouterr().err


class TestSweepEngine:
    def test_engine_flag_accepted(self, capsys):
        assert main(["sweep", "--apps", "sec-gateway",
                     "--devices", "device-a", "--sizes", "64",
                     "--packets", "100", "--no-cache",
                     "--engine", "vector"]) == 0
        assert "sec-gateway" in capsys.readouterr().out

    def test_bad_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--apps", "sec-gateway",
                  "--devices", "device-a", "--engine", "warp"])


class TestTraceChrome:
    BASE = ["trace", "device-a", "--app", "sec-gateway",
            "--packets", "50", "--sizes", "64", "--format", "chrome"]

    def test_exports_trace_event_json(self, capsys):
        import json

        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        body = out[: out.rindex("\n# ") + 1] if "\n# " in out else out
        events = json.loads(body.splitlines()[0])
        assert isinstance(events, list) and events
        assert all("ph" in event and "pid" in event and "tid" in event
                   for event in events)

    def test_writes_valid_chrome_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        assert main(self.BASE + ["--out", str(target)]) == 0
        events = json.loads(target.read_text(encoding="utf-8"))
        begins = sum(1 for event in events if event["ph"] == "B")
        ends = sum(1 for event in events if event["ph"] == "E")
        assert begins and begins == ends

    def test_byte_identical_across_runs(self, tmp_path):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        assert main(self.BASE + ["--out", str(first)]) == 0
        assert main(self.BASE + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()


class TestMetricsPrometheus:
    def test_exposition_format(self, capsys):
        assert main(["metrics", "device-a", "--app", "sec-gateway",
                     "--packets", "50", "--sizes", "64",
                     "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# HELP harmonia_" in out
        assert "# TYPE harmonia_" in out
        assert 'quantile="0.99"' in out


class TestProfile:
    def test_profile_prints_phase_table(self, capsys):
        assert main(["profile", "--packets", "50", "--flows", "2000",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative ms" in out
        assert "fleet.policy" in out
        assert "sweep.fused" in out


class TestSloFlags:
    def test_fleet_default_slos_violation_exit_code(self, capsys):
        # The stock scenario overdrives hot devices, so default SLOs trip.
        assert main(["fleet", "--flows", "20000", "--devices", "64",
                     "--slo", "default"]) == 4
        out = capsys.readouterr().out
        assert "SLO check:" in out and "VIOLATION" in out

    def test_fleet_passing_slo_file_exit_zero(self, capsys, tmp_path):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps([
            {"name": "sane-util", "metric": "fleet.*.utilization_mean",
             "upper": 1e9},
        ]), encoding="utf-8")
        assert main(["fleet", "--flows", "5000", "--devices", "16",
                     "--slo", str(spec)]) == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_fleet_json_embeds_slo_report(self, capsys, tmp_path):
        import json

        target = tmp_path / "fleet.json"
        assert main(["fleet", "--flows", "20000", "--devices", "64",
                     "--slo", "default", "--json", str(target)]) == 4
        payload = json.loads(target.read_text())
        assert payload["slo"]["ok"] is False
        assert payload["slo"]["violations"]

    def test_sweep_slo_flag(self, capsys, tmp_path):
        import json

        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps([
            {"name": "throughput-floor", "metric": "sweep.*.throughput_gbps",
             "lower": 1e9},
        ]), encoding="utf-8")
        assert main(["sweep", "--apps", "sec-gateway",
                     "--devices", "device-a", "--sizes", "64",
                     "--packets", "100", "--no-cache",
                     "--slo", str(spec)]) == 4
        assert "VIOLATION throughput-floor" in capsys.readouterr().out

    def test_bad_slo_file_is_an_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("nope", encoding="utf-8")
        assert main(["fleet", "--flows", "5000", "--devices", "16",
                     "--slo", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestFleetTraceOut:
    def test_streams_trace_with_bounded_residency(self, capsys, tmp_path):
        import json

        target = tmp_path / "fleet_trace.jsonl"
        assert main(["fleet", "--flows", "20000", "--devices", "64",
                     "--slo", "default", "--trace-out", str(target),
                     "--trace-ring", "8"]) == 4
        err = capsys.readouterr().err
        assert "streamed" in err and "8 resident" in err
        lines = target.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        # The violation instants land inside the streamed trace.
        assert any(record["name"] == "slo.violation" for record in records)
        ids = [record["id"] for record in records]
        assert ids == sorted(ids)  # emission order survives streaming
