"""Tests for the operator CLI."""

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("device-a", "device-b", "device-c", "device-d"):
            assert name in out

    def test_shows_pcie_and_memory(self, capsys):
        main(["devices"])
        out = capsys.readouterr().out
        assert "Gen4x8" in out
        assert "hbm" in out


class TestDescribe:
    def test_describes_device(self, capsys):
        assert main(["describe", "device-a"]) == 0
        out = capsys.readouterr().out
        assert "XCVU35P" in out
        assert "pcie_generation" in out

    def test_unknown_device_errors(self, capsys):
        assert main(["describe", "nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestTailor:
    def test_tailors_app_shell(self, capsys):
        assert main(["tailor", "device-a", "--app", "sec-gateway"]) == 0
        out = capsys.readouterr().out
        assert "RBBs: host, network" in out
        assert "x simpler" in out

    def test_unknown_app_errors(self, capsys):
        assert main(["tailor", "device-a", "--app", "nope"]) == 1
        assert "known:" in capsys.readouterr().err


class TestBringup:
    def test_reports_both_interface_costs(self, capsys):
        assert main(["bringup", "device-a", "--app", "sec-gateway"]) == 0
        out = capsys.readouterr().out
        assert "register interface:" in out
        assert "command interface :" in out


class TestMigrate:
    def test_reports_reduction(self, capsys):
        assert main(["migrate", "host-network", "device-c", "device-d"]) == 0
        out = capsys.readouterr().out
        assert "reduction:" in out
        assert "register-interface modifications: 182" in out


class TestHealth:
    def test_healthy_device_exit_zero(self, capsys):
        assert main(["health", "device-b"]) == 0
        out = capsys.readouterr().out
        assert "temperature_c" in out
        assert "ok" in out


class TestParser:
    def test_missing_command_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])
