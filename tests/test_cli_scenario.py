"""CLI scenario routing: ``--scenario FILE`` must be byte-identical to
the equivalent flag invocation on every subcommand."""

import json

import pytest

from repro.cli import main
from repro.scenario import (
    BuildSpec,
    Scenario,
    TenancySpec,
    WorkloadSpec,
    save_scenario,
)


def write_scenario(tmp_path, scenario, name="scenario.json"):
    path = tmp_path / name
    save_scenario(scenario, str(path))
    return str(path)


class TestSweepParity:
    SCENARIO = Scenario(
        kind="sweep", apps=("sec-gateway",), devices=("device-a",),
        workload=WorkloadSpec(packet_sizes=(64, 256), packets_per_point=50))

    def test_results_and_traces_are_byte_identical(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        from_file = tmp_path / "file.json"
        from_flags = tmp_path / "flags.json"
        trace_file = tmp_path / "file-trace.jsonl"
        trace_flags = tmp_path / "flags-trace.jsonl"
        assert main(["sweep", "--scenario", path,
                     "--json", str(from_file),
                     "--trace-out", str(trace_file)]) == 0
        assert main(["sweep", "--apps", "sec-gateway",
                     "--devices", "device-a", "--sizes", "64", "256",
                     "--packets", "50",
                     "--json", str(from_flags),
                     "--trace-out", str(trace_flags)]) == 0
        capsys.readouterr()
        assert from_file.read_bytes() == from_flags.read_bytes()
        assert trace_file.read_bytes() == trace_flags.read_bytes()
        assert trace_file.read_bytes(), "traced sweep must export spans"

    def test_engine_choice_is_invisible_in_results(self, tmp_path, capsys):
        outputs = []
        for engine in ("vector", "des"):
            scenario = self.SCENARIO.replace(engine=engine)
            path = write_scenario(tmp_path, scenario, f"{engine}.json")
            out = tmp_path / f"{engine}-points.json"
            assert main(["sweep", "--scenario", path,
                         "--json", str(out)]) == 0
            outputs.append(out.read_bytes())
        capsys.readouterr()
        assert outputs[0] == outputs[1]

    def test_shape_flags_conflict_with_scenario(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        assert main(["sweep", "--scenario", path,
                     "--apps", "sec-gateway"]) == 1
        err = capsys.readouterr().err
        assert "--apps" in err
        assert "--scenario" in err

    def test_flags_without_apps_point_at_scenario(self, capsys):
        assert main(["sweep", "--sizes", "64"]) == 1
        assert "--scenario" in capsys.readouterr().err

    def test_wrong_kind_is_loud(self, tmp_path, capsys):
        path = write_scenario(tmp_path, Scenario(kind="fleet"))
        assert main(["sweep", "--scenario", path]) == 1
        assert '"kind": "sweep"' in capsys.readouterr().err

    def test_missing_file_is_loud(self, tmp_path, capsys):
        assert main(["sweep", "--scenario",
                     str(tmp_path / "absent.json")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_invalid_engine_in_file_is_loud(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        payload = self.SCENARIO.to_json()
        payload["engine"] = "warp"
        path.write_text(json.dumps(payload))
        assert main(["sweep", "--scenario", str(path)]) == 1
        assert "auto, vector, des" in capsys.readouterr().err


class TestBuildParity:
    SCENARIO = Scenario(
        kind="build", apps=("sec-gateway", "board-test"),
        devices=("device-a", "device-b"), build=BuildSpec(effort=0))

    def test_manifests_are_byte_identical(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        from_file = tmp_path / "file.jsonl"
        from_flags = tmp_path / "flags.jsonl"
        assert main(["build", "--scenario", path,
                     "--manifests-out", str(from_file)]) == 0
        assert main(["build", "--devices", "device-a", "device-b",
                     "--apps", "sec-gateway", "board-test",
                     "--manifests-out", str(from_flags)]) == 0
        capsys.readouterr()
        assert from_file.read_bytes() == from_flags.read_bytes()
        assert from_file.read_bytes(), "build must emit manifests"

    def test_reports_match_minus_wall_clock(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        from_file = tmp_path / "file.json"
        from_flags = tmp_path / "flags.json"
        assert main(["build", "--scenario", path,
                     "--json", str(from_file)]) == 0
        assert main(["build", "--devices", "device-a", "device-b",
                     "--apps", "sec-gateway", "board-test",
                     "--json", str(from_flags)]) == 0
        capsys.readouterr()
        first = json.loads(from_file.read_text())
        second = json.loads(from_flags.read_text())
        first.pop("elapsed_s")
        second.pop("elapsed_s")
        assert first == second

    def test_year_flag_conflicts_with_scenario(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        assert main(["build", "--scenario", path, "--year", "2022"]) == 1
        assert "--year" in capsys.readouterr().err


class TestFleetParity:
    SCENARIO = Scenario(
        kind="fleet", seed=7,
        tenancy=TenancySpec(flow_count=2_000, device_count=16,
                            tenant_count=4, slots_per_device=2))

    FLAGS = ["--flows", "2000", "--devices", "16", "--tenants", "4",
             "--slots", "2", "--seed", "7"]

    def test_results_match_minus_wall_clock(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        from_file = tmp_path / "file.json"
        from_flags = tmp_path / "flags.json"
        assert main(["fleet", "--scenario", path,
                     "--json", str(from_file)]) == 0
        assert main(["fleet", *self.FLAGS,
                     "--json", str(from_flags)]) == 0
        capsys.readouterr()
        first = json.loads(from_file.read_text())
        second = json.loads(from_flags.read_text())
        first.pop("elapsed_s")
        second.pop("elapsed_s")
        assert first == second

    def test_shape_flags_conflict_with_scenario(self, tmp_path, capsys):
        path = write_scenario(tmp_path, self.SCENARIO)
        assert main(["fleet", "--scenario", path, "--flows", "10"]) == 1
        assert "--flows" in capsys.readouterr().err

    def test_invalid_tenancy_keeps_fleet_message(self, capsys):
        assert main(["fleet", "--flows", "0"]) == 1
        assert "need at least one flow" in capsys.readouterr().err


class TestFuzzCommand:
    def test_clean_budget_exits_zero(self, tmp_path, capsys):
        assert main(["fuzz", "--budget", "4", "--seed", "3",
                     "--repro-dir", str(tmp_path / "repros")]) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "0 failure(s)" in out

    def test_injected_failure_exits_five_and_writes_repro(self, tmp_path,
                                                          capsys):
        repro_dir = tmp_path / "repros"
        report_path = tmp_path / "report.json"
        assert main(["fuzz", "--budget", "12", "--seed", "13",
                     "--repro-dir", str(repro_dir),
                     "--inject-failure", "1024",
                     "--json", str(report_path)]) == 5
        out = capsys.readouterr().out
        assert "FAIL injected" in out
        repros = list(repro_dir.glob("scenario-*.json"))
        assert repros, "minimized repro JSON must land on disk"
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is False
        assert payload["elapsed_s"] >= 0

    def test_epoch_rate_runs_the_epoch_differential(self, tmp_path, capsys):
        assert main(["fuzz", "--budget", "4", "--seed", "6",
                     "--epoch-rate", "1.0",
                     "--repro-dir", str(tmp_path / "repros")]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_inject_epoch_exits_five_with_minimal_repro(self, tmp_path,
                                                        capsys):
        repro_dir = tmp_path / "repros"
        assert main(["fuzz", "--budget", "4", "--seed", "19",
                     "--epoch-rate", "1.0", "--inject-epoch", "2",
                     "--repro-dir", str(repro_dir)]) == 5
        assert "FAIL injected-epoch" in capsys.readouterr().out
        assert list(repro_dir.glob("scenario-*.json"))


@pytest.mark.parametrize("command", ["sweep", "build", "fleet"])
def test_every_routed_subcommand_accepts_scenario(command, tmp_path, capsys):
    """The one shared loader: every tier rejects the wrong kind loudly."""
    wrong_kind = {"sweep": "fleet", "build": "sweep", "fleet": "build"}
    scenario = {"fleet": Scenario(kind="fleet"),
                "sweep": Scenario(kind="sweep", apps=("sec-gateway",),
                                  devices=("device-a",)),
                "build": Scenario(kind="build", devices=("device-a",),
                                  apps=("sec-gateway",))}[wrong_kind[command]]
    path = write_scenario(tmp_path, scenario)
    assert main([command, "--scenario", path]) == 1
    assert f'"kind": "{command}"' in capsys.readouterr().err
