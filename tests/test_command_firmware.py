"""Tests for programmable command firmware on the control kernel."""

import pytest

from repro.core.command.codes import CommandCode, RbbId, StatusCode
from repro.core.command.driver import CommandDriver
from repro.core.command.firmware import (
    FirmwareProgram,
    Instruction,
    Op,
    install_firmware,
)
from repro.core.command.kernel import ModuleEndpoint, UnifiedControlKernel
from repro.errors import CommandError
from repro.hw.ip.mac import xilinx_cmac_100g

CUSTOM_CODE = 0x0100


def make_kernel():
    kernel = UnifiedControlKernel()
    mac = xilinx_cmac_100g()
    regfile = mac.register_file()
    kernel.register_module(
        int(RbbId.NETWORK), 0,
        ModuleEndpoint("mac", regfile, mac.init_sequence()),
    )
    return kernel, regfile


class TestProgramValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(CommandError, match="no instructions"):
            FirmwareProgram("empty", [])

    def test_stack_underflow_caught_statically(self):
        with pytest.raises(CommandError, match="underflow"):
            FirmwareProgram("bad", [Instruction(Op.ADD)])

    def test_underflow_after_partial_consumption_caught(self):
        with pytest.raises(CommandError, match="underflow"):
            FirmwareProgram("bad", [Instruction(Op.PUSH, 1), Instruction(Op.ADD)])

    def test_valid_program_accepted(self):
        FirmwareProgram("ok", [Instruction(Op.PUSH, 1), Instruction(Op.PUSH, 2),
                               Instruction(Op.ADD), Instruction(Op.EMIT)])


class TestExecution:
    def test_sum_two_counters(self):
        kernel, regfile = make_kernel()
        regfile.poke("STAT_RX_TOTAL_PACKETS", 30)
        regfile.poke("STAT_TX_TOTAL_PACKETS", 12)
        program = FirmwareProgram("sum-counters", [
            Instruction(Op.REG_READ, "STAT_RX_TOTAL_PACKETS"),
            Instruction(Op.REG_READ, "STAT_TX_TOTAL_PACKETS"),
            Instruction(Op.ADD),
            Instruction(Op.EMIT),
        ])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)
        result = CommandDriver(kernel).cmd_read(CUSTOM_CODE, int(RbbId.NETWORK))
        assert result.ok
        assert result.data == (42,)

    def test_arguments_flow_from_packet(self):
        kernel, regfile = make_kernel()
        program = FirmwareProgram("masked-write", [
            Instruction(Op.ARG, 0),
            Instruction(Op.PUSH, 0xFF),
            Instruction(Op.AND),
            Instruction(Op.REG_WRITE, "CTRL_RX"),
        ])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)
        CommandDriver(kernel).cmd_write(CUSTOM_CODE, int(RbbId.NETWORK),
                                        data=(0x1234,))
        assert regfile.register("CTRL_RX").value == 0x34

    def test_table_roundtrip_via_firmware(self):
        kernel, _regfile = make_kernel()
        writer = FirmwareProgram("table-write", [
            Instruction(Op.ARG, 0), Instruction(Op.ARG, 1),
            Instruction(Op.TABLE_SET),
        ])
        reader = FirmwareProgram("table-read", [
            Instruction(Op.ARG, 0), Instruction(Op.TABLE_GET),
            Instruction(Op.EMIT),
        ])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, writer)
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE + 1, reader)
        driver = CommandDriver(kernel)
        driver.cmd_write(CUSTOM_CODE, int(RbbId.NETWORK), data=(7, 99))
        result = driver.cmd_read(CUSTOM_CODE + 1, int(RbbId.NETWORK), data=(7,))
        assert result.data == (99,)

    def test_missing_argument_fails_the_command_not_the_kernel(self):
        kernel, _regfile = make_kernel()
        program = FirmwareProgram("needs-arg", [Instruction(Op.ARG, 0),
                                                Instruction(Op.EMIT)])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)
        driver = CommandDriver(kernel)
        result = driver.cmd_read(CUSTOM_CODE, int(RbbId.NETWORK))
        assert result.status == int(StatusCode.EXECUTION_FAILED)
        # The kernel keeps serving built-in commands afterwards.
        follow_up = driver.cmd_write(CommandCode.MODULE_RESET, int(RbbId.NETWORK))
        assert follow_up.ok

    def test_alu_and_shift(self):
        kernel, _regfile = make_kernel()
        program = FirmwareProgram("alu", [
            Instruction(Op.PUSH, 0b1010),
            Instruction(Op.SHL, 4),
            Instruction(Op.PUSH, 0b1111),
            Instruction(Op.OR),
            Instruction(Op.DUP),
            Instruction(Op.PUSH, 0b1000_0000),
            Instruction(Op.SUB),
            Instruction(Op.EMIT),
            Instruction(Op.EMIT),
        ])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)
        result = CommandDriver(kernel).cmd_read(CUSTOM_CODE, int(RbbId.NETWORK))
        assert result.data == (0b0010_1111, 0b1010_1111)


class TestInstallation:
    def test_duplicate_code_rejected(self):
        kernel, _regfile = make_kernel()
        program = FirmwareProgram("p", [Instruction(Op.PUSH, 1), Instruction(Op.EMIT)])
        install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)
        with pytest.raises(CommandError, match="already has firmware"):
            install_firmware(kernel, int(RbbId.NETWORK), 0, CUSTOM_CODE, program)

    def test_firmware_overrides_builtin_semantics(self):
        kernel, _regfile = make_kernel()
        program = FirmwareProgram("fake-status", [Instruction(Op.PUSH, 0xBEEF),
                                                  Instruction(Op.EMIT)])
        install_firmware(kernel, int(RbbId.NETWORK), 0,
                         int(CommandCode.MODULE_STATUS_READ), program)
        result = CommandDriver(kernel).cmd_read(
            CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK)
        )
        assert result.data == (0xBEEF,)
