"""Tests for the unified control kernel and the host drivers."""

import pytest

from repro.core.command.codes import CommandCode, RbbId, SrcId, StatusCode
from repro.core.command.driver import CommandDriver, RegisterDriver
from repro.core.command.kernel import ModuleEndpoint, UnifiedControlKernel
from repro.core.command.packet import CommandPacket
from repro.errors import CommandError
from repro.hw.ip.mac import xilinx_cmac_100g
from repro.hw.ip.misc import qspi_flash, sensor_block


def make_kernel():
    kernel = UnifiedControlKernel()
    mac = xilinx_cmac_100g()
    kernel.register_module(
        int(RbbId.NETWORK), 0,
        ModuleEndpoint("mac", mac.register_file(), mac.init_sequence(),
                       status_registers=("STAT_RX_STATUS",),
                       control_registers=("CTRL_RX",)),
    )
    flash = qspi_flash()
    kernel.register_module(
        int(RbbId.MANAGEMENT), 0,
        ModuleEndpoint("flash", flash.register_file(), flash.init_sequence()),
    )
    sensor = sensor_block()
    kernel.register_module(
        int(RbbId.MANAGEMENT), 1,
        ModuleEndpoint("sensor", sensor.register_file(), sensor.init_sequence()),
    )
    return kernel


def roundtrip(kernel, **fields):
    packet_fields = dict(src_id=int(SrcId.HOST_APPLICATION), dst_id=1,
                         rbb_id=int(RbbId.NETWORK), instance_id=0,
                         command_code=int(CommandCode.MODULE_STATUS_READ),
                         data=())
    packet_fields.update(fields)
    kernel.submit(CommandPacket(**packet_fields).encode())
    return CommandPacket.decode(kernel.process_one())


class TestKernelExecution:
    def test_status_read_returns_named_registers(self):
        response = roundtrip(make_kernel())
        assert response.options == int(StatusCode.OK)
        assert response.data == (0x1,)  # STAT_RX_STATUS reset value

    def test_status_write_targets_control_registers(self):
        kernel = make_kernel()
        roundtrip(kernel, command_code=int(CommandCode.MODULE_STATUS_WRITE), data=(0x3,))
        endpoint = kernel.endpoint(int(RbbId.NETWORK), 0)
        assert endpoint.regfile.register("CTRL_RX").value == 0x3

    def test_module_init_runs_sequence(self):
        kernel = make_kernel()
        response = roundtrip(kernel, command_code=int(CommandCode.MODULE_INIT))
        assert response.options == int(StatusCode.OK)
        assert kernel.endpoint(int(RbbId.NETWORK), 0).init_runs == 1

    def test_module_reset_restores_defaults(self):
        kernel = make_kernel()
        endpoint = kernel.endpoint(int(RbbId.NETWORK), 0)
        endpoint.regfile.write_by_name("CTRL_RX", 0x7)
        roundtrip(kernel, command_code=int(CommandCode.MODULE_RESET))
        assert endpoint.regfile.register("CTRL_RX").value == 0
        assert endpoint.resets == 1

    def test_table_write_then_read(self):
        kernel = make_kernel()
        roundtrip(kernel, command_code=int(CommandCode.TABLE_WRITE), data=(10, 100, 20, 200))
        response = roundtrip(kernel, command_code=int(CommandCode.TABLE_READ),
                             data=(10, 20, 30))
        assert response.data == (100, 200, 0)

    def test_flash_erase_only_on_flash(self):
        kernel = make_kernel()
        ok = roundtrip(kernel, rbb_id=int(RbbId.MANAGEMENT), instance_id=0,
                       command_code=int(CommandCode.FLASH_ERASE), data=(4,))
        assert ok.options == int(StatusCode.OK)
        bad = roundtrip(kernel, command_code=int(CommandCode.FLASH_ERASE), data=(4,))
        assert bad.options == int(StatusCode.EXECUTION_FAILED)

    def test_sensor_read_returns_environment(self):
        response = roundtrip(make_kernel(), rbb_id=int(RbbId.MANAGEMENT), instance_id=1,
                             command_code=int(CommandCode.SENSOR_READ))
        temperature, vccint, vccaux = response.data
        assert 0 < temperature < 100
        assert vccint == 850

    def test_time_count_increments(self):
        kernel = make_kernel()
        first = roundtrip(kernel, command_code=int(CommandCode.TIME_COUNT))
        second = roundtrip(kernel, command_code=int(CommandCode.TIME_COUNT))
        assert second.data[0] == first.data[0] + 1

    def test_queue_enable_disable(self):
        kernel = make_kernel()
        roundtrip(kernel, command_code=int(CommandCode.QUEUE_ENABLE), data=(3, 4))
        endpoint = kernel.endpoint(int(RbbId.NETWORK), 0)
        assert endpoint.table[0x1_0003] == 1
        roundtrip(kernel, command_code=int(CommandCode.QUEUE_DISABLE), data=(3,))
        assert endpoint.table[0x1_0003] == 0

    def test_unknown_module_reports_status(self):
        response = roundtrip(make_kernel(), rbb_id=0x7F)
        assert response.options == int(StatusCode.UNKNOWN_MODULE)

    def test_unknown_command_reports_failure(self):
        response = roundtrip(make_kernel(), command_code=0x1FFF)
        assert response.options == int(StatusCode.EXECUTION_FAILED)

    def test_custom_hook_takes_precedence(self):
        kernel = make_kernel()
        endpoint = kernel.endpoint(int(RbbId.NETWORK), 0)
        endpoint.hooks[int(CommandCode.MODULE_STATUS_READ)] = lambda packet: (0xCAFE,)
        assert roundtrip(kernel).data == (0xCAFE,)

    def test_duplicate_registration_rejected(self):
        kernel = make_kernel()
        with pytest.raises(CommandError, match="already registered"):
            kernel.register_module(int(RbbId.NETWORK), 0,
                                   ModuleEndpoint("dup", xilinx_cmac_100g().register_file()))

    def test_process_all_drains_buffer(self):
        kernel = make_kernel()
        for _ in range(3):
            kernel.submit(CommandPacket(
                src_id=1, dst_id=1, rbb_id=int(RbbId.NETWORK), instance_id=0,
                command_code=int(CommandCode.MODULE_STATUS_READ)).encode())
        assert len(kernel.process_all()) == 3
        assert kernel.process_one() is None

    def test_statistics_track_outcomes(self):
        kernel = make_kernel()
        roundtrip(kernel)
        roundtrip(kernel, rbb_id=0x7F)
        assert kernel.commands_executed == 1
        assert kernel.commands_failed == 1


class TestCommandDriver:
    def test_cmd_read_write_roundtrip(self):
        kernel = make_kernel()
        driver = CommandDriver(kernel)
        write = driver.cmd_write(CommandCode.MODULE_INIT, int(RbbId.NETWORK))
        read = driver.cmd_read(CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK))
        assert write.ok and read.ok
        assert driver.invocation_count == 2

    def test_responses_routed_by_src_id(self):
        kernel = make_kernel()
        app = CommandDriver(kernel, src_id=SrcId.HOST_APPLICATION)
        tool = CommandDriver(kernel, src_id=SrcId.STANDALONE_TOOL)
        app.cmd_read(CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK))
        tool.cmd_read(CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK))
        assert int(SrcId.HOST_APPLICATION) in app.responses_by_src
        assert int(SrcId.STANDALONE_TOOL) in tool.responses_by_src

    def test_invocation_signatures_include_payload(self):
        driver = CommandDriver(make_kernel())
        driver.cmd_write(CommandCode.TABLE_WRITE, int(RbbId.NETWORK), data=(1, 2))
        kind, code, rbb, instance, data = driver.invocations[0]
        assert (kind, code, data) == ("cmd_write", int(CommandCode.TABLE_WRITE), (1, 2))


class TestRegisterDriver:
    def test_operations_logged(self):
        mac = xilinx_cmac_100g()
        driver = RegisterDriver()
        driver.attach("mac", mac.register_file())
        driver.reg_write("mac", "CTRL_RX", 1)
        driver.reg_read("mac", "CTRL_RX")
        assert driver.operation_count == 2
        assert driver.operations[0] == ("write", "mac", "CTRL_RX", 1)

    def test_init_program_ops_counted_individually(self):
        mac = xilinx_cmac_100g()
        driver = RegisterDriver()
        driver.attach("mac", mac.register_file())
        executed = driver.run_init_program("mac", mac.init_sequence())
        assert executed == driver.operation_count
        assert executed >= len(mac.init_sequence())

    def test_unattached_module_raises(self):
        with pytest.raises(CommandError):
            RegisterDriver().reg_read("ghost", "CTRL")

    def test_duplicate_attach_rejected(self):
        driver = RegisterDriver()
        driver.attach("mac", xilinx_cmac_100g().register_file())
        with pytest.raises(CommandError):
            driver.attach("mac", xilinx_cmac_100g().register_file())
