"""Tests for the byte-exact command packet format (paper Figure 9)."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.core.command.codes import CommandCode, DstId, SrcId
from repro.core.command.packet import COMMAND_VERSION, CommandPacket, HEADER_WORDS
from repro.errors import ChecksumError, CommandError


def make_packet(**overrides):
    fields = dict(src_id=int(SrcId.HOST_APPLICATION), dst_id=int(DstId.UNIFIED_CONTROL_KERNEL),
                  rbb_id=1, instance_id=0, command_code=int(CommandCode.MODULE_INIT),
                  options=0, data=())
    fields.update(overrides)
    return CommandPacket(**fields)


class TestEncoding:
    def test_wire_length(self):
        packet = make_packet(data=(1, 2, 3))
        assert len(packet.encode()) == (HEADER_WORDS + 3 + 1) * 4
        assert packet.total_bytes == 28

    def test_lengths_in_four_byte_units(self):
        packet = make_packet(data=(7,))
        assert packet.header_len_words == 3
        assert packet.payload_len_words == 1

    def test_word0_field_packing(self):
        packet = make_packet(src_id=0xAB, dst_id=0xCD)
        word0 = struct.unpack(">I", packet.encode()[:4])[0]
        assert word0 >> 28 == COMMAND_VERSION
        assert (word0 >> 24) & 0xF == HEADER_WORDS
        assert (word0 >> 8) & 0xFF == 0xAB
        assert word0 & 0xFF == 0xCD

    def test_word1_field_packing(self):
        packet = make_packet(rbb_id=0x12, instance_id=0x34, command_code=0x5678)
        word1 = struct.unpack(">I", packet.encode()[4:8])[0]
        assert word1 == 0x1234_5678

    def test_words_sum_to_zero_with_checksum(self):
        raw = make_packet(data=(0xDEAD_BEEF, 5)).encode()
        words = struct.unpack(f">{len(raw) // 4}I", raw)
        assert sum(words) & 0xFFFF_FFFF == 0


class TestDecoding:
    def test_roundtrip(self):
        packet = make_packet(data=(1, 0xFFFF_FFFF), options=0x42)
        assert CommandPacket.decode(packet.encode()) == packet

    def test_corrupted_byte_fails_checksum(self):
        raw = bytearray(make_packet(data=(9,)).encode())
        raw[10] ^= 0x01
        with pytest.raises(ChecksumError):
            CommandPacket.decode(bytes(raw))

    def test_truncated_packet_rejected(self):
        raw = make_packet().encode()
        with pytest.raises(CommandError, match="shorter"):
            CommandPacket.decode(raw[:8])

    def test_misaligned_length_rejected(self):
        raw = make_packet().encode() + b"\x00"
        with pytest.raises(CommandError, match="aligned"):
            CommandPacket.decode(raw)

    def test_length_field_mismatch_rejected(self):
        # Claim one payload word but carry none.
        packet = make_packet(data=(5,))
        raw = bytearray(packet.encode())
        del raw[12:16]  # drop the data word; lengths now lie
        with pytest.raises(CommandError):
            CommandPacket.decode(bytes(raw))


class TestValidation:
    def test_field_width_limits(self):
        with pytest.raises(CommandError):
            make_packet(src_id=256)
        with pytest.raises(CommandError):
            make_packet(command_code=1 << 16)
        with pytest.raises(CommandError):
            make_packet(options=1 << 32)

    def test_payload_limit_is_255_words(self):
        make_packet(data=tuple(range(255)))  # fits
        with pytest.raises(CommandError, match="PayloadLen"):
            make_packet(data=tuple(range(256)))

    def test_data_words_must_be_32_bit(self):
        with pytest.raises(CommandError):
            make_packet(data=(1 << 32,))

    def test_version_is_four_bits(self):
        with pytest.raises(CommandError):
            make_packet(version=16)


class TestResponse:
    def test_response_swaps_direction_and_keeps_srcid_as_dst(self):
        request = make_packet(src_id=int(SrcId.STANDALONE_TOOL))
        response = request.response(data=(1,), status=0)
        assert response.dst_id == int(SrcId.STANDALONE_TOOL)
        assert response.src_id == 0x80
        assert response.command_code == request.command_code

    def test_response_carries_status_in_options(self):
        assert make_packet().response(status=3).options == 3


@given(
    src_id=st.integers(0, 255), dst_id=st.integers(0, 255),
    rbb_id=st.integers(0, 255), instance_id=st.integers(0, 255),
    command_code=st.integers(0, 0xFFFF), options=st.integers(0, 0xFFFF_FFFF),
    data=st.lists(st.integers(0, 0xFFFF_FFFF), max_size=32).map(tuple),
)
def test_encode_decode_roundtrip_property(src_id, dst_id, rbb_id, instance_id,
                                          command_code, options, data):
    packet = CommandPacket(src_id=src_id, dst_id=dst_id, rbb_id=rbb_id,
                           instance_id=instance_id, command_code=command_code,
                           options=options, data=data)
    assert CommandPacket.decode(packet.encode()) == packet


@given(data=st.lists(st.integers(0, 0xFFFF_FFFF), max_size=16).map(tuple),
       flip_bit=st.integers(0, 7), flip_byte_fraction=st.floats(0.0, 0.999))
def test_any_single_bit_flip_is_detected(data, flip_bit, flip_byte_fraction):
    raw = bytearray(make_packet(data=data).encode())
    position = int(flip_byte_fraction * len(raw))
    raw[position] ^= 1 << flip_bit
    with pytest.raises((ChecksumError, CommandError)):
        CommandPacket.decode(bytes(raw))
