"""Tests for the event-driven command-path timing model."""

import pytest

from repro.core.command.packet import CommandPacket
from repro.core.command.timing import (
    CYCLES_PER_REGISTER_ACCESS,
    CommandPathSimulator,
    PARSE_CYCLES,
    PCIE_ONE_WAY_PS,
    TimedCommand,
    burst_latency_profile,
)
from repro.errors import ConfigurationError

_PACKET = CommandPacket(src_id=1, dst_id=1, rbb_id=1, instance_id=0, command_code=0)


class TestSingleCommand:
    def test_idle_round_trip_is_microsecond_scale(self):
        rtt_us = CommandPathSimulator().round_trip_us(register_accesses=4)
        # Two PCIe hops (0.9 us) + 88 soft-core cycles (0.44 us).
        assert rtt_us == pytest.approx(1.34, abs=0.05)

    def test_rtt_grows_with_register_accesses(self):
        path = CommandPathSimulator()
        small = path.round_trip_us(register_accesses=1)
        large = path.round_trip_us(register_accesses=100)
        expected_delta = (
            (100 - 1) * CYCLES_PER_REGISTER_ACCESS
            * path.core_clock.period_ps / 1e6
        )
        assert large - small == pytest.approx(expected_delta, rel=0.01)

    def test_execution_time_formula(self):
        path = CommandPathSimulator()
        command = TimedCommand(packet=_PACKET, register_accesses=10)
        expected_cycles = PARSE_CYCLES + 10 * CYCLES_PER_REGISTER_ACCESS
        assert path.execution_time_ps(command) == path.core_clock.cycles_to_ps(
            expected_cycles
        )

    def test_completion_records_latency(self):
        path = CommandPathSimulator()
        command = TimedCommand(packet=_PACKET, register_accesses=2)
        path.issue(command, at_ps=0)
        path.run()
        assert command.completed_ps is not None
        assert command.completed_ps > 2 * PCIE_ONE_WAY_PS


class TestBurstBehaviour:
    def test_sequential_core_serialises_a_burst(self):
        profile = burst_latency_profile(burst_size=16)
        assert profile["completed"] == 16
        # The last command waits behind 15 executions.
        assert profile["max_us"] > profile["min_us"] * 2

    def test_mean_latency_grows_with_burst_size(self):
        small = burst_latency_profile(burst_size=2)["mean_us"]
        large = burst_latency_profile(burst_size=32)["mean_us"]
        assert large > 3 * small

    def test_min_latency_is_the_idle_rtt(self):
        profile = burst_latency_profile(burst_size=8, register_accesses=4)
        idle = CommandPathSimulator().round_trip_us(register_accesses=4)
        assert profile["min_us"] == pytest.approx(idle, rel=0.01)

    def test_buffer_overflow_is_loud(self):
        path = CommandPathSimulator(buffer_depth=2)
        for _ in range(8):
            path.issue(TimedCommand(packet=_PACKET, register_accesses=200), at_ps=0)
        with pytest.raises(ConfigurationError, match="overflow"):
            path.run()

    def test_control_path_isolated_from_data_load(self):
        """The separate-queue property: command RTT is identical whether
        the (modelled) data path is idle or saturated, because data
        traffic never enters the control queue."""
        idle_rtt = CommandPathSimulator().round_trip_us()
        # "Load" the data path: irrelevant by construction -- nothing to
        # inject into the control path. The assertion documents the
        # architectural invariant rather than a coincidence.
        loaded_rtt = CommandPathSimulator().round_trip_us()
        assert loaded_rtt == idle_rtt
