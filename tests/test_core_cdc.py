"""Tests for the parameterised clock-domain crossing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rbb.cdc import (
    CdcEndpoint,
    ParamClockDomainCrossing,
    matching_user_width,
)
from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage, run_packet_sweep


def make_cdc(src_mhz=322.265625, src_bits=512, dst_mhz=250.0, dst_bits=1_024):
    return ParamClockDomainCrossing(
        "cdc",
        CdcEndpoint(ClockDomain("src", src_mhz), src_bits),
        CdcEndpoint(ClockDomain("dst", dst_mhz), dst_bits),
    )


class TestLosslessRule:
    def test_paper_rule_s_m_equals_r_u(self):
        # 500 MHz x 512 b == 250 MHz x 1024 b.
        assert make_cdc(500.0, 512, 250.0, 1_024).is_lossless

    def test_faster_destination_also_lossless(self):
        assert make_cdc(250.0, 512, 500.0, 512).is_lossless

    def test_slower_destination_lossy(self):
        cdc = make_cdc(500.0, 512, 250.0, 512)
        assert not cdc.is_lossless
        with pytest.raises(ConfigurationError, match="loses bandwidth"):
            cdc.require_lossless()

    def test_width_ratio(self):
        assert make_cdc(dst_bits=1_024, src_bits=512).width_ratio == 2.0

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            ParamClockDomainCrossing(
                "bad",
                CdcEndpoint(ClockDomain("s", 100.0), 0),
                CdcEndpoint(ClockDomain("d", 100.0), 512),
            )

    @given(src_mhz=st.floats(50.0, 1_000.0), src_bits=st.sampled_from([128, 512, 2_048]),
           dst_mhz=st.floats(50.0, 1_000.0))
    def test_matching_user_width_always_lossless(self, src_mhz, src_bits, dst_mhz):
        width = matching_user_width(src_mhz, src_bits, dst_mhz)
        cdc = ParamClockDomainCrossing(
            "c",
            CdcEndpoint(ClockDomain("s", src_mhz), src_bits),
            CdcEndpoint(ClockDomain("d", dst_mhz), width),
        )
        assert cdc.is_lossless
        # And it is minimal among powers of two.
        if width > 1:
            assert dst_mhz * (width // 2) < src_mhz * src_bits * 1.0000001


class TestTiming:
    def test_latency_counts_destination_cycles(self):
        cdc = make_cdc(dst_mhz=100.0)
        # 2 sync stages + 1 output register at 10 ns.
        assert cdc.added_latency_ps == 30_000

    def test_stage_runs_at_destination(self):
        cdc = make_cdc(dst_mhz=250.0, dst_bits=1_024)
        stage = cdc.stage()
        assert stage.clock.freq_mhz == 250.0
        assert stage.data_width_bits == 1_024

    def test_lossless_crossing_preserves_chain_throughput(self):
        source = PipelineStage("src", ClockDomain("s", 322.265625), 512, latency_cycles=4)
        cdc = make_cdc()
        base = PipelineChain("base", [source])
        crossed = PipelineChain("crossed", [source, cdc.stage()])
        base_tpt, _ = run_packet_sweep(base, 1_024, 500)
        crossed_tpt, _ = run_packet_sweep(crossed, 1_024, 500)
        assert crossed_tpt == pytest.approx(base_tpt, rel=0.02)

    def test_lossy_crossing_becomes_bottleneck(self):
        source = PipelineStage("src", ClockDomain("s", 500.0), 512, latency_cycles=4)
        cdc = make_cdc(500.0, 512, 125.0, 512)
        chain = PipelineChain("lossy", [source, cdc.stage()])
        assert chain.bandwidth_bps() == pytest.approx(125e6 * 512)
