"""Tests for the Host RBB: multi-queue isolation and scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.host import (
    DEFAULT_QUEUE_COUNT,
    DmaDescriptor,
    HostRbb,
    MultiQueueScheduler,
)
from repro.errors import ConfigurationError
from repro.platform.device import PcieGeneration
from repro.platform.vendor import Vendor


class TestMultiQueueScheduler:
    def test_default_provides_1k_queues(self):
        # The paper's Ex-function provides 1K DMA queues.
        assert MultiQueueScheduler().queue_count == 1_024 == DEFAULT_QUEUE_COUNT

    def test_fifo_within_queue(self):
        scheduler = MultiQueueScheduler(tenants=1)
        scheduler.submit(DmaDescriptor(queue_id=3, size_bytes=1))
        scheduler.submit(DmaDescriptor(queue_id=3, size_bytes=2))
        assert scheduler.schedule().size_bytes == 1
        assert scheduler.schedule().size_bytes == 2

    def test_round_robin_across_queues(self):
        scheduler = MultiQueueScheduler(tenants=1)
        for queue in (0, 1):
            for size in (queue * 10 + 1, queue * 10 + 2):
                scheduler.submit(DmaDescriptor(queue_id=queue, size_bytes=size))
        order = [scheduler.schedule().size_bytes for _ in range(4)]
        assert order == [1, 11, 2, 12]

    def test_only_active_queues_visited(self):
        # The paper's scheduling-rate claim: cost scales with *active*
        # queues, not the 1K total.
        scheduler = MultiQueueScheduler(tenants=1)
        for _ in range(5):
            scheduler.submit(DmaDescriptor(queue_id=7, size_bytes=64))
        scheduler.drain()
        assert scheduler.queue_visits <= 6  # never sweeps all 1024 queues

    def test_cross_tenant_submission_rejected(self):
        scheduler = MultiQueueScheduler(queue_count=64, tenants=4)
        foreign_queue = scheduler.queues_of_tenant(2)[0]
        with pytest.raises(ConfigurationError, match="may not use"):
            scheduler.submit(
                DmaDescriptor(queue_id=foreign_queue, size_bytes=64, tenant_id=0)
            )

    def test_schedule_empty_returns_none(self):
        assert MultiQueueScheduler().schedule() is None

    def test_active_count_tracks_nonempty_queues(self):
        scheduler = MultiQueueScheduler(tenants=1)
        scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=64))
        scheduler.submit(DmaDescriptor(queue_id=1, size_bytes=64))
        assert scheduler.active_queue_count == 2
        scheduler.drain()
        assert scheduler.active_queue_count == 0

    def test_depth(self):
        scheduler = MultiQueueScheduler(tenants=1)
        scheduler.submit(DmaDescriptor(queue_id=5, size_bytes=64))
        assert scheduler.depth(5) == 1

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            MultiQueueScheduler(queue_count=2, tenants=4)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 4)), max_size=40))
    def test_drain_returns_everything_exactly_once(self, submissions):
        scheduler = MultiQueueScheduler(queue_count=16, tenants=4)
        expected = 0
        for tenant, burst in submissions:
            queue = scheduler.queues_of_tenant(tenant)[0]
            for _ in range(burst):
                scheduler.submit(
                    DmaDescriptor(queue_id=queue, size_bytes=64, tenant_id=tenant)
                )
                expected += 1
        assert len(scheduler.drain()) == expected
        assert scheduler.schedule() is None


class TestHostRbb:
    def test_instance_for_transfer_styles(self):
        rbb = HostRbb()
        assert rbb.instance_for_transfer(bulk=True, vendor=Vendor.XILINX) == "bdma-xilinx"
        assert rbb.instance_for_transfer(bulk=False, vendor=Vendor.XILINX) == "sgdma-xilinx"
        assert rbb.instance_for_transfer(bulk=False, vendor=Vendor.INTEL) == "sgdma-intel"

    def test_transfer_moves_all_descriptors(self):
        rbb = HostRbb(tenants=2)
        queue = rbb.scheduler.queues_of_tenant(1)[0]
        count, total = rbb.transfer(
            [DmaDescriptor(queue_id=queue, size_bytes=512, tenant_id=1)
             for _ in range(10)]
        )
        assert count == 10
        assert total == 5_120
        assert rbb.counters["transferred_bytes"] == 5_120

    def test_generation_sets_instance_clock(self):
        gen3 = HostRbb(generation=PcieGeneration.GEN3)
        gen4 = HostRbb(generation=PcieGeneration.GEN4)
        assert (gen4._instances["sgdma-xilinx"].clock.freq_mhz
                == 2 * gen3._instances["sgdma-xilinx"].clock.freq_mhz)

    def test_monitoring_gauges(self):
        rbb = HostRbb()
        rbb.transfer([DmaDescriptor(queue_id=0, size_bytes=64)])
        assert "active_queues" in rbb.gauges
