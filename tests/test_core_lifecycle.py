"""Tests for the four-stage application lifecycle and multi-tenancy."""

import pytest

from repro.core.lifecycle import (
    ApplicationProject,
    Lifecycle,
    PocEstimate,
    Stage,
)
from repro.core.multitenancy import (
    PartialReconfigManager,
    PrSlot,
    SlotState,
    even_slot_budgets,
)
from repro.core.role import Architecture, Role, RoleDemands
from repro.errors import ConfigurationError, DeploymentError, ResourceExhaustedError
from repro.metrics.resources import ResourceBudget, ResourceUsage
from repro.platform.catalog import DEVICE_A


def make_role(lut=40_000):
    return Role("app", Architecture.BUMP_IN_THE_WIRE,
                RoleDemands(network_gbps=100.0, host_gbps=16.0),
                resources=ResourceUsage(lut=lut, ff=lut))


def make_project(bottleneck=0.7, speedup=10.0, lut=40_000):
    return ApplicationProject(role=make_role(lut), device=DEVICE_A,
                              poc=PocEstimate(bottleneck, speedup))


class TestPocEstimate:
    def test_amdahl_speedup(self):
        poc = PocEstimate(bottleneck_fraction=0.5, offload_speedup=10.0)
        assert poc.end_to_end_speedup == pytest.approx(1 / 0.55)

    def test_full_offload(self):
        assert PocEstimate(1.0, 4.0).end_to_end_speedup == pytest.approx(4.0)

    def test_worthwhile_gate(self):
        assert PocEstimate(0.9, 10.0).is_worthwhile()
        assert not PocEstimate(0.1, 10.0).is_worthwhile()

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            PocEstimate(0.0, 2.0)
        with pytest.raises(ValueError):
            PocEstimate(0.5, 0.9)


class TestLifecycle:
    def test_full_pipeline(self):
        project = Lifecycle(DEVICE_A).run_all(make_project(), "cluster-1")
        assert project.deployed_cluster == "cluster-1"
        assert [record.stage for record in project.records] == list(Stage)
        assert all(record.passed for record in project.records)

    def test_weak_poc_stops_at_stage_one(self):
        project = make_project(bottleneck=0.1)
        with pytest.raises(DeploymentError, match="too small"):
            Lifecycle(DEVICE_A).run_all(project, "cluster-1")
        assert project.records[-1].stage is Stage.REQUIREMENT_ANALYSIS
        assert not project.records[-1].passed

    def test_oversized_role_fails_at_build(self):
        project = make_project(lut=900_000)
        lifecycle = Lifecycle(DEVICE_A)
        lifecycle.run_requirement_analysis(project)
        with pytest.raises(DeploymentError, match="does not fit"):
            lifecycle.run_design_development(project)

    def test_cannot_deploy_before_testing(self):
        project = make_project()
        lifecycle = Lifecycle(DEVICE_A)
        lifecycle.run_requirement_analysis(project)
        lifecycle.run_design_development(project)
        with pytest.raises(DeploymentError, match="before integration test"):
            lifecycle.run_deployment(project, "cluster-1")

    def test_design_stage_produces_bundle_and_shell(self):
        project = make_project()
        lifecycle = Lifecycle(DEVICE_A)
        lifecycle.run_requirement_analysis(project)
        lifecycle.run_design_development(project)
        assert project.bundle is not None
        assert project.tailored_shell is not None
        assert set(project.tailored_shell.rbbs) == {"network", "host"}


class TestPartialReconfig:
    def _manager(self, slots=2):
        return PartialReconfigManager(even_slot_budgets(DEVICE_A.budget, slots))

    def test_load_activates_slot(self):
        manager = self._manager()
        slot = manager.load("tenant-a", make_role())
        assert slot.state is SlotState.ACTIVE
        assert manager.tenants() == {slot.index: "tenant-a"}

    def test_unload_frees_slot(self):
        manager = self._manager()
        slot = manager.load("tenant-a", make_role())
        manager.unload(slot.index)
        assert slot.state is SlotState.EMPTY
        assert manager.active_count() == 0

    def test_slot_reuse_counts_reconfigurations(self):
        manager = self._manager()
        slot = manager.load("a", make_role())
        manager.unload(slot.index)
        manager.load("b", make_role(), slot_index=slot.index)
        assert slot.reconfigurations == 2

    def test_role_too_big_for_slot_rejected(self):
        manager = self._manager(slots=4)
        with pytest.raises(ResourceExhaustedError):
            manager.load("t", make_role(lut=800_000))

    def test_occupied_slot_rejected(self):
        manager = self._manager()
        slot = manager.load("a", make_role())
        with pytest.raises(ConfigurationError, match="not empty"):
            manager.load("b", make_role(), slot_index=slot.index)

    def test_unload_empty_slot_rejected(self):
        with pytest.raises(ConfigurationError, match="no active tenant"):
            self._manager().unload(0)

    def test_slots_fill_in_order(self):
        manager = self._manager(slots=3)
        indices = [manager.load(f"t{i}", make_role()).index for i in range(3)]
        assert indices == [0, 1, 2]

    def test_even_budgets_respect_role_fraction(self):
        budgets = even_slot_budgets(DEVICE_A.budget, 4, role_fraction=0.6)
        assert len(budgets) == 4
        assert budgets[0].lut == int(DEVICE_A.budget.lut * 0.15)

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            even_slot_budgets(DEVICE_A.budget, 0)
        with pytest.raises(ConfigurationError):
            even_slot_budgets(DEVICE_A.budget, 2, role_fraction=1.5)
        with pytest.raises(ConfigurationError):
            PartialReconfigManager([])
