"""Tests for the Memory RBB: interleaving, hot cache, bank timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.memory import (
    AddressInterleaver,
    HotCache,
    MemoryAccess,
    MemoryRbb,
)
from repro.errors import ConfigurationError
from repro.hw.ip.ddr import DDR4_2400
from repro.platform.vendor import Vendor


def sequential_accesses(count, stride=64):
    return [MemoryAccess(address=index * stride) for index in range(count)]


def random_accesses(count, seed=3):
    import random

    rng = random.Random(seed)
    return [MemoryAccess(address=rng.randrange(0, 1 << 30, 64)) for _ in range(count)]


class TestAddressInterleaver:
    def test_interleaving_spreads_consecutive_rows(self):
        interleaver = AddressInterleaver(DDR4_2400, channels=1, enabled=True)
        groups = {interleaver.map(row * DDR4_2400.row_bytes)[1] for row in range(16)}
        assert len(groups) == DDR4_2400.bank_groups

    def test_no_interleaving_piles_into_one_group(self):
        interleaver = AddressInterleaver(DDR4_2400, channels=1, enabled=False)
        groups = {interleaver.map(row * DDR4_2400.row_bytes)[1] for row in range(16)}
        assert len(groups) == 1

    def test_mapping_deterministic(self):
        interleaver = AddressInterleaver(DDR4_2400, channels=4)
        assert interleaver.map(0x1234_0000) == interleaver.map(0x1234_0000)

    @given(address=st.integers(0, 1 << 34))
    def test_mapping_within_geometry(self, address):
        interleaver = AddressInterleaver(DDR4_2400, channels=32)
        channel, group, bank, row = interleaver.map(address)
        assert 0 <= channel < 32
        assert 0 <= group < DDR4_2400.bank_groups
        assert 0 <= bank < DDR4_2400.banks_per_group
        assert row >= 0


class TestHotCache:
    def test_second_read_hits(self):
        cache = HotCache(lines=64)
        assert cache.lookup(0x1000, is_write=False) is False
        assert cache.lookup(0x1000, is_write=False) is True

    def test_write_allocates_but_does_not_hit(self):
        cache = HotCache(lines=64)
        cache.lookup(0x1000, is_write=True)
        assert cache.lookup(0x1000, is_write=True) is False
        assert cache.lookup(0x1000, is_write=False) is True

    def test_conflicting_lines_evict(self):
        cache = HotCache(lines=4, line_bytes=64)
        cache.lookup(0, is_write=False)
        cache.lookup(4 * 64, is_write=False)  # same index, different tag
        assert cache.lookup(0, is_write=False) is False

    def test_disabled_cache_never_hits(self):
        cache = HotCache(enabled=False)
        cache.lookup(0, False)
        assert cache.lookup(0, False) is False

    def test_flush(self):
        cache = HotCache()
        cache.lookup(0, False)
        cache.flush()
        assert cache.lookup(0, False) is False

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            HotCache(lines=0)


class TestMemoryRbb:
    def test_channel_count_follows_instance(self):
        rbb = MemoryRbb()
        assert rbb.channel_count == 1
        rbb.select_instance("hbm-xilinx")
        assert rbb.channel_count == 32

    def test_instance_for_bandwidth(self):
        rbb = MemoryRbb()
        assert rbb.instance_for_bandwidth(19.0, Vendor.XILINX) == "ddr4-xilinx"
        assert rbb.instance_for_bandwidth(200.0, Vendor.XILINX) == "hbm-xilinx"
        assert rbb.instance_for_bandwidth(19.0, Vendor.INTEL) == "ddr4-intel"

    def test_unsatisfiable_bandwidth_raises(self):
        with pytest.raises(ConfigurationError):
            MemoryRbb().instance_for_bandwidth(10_000.0, Vendor.INTEL)

    def test_sequential_beats_random(self):
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = False
        seq = rbb.run_accesses(sequential_accesses(2_000))
        rnd = MemoryRbb().run_accesses(random_accesses(2_000))
        assert seq.bandwidth_gbps > 1.5 * rnd.bandwidth_gbps

    def test_sequential_mostly_row_hits(self):
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = False
        result = rbb.run_accesses(sequential_accesses(1_000))
        assert result.row_hits > 0.8 * (result.row_hits + result.row_misses)

    def test_random_mostly_row_misses(self):
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = False
        result = rbb.run_accesses(random_accesses(1_000))
        assert result.row_misses > 0.8 * (result.row_hits + result.row_misses)

    def test_hot_cache_accelerates_reuse(self):
        pattern = [MemoryAccess(address=(index % 8) * 64) for index in range(1_000)]
        cached = MemoryRbb()
        cached.ex_functions["hot_cache"].enabled = True
        uncached = MemoryRbb()
        uncached.ex_functions["hot_cache"].enabled = False
        fast = cached.run_accesses(list(pattern))
        slow = uncached.run_accesses(list(pattern))
        assert fast.cache_hits > 900
        assert fast.total_ps < slow.total_ps

    def test_interleaving_helps_strided_traffic(self):
        # Row-granular strides hammer one bank group without interleaving.
        stride = DDR4_2400.row_bytes
        pattern = [MemoryAccess(address=index * stride) for index in range(2_000)]
        on = MemoryRbb()
        on.ex_functions["hot_cache"].enabled = False
        on.interleaver.enabled = True
        off = MemoryRbb()
        off.ex_functions["hot_cache"].enabled = False
        off.ex_functions["address_interleaving"].enabled = False
        fast = on.run_accesses(list(pattern))
        slow = off.run_accesses(list(pattern))
        assert fast.total_ps < slow.total_ps

    def test_hbm_channels_parallelise_random_traffic(self):
        ddr = MemoryRbb()
        ddr.ex_functions["hot_cache"].enabled = False
        hbm = MemoryRbb()
        hbm.select_instance("hbm-xilinx")
        hbm.ex_functions["hot_cache"].enabled = False
        ddr_result = ddr.run_accesses(random_accesses(2_000))
        hbm_result = hbm.run_accesses(random_accesses(2_000))
        assert hbm_result.bandwidth_gbps > 2 * ddr_result.bandwidth_gbps

    def test_counters_updated(self):
        rbb = MemoryRbb()
        rbb.run_accesses([MemoryAccess(address=0, is_write=True),
                          MemoryAccess(address=64)])
        assert rbb.counters["writes"] == 1
        assert rbb.counters["reads"] == 1

    def test_accesses_per_second_positive(self):
        result = MemoryRbb().run_accesses(sequential_accesses(100))
        assert result.accesses_per_second() > 0
