"""Tests for the Network RBB: packet filter, flow director, monitoring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.network import FlowDirector, NetworkRbb, PacketFilter
from repro.errors import ConfigurationError, TailoringError
from repro.platform.catalog import DEVICE_A, DEVICE_C
from repro.platform.vendor import Vendor
from repro.workloads.packets import FiveTuple, Packet, PacketGenerator

LOCAL_MAC = 0x02_AA_BB_CC_DD_EE
MULTICAST_MAC = (1 << 40) | 0x5E_00_00_00_01
FOREIGN_MAC = 0x02_DE_AD_BE_EF_00


def make_packet(dst_mac=LOCAL_MAC, tenant=0, flow_seed=0):
    return Packet(flow=PacketGenerator().flow(flow_seed), size_bytes=256,
                  dst_mac=dst_mac, tenant_id=tenant)


class TestPacketFilter:
    def test_local_unicast_passes(self):
        assert PacketFilter([LOCAL_MAC]).admit(make_packet()) is True

    def test_foreign_unicast_intercepted(self):
        pfilter = PacketFilter([LOCAL_MAC])
        assert pfilter.admit(make_packet(FOREIGN_MAC)) is False
        assert pfilter.intercepted == 1

    def test_multicast_needs_group_membership(self):
        pfilter = PacketFilter([LOCAL_MAC])
        assert pfilter.admit(make_packet(MULTICAST_MAC)) is False
        pfilter.join_group(MULTICAST_MAC)
        assert pfilter.admit(make_packet(MULTICAST_MAC)) is True

    def test_leave_group_reinstates_filtering(self):
        pfilter = PacketFilter([LOCAL_MAC])
        pfilter.join_group(MULTICAST_MAC)
        pfilter.leave_group(MULTICAST_MAC)
        assert pfilter.admit(make_packet(MULTICAST_MAC)) is False

    def test_needs_at_least_one_local_mac(self):
        with pytest.raises(ConfigurationError):
            PacketFilter([])


class TestFlowDirector:
    def test_same_flow_same_queue(self):
        director = FlowDirector()
        packet = make_packet()
        assert director.direct(packet) == director.direct(packet)

    def test_queue_stays_in_tenant_range(self):
        director = FlowDirector(total_queues=64, tenants=4)
        for seed in range(50):
            for tenant in range(4):
                packet = make_packet(tenant=tenant, flow_seed=seed)
                start, end = director.queue_range(tenant)
                assert start <= director.direct(packet) < end

    def test_tenant_ranges_disjoint(self):
        director = FlowDirector(total_queues=64, tenants=4)
        ranges = [director.queue_range(t) for t in range(4)]
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2

    def test_invalid_tenant_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowDirector(tenants=2).queue_range(5)

    def test_needs_queue_per_tenant(self):
        with pytest.raises(ConfigurationError):
            FlowDirector(total_queues=2, tenants=4)

    @settings(max_examples=50)
    @given(seed=st.integers(0, 10_000), tenant=st.integers(0, 7))
    def test_isolation_property(self, seed, tenant):
        director = FlowDirector(total_queues=1_024, tenants=8)
        packet = make_packet(tenant=tenant, flow_seed=seed)
        start, end = director.queue_range(tenant)
        assert start <= director.direct(packet) < end


class TestNetworkRbb:
    def test_instance_catalog_spans_rates(self):
        rbb = NetworkRbb()
        rates = {rbb._instances[name].performance_gbps for name in rbb.instance_names}
        assert {25.0, 100.0, 200.0, 400.0} <= rates

    def test_instance_for_rate_picks_cheapest_sufficient(self):
        rbb = NetworkRbb()
        assert rbb.instance_for_rate(25.0, Vendor.XILINX) == "25g-xilinx"
        assert rbb.instance_for_rate(100.0, Vendor.XILINX) == "100g-xilinx"
        assert rbb.instance_for_rate(100.0, Vendor.INTEL) == "100g-intel"

    def test_instance_for_rate_respects_device_cages(self):
        rbb = NetworkRbb()
        # Device C has DSFP cages: only the high-rate MACs fit, and the
        # 200G tier is the cheapest sufficient one.
        assert rbb.instance_for_rate(100.0, Vendor.INTEL, DEVICE_C) == "200g-inhouse"
        assert rbb.instance_for_rate(400.0, Vendor.INTEL, DEVICE_C) == "400g-inhouse"
        assert rbb.instance_for_rate(100.0, Vendor.XILINX, DEVICE_A) == "100g-xilinx"

    def test_unsatisfiable_rate_raises(self):
        with pytest.raises(ConfigurationError):
            NetworkRbb().instance_for_rate(800.0, Vendor.XILINX)

    def test_unknown_instance_rejected(self):
        with pytest.raises(TailoringError, match="available"):
            NetworkRbb().select_instance("bogus")

    def test_process_packets_filters_and_steers(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC], tenants=2)
        packets = PacketGenerator().uniform_stream(
            200, 256, foreign_fraction=0.3, tenant_count=2
        )
        admitted = rbb.process_packets(packets)
        assert 0 < len(admitted) < len(packets)
        assert rbb.counters["filtered_packets"] == len(packets) - len(admitted)
        assert rbb.counters["rx_packets"] == len(packets)

    def test_disabled_filter_admits_everything(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC])
        rbb.disable_ex_function("packet_filter")
        packets = PacketGenerator().uniform_stream(100, 256, foreign_fraction=0.5)
        assert len(rbb.process_packets(packets)) == 100

    def test_disabled_director_sends_all_to_queue_zero(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC])
        rbb.disable_ex_function("flow_director")
        admitted = rbb.process_packets(PacketGenerator().uniform_stream(50, 256))
        assert all(queue == 0 for _, queue in admitted)

    def test_monitoring_snapshot(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC])
        rbb.process_packets(PacketGenerator().uniform_stream(10, 512))
        snapshot = rbb.monitor_snapshot()
        assert snapshot.counters["rx_bytes"] == 10 * 512
        assert 0 < snapshot.gauges["queue_usage"] <= 1.0

    def test_role_properties_shrink_when_exfns_disabled(self):
        rbb = NetworkRbb()
        full = len(rbb.role_properties())
        rbb.disable_ex_function("packet_filter")
        assert len(rbb.role_properties()) < full

    def test_reg_interface_is_32_bit(self):
        assert NetworkRbb.reg_width_bits == 32

    def test_datapath_includes_exfn_stage_only_when_enabled(self):
        rbb = NetworkRbb()
        with_exfn = len(rbb.datapath_chain())
        rbb.disable_ex_function("packet_filter")
        rbb.disable_ex_function("flow_director")
        assert len(rbb.datapath_chain()) == with_exfn - 1


class TestIngressSimulation:
    """The DES-backed ingress path behind the loss/queue monitors."""

    def test_steady_line_rate_traffic_is_lossless(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC])
        packets = PacketGenerator().uniform_stream(400, 512, line_rate_gbps=100.0)
        result = rbb.simulate_ingress(packets)
        assert result.dropped == 0
        assert rbb.counters.get("rx_dropped", 0) == 0
        assert rbb.gauges["ingress_loss_fraction"] == 0.0

    def test_burst_into_shallow_fifo_records_loss(self):
        rbb = NetworkRbb(local_macs=[LOCAL_MAC])
        packets = PacketGenerator().uniform_stream(300, 1_024, line_rate_gbps=100.0)
        for packet in packets:
            packet.arrival_ps = 0   # one giant burst
        result = rbb.simulate_ingress(packets, fifo_depth=16)
        assert result.dropped > 0
        assert rbb.counters["rx_dropped"] == result.dropped
        assert rbb.gauges["ingress_loss_fraction"] > 0.0

    def test_occupancy_gauge_reflects_pressure(self):
        relaxed = NetworkRbb(local_macs=[LOCAL_MAC])
        packets = PacketGenerator().uniform_stream(200, 512, line_rate_gbps=25.0)
        relaxed.simulate_ingress(packets)
        bursty = NetworkRbb(local_macs=[LOCAL_MAC])
        burst = PacketGenerator().uniform_stream(200, 512, line_rate_gbps=100.0)
        for packet in burst:
            packet.arrival_ps = 0
        bursty.simulate_ingress(burst)
        assert (bursty.gauges["ingress_peak_occupancy"]
                > relaxed.gauges["ingress_peak_occupancy"])
