"""Tests for the unified shell abstraction and the RBB base class."""

import pytest

from repro.core.rbb.base import ExFunction, Rbb
from repro.core.rbb.network import NetworkRbb
from repro.core.shell import (
    SHELL_INFRASTRUCTURE,
    UnifiedShell,
    build_unified_shell,
)
from repro.errors import ConfigurationError, TailoringError
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D


class TestRbbBase:
    def test_needs_at_least_one_instance(self):
        with pytest.raises(ConfigurationError):
            Rbb("empty", {}, "none")

    def test_default_instance_must_exist(self):
        from repro.hw.ip.misc import sensor_block

        with pytest.raises(ConfigurationError):
            Rbb("r", {"a": sensor_block()}, "b")

    def test_wrapped_cache_invalidated_on_reselect(self):
        rbb = NetworkRbb()
        first = rbb.wrapped
        rbb.select_instance("100g-intel")
        assert rbb.wrapped is not first
        assert rbb.wrapped.ip is rbb.instance

    def test_duplicate_ex_function_rejected(self):
        rbb = NetworkRbb()
        with pytest.raises(ConfigurationError):
            rbb.add_ex_function(ExFunction("packet_filter", ResourceUsage()))

    def test_disable_unknown_ex_function_raises(self):
        with pytest.raises(TailoringError):
            NetworkRbb().disable_ex_function("bogus")

    def test_resources_shrink_when_exfn_disabled(self):
        rbb = NetworkRbb()
        full = rbb.resources()
        rbb.disable_ex_function("flow_director")
        assert rbb.resources().lut < full.lut

    def test_loc_combines_instance_and_reusable(self):
        rbb = NetworkRbb()
        assert rbb.loc().handcraft == (
            rbb.instance.loc.handcraft + rbb.reusable_loc.handcraft
        )

    def test_reset_monitoring(self):
        rbb = NetworkRbb()
        rbb._bump("rx_packets")
        rbb.reset_monitoring()
        assert rbb.counters == {}


class TestUnifiedShellConstruction:
    def test_device_a_gets_all_three_rbbs(self, unified_shell_a):
        assert set(unified_shell_a.rbbs) == {"network", "memory", "host"}

    def test_device_c_has_no_memory_rbb(self):
        shell = build_unified_shell(DEVICE_C)
        assert "memory" not in shell.rbbs
        assert shell.memory is None

    def test_instance_selection_follows_device(self):
        assert build_unified_shell(DEVICE_A).memory.selected_instance_name == "hbm-xilinx"
        assert build_unified_shell(DEVICE_D).memory.selected_instance_name == "ddr4-intel"
        assert build_unified_shell(DEVICE_C).network.selected_instance_name == "200g-inhouse"
        assert build_unified_shell(DEVICE_D).network.selected_instance_name == "100g-intel"

    def test_host_rbb_always_present(self):
        for device in (DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D):
            assert build_unified_shell(device).host is not None

    def test_management_blocks_follow_board_vendor(self):
        shell = build_unified_shell(DEVICE_B)
        assert all("inhouse" in ip.name for ip in shell.management)

    def test_unknown_rbb_lookup_raises(self, unified_shell_a):
        with pytest.raises(ConfigurationError):
            unified_shell_a.rbb("bogus")


class TestUnifiedShellAccounting:
    def test_resources_include_infrastructure(self, unified_shell_a):
        rbb_total = ResourceUsage.total(
            rbb.resources() for rbb in unified_shell_a.rbbs.values()
        )
        assert unified_shell_a.resources().lut >= rbb_total.lut + SHELL_INFRASTRUCTURE.lut

    def test_shell_fits_every_device(self):
        for device in (DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D):
            shell = build_unified_shell(device)
            device.budget.check_fits(shell.resources(), design="unified shell")

    def test_modules_lists_rbb_instances_and_management(self, unified_shell_a):
        names = [ip.name for ip in unified_shell_a.modules()]
        assert "xilinx-cmac-100g" in names
        assert any(name.startswith("softcore") for name in names)

    def test_wrapper_overhead_under_bound(self, unified_shell_a):
        # Figure 16: interface wrappers below 0.37% of the device.
        utilisation = DEVICE_A.budget.utilisation(unified_shell_a.wrapper_resources())
        assert max(utilisation.values()) < 0.0037

    def test_control_kernel_overhead_under_bound(self, unified_shell_a):
        # Figure 16: unified control kernel below 0.67% of the device.
        utilisation = DEVICE_A.budget.utilisation(
            unified_shell_a.control_kernel_resources()
        )
        assert max(utilisation.values()) < 0.0067

    def test_loc_positive(self, unified_shell_a):
        assert unified_shell_a.loc().handcraft > 10_000

    def test_native_config_items_sum_instances(self, unified_shell_a):
        expected = sum(
            rbb.instance.config_item_count for rbb in unified_shell_a.rbbs.values()
        )
        assert unified_shell_a.native_config_item_count() == expected


class TestMonitorPublication:
    """Data-plane counters reach the control plane's registers."""

    def test_network_counters_land_in_stat_registers(self):
        from repro.workloads.packets import PacketGenerator

        rbb = NetworkRbb()
        rbb.process_packets(PacketGenerator().uniform_stream(25, 512))
        regfile = rbb.register_file()
        updated = rbb.publish_monitors(regfile)
        assert updated >= 4
        assert regfile.read_by_name("STAT_RX_TOTAL_PACKETS") == 25
        assert regfile.read_by_name("STAT_RX_TOTAL_BYTES") == 25 * 512

    def test_status_read_command_returns_live_traffic(self):
        from repro.core.command.codes import CommandCode, RbbId
        from repro.core.command.driver import CommandDriver
        from repro.core.host_software import ControlPlane
        from repro.workloads.packets import PacketGenerator

        shell = build_unified_shell(DEVICE_A)
        network = shell.network
        network.process_packets(PacketGenerator().uniform_stream(40, 256))
        control = ControlPlane(shell)
        endpoint = control.kernel.endpoint(int(RbbId.NETWORK), 0)
        network.publish_monitors(endpoint.regfile)
        result = CommandDriver(control.kernel).cmd_read(
            CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK)
        )
        assert result.data[0] == 40

    def test_memory_counters_published(self):
        from repro.core.rbb.memory import MemoryAccess, MemoryRbb

        rbb = MemoryRbb()
        rbb.run_accesses([MemoryAccess(address=0), MemoryAccess(address=64, is_write=True)])
        regfile = rbb.register_file()
        rbb.publish_monitors(regfile)
        assert regfile.read_by_name("STAT_READS") == 1
        assert regfile.read_by_name("STAT_WRITES") == 1
