"""Tests for hierarchical shell tailoring (module + property level)."""

import pytest

from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.errors import TailoringError
from repro.metrics.resources import reduction_fraction
from repro.platform.catalog import DEVICE_A, DEVICE_C


def make_role(name="role", **demand_kwargs):
    return Role(name, Architecture.BUMP_IN_THE_WIRE, RoleDemands(**demand_kwargs))


def tailor(device, role):
    return HierarchicalTailor(build_unified_shell(device)).tailor(role)


class TestModuleLevel:
    def test_unneeded_rbbs_removed(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        assert set(shell.rbbs) == {"network", "host"}

    def test_look_aside_role_keeps_memory_and_host_only(self):
        shell = tailor(DEVICE_A, make_role(memory_bandwidth_gibps=100.0, host_gbps=32.0))
        assert set(shell.rbbs) == {"memory", "host"}

    def test_no_demands_rejected(self):
        with pytest.raises(TailoringError, match="no services"):
            tailor(DEVICE_A, make_role())

    def test_network_demand_on_networkless_device_would_fail(self):
        # Device C has network; craft a role demanding more than the cages.
        with pytest.raises(TailoringError, match="tops out"):
            tailor(DEVICE_A, make_role(network_gbps=500.0, host_gbps=1.0))

    def test_memory_demand_on_memoryless_device_fails(self):
        with pytest.raises(TailoringError, match="no"):
            tailor(DEVICE_C, make_role(memory_bandwidth_gibps=19.0, host_gbps=1.0))

    def test_instance_selected_by_performance(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=25.0, host_gbps=16.0))
        assert shell.rbbs["network"].selected_instance_name == "25g-xilinx"

    def test_dma_engine_follows_transfer_style(self):
        bulk = tailor(DEVICE_A, make_role(host_gbps=16.0, bulk_dma=True))
        discrete = tailor(DEVICE_A, make_role(host_gbps=16.0, bulk_dma=False))
        assert bulk.rbbs["host"].selected_instance_name == "bdma-xilinx"
        assert discrete.rbbs["host"].selected_instance_name == "sgdma-xilinx"

    def test_ex_functions_follow_feature_demands(self):
        plain = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        rich = tailor(DEVICE_A, make_role(
            network_gbps=100.0, host_gbps=16.0,
            needs_multicast=True, needs_flow_steering=True, tenants=4,
        ))
        assert not plain.rbbs["network"].ex_functions["packet_filter"].enabled
        assert rich.rbbs["network"].ex_functions["packet_filter"].enabled
        assert rich.rbbs["network"].ex_functions["flow_director"].enabled

    def test_tailoring_does_not_mutate_unified_shell(self):
        unified = build_unified_shell(DEVICE_A)
        before = unified.resources()
        HierarchicalTailor(unified).tailor(make_role(network_gbps=100.0, host_gbps=16.0))
        assert unified.resources() == before
        assert unified.network.ex_functions["packet_filter"].enabled

    def test_two_roles_get_independent_shells(self):
        unified = build_unified_shell(DEVICE_A)
        tailor_obj = HierarchicalTailor(unified)
        first = tailor_obj.tailor(make_role("a", network_gbps=100.0, host_gbps=16.0,
                                            needs_multicast=True))
        second = tailor_obj.tailor(make_role("b", network_gbps=100.0, host_gbps=16.0))
        assert first.rbbs["network"] is not second.rbbs["network"]
        assert first.rbbs["network"].ex_functions["packet_filter"].enabled
        assert not second.rbbs["network"].ex_functions["packet_filter"].enabled


class TestPropertyLevel:
    def test_role_sees_far_fewer_items_than_native(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        assert shell.role_config_item_count() < shell.native_config_item_count() / 5

    def test_hidden_properties_are_shell_oriented(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        total = (shell.role_config_item_count()
                 + len(shell.shell_oriented_properties))
        assert total >= shell.native_config_item_count()

    def test_simplification_factor_in_paper_band(self):
        # Figure 12: 8.8x-19.8x across the five applications.
        from repro.apps import all_applications

        factors = [
            app.tailored_shell(DEVICE_A).config_simplification_factor()
            for app in all_applications()
        ]
        assert min(factors) > 8.0
        assert max(factors) < 20.0

    def test_exposed_properties_are_namespaced(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        assert all("." in prop for prop in shell.role_oriented_properties)


class TestResourceReduction:
    def test_tailored_never_exceeds_unified(self):
        from repro.apps import all_applications

        unified = build_unified_shell(DEVICE_A).resources()
        for app in all_applications():
            tailored = app.tailored_shell(DEVICE_A).resources()
            assert tailored.lut <= unified.lut

    def test_reduction_in_paper_band(self):
        # Figure 11: 3%-25.1% resource reduction for the tailored shells.
        from repro.apps import all_applications

        unified = build_unified_shell(DEVICE_A).resources()
        for app in all_applications():
            if app.name == "board-test":
                continue  # Figure 11 covers the Fig-11 application set
            tailored = app.tailored_shell(DEVICE_A).resources()
            reduction = reduction_fraction(unified, tailored)["lut"]
            assert 0.03 <= reduction <= 0.27, (app.name, reduction)


class TestMemoisedTotals:
    def test_derived_totals_are_computed_once(self):
        shell = tailor(DEVICE_A, make_role(network_gbps=100.0, host_gbps=16.0))
        assert shell.resources() is shell.resources()
        assert shell.loc() is shell.loc()
        first = shell.native_config_item_count()
        assert shell.native_config_item_count() == first
        assert shell._native_config_memo == first

    def test_memo_matches_a_fresh_recomputation(self):
        role = make_role(network_gbps=100.0, host_gbps=16.0)
        warmed = tailor(DEVICE_A, role)
        warmed.resources(), warmed.loc()              # populate memos
        fresh = tailor(DEVICE_A, role)
        assert warmed.resources() == fresh.resources()
        assert warmed.loc().total == fresh.loc().total


class TestTailorSignature:
    def test_signature_is_canonically_serialisable(self):
        from repro.adapters.toolchain import canonical_json
        from repro.core.tailoring import tailor_signature

        role = make_role(network_gbps=100.0, host_gbps=16.0)
        payload = canonical_json(tailor_signature(DEVICE_A, role.demands))
        assert payload == canonical_json(
            tailor_signature(DEVICE_A, role.demands))

    def test_signature_ignores_the_device_name(self):
        import dataclasses

        from repro.core.tailoring import tailor_signature

        role = make_role(network_gbps=100.0, host_gbps=16.0)
        renamed = dataclasses.replace(DEVICE_A, name="device-a-rev9")
        assert tailor_signature(DEVICE_A, role.demands) == \
            tailor_signature(renamed, role.demands)

    def test_signature_varies_with_demands_and_hardware(self):
        from repro.core.tailoring import tailor_signature

        base = make_role(network_gbps=100.0, host_gbps=16.0)
        other = make_role(network_gbps=100.0, host_gbps=16.0, tenants=4)
        assert tailor_signature(DEVICE_A, base.demands) != \
            tailor_signature(DEVICE_A, other.demands)
        assert tailor_signature(DEVICE_A, base.demands) != \
            tailor_signature(DEVICE_C, base.demands)
