"""Tests for the event-driven (finite-buffer) pipeline.

The headline check: for admissible steady load, the DES agrees with the
analytic model of :mod:`repro.sim.pipeline` -- throughput at the
bottleneck, latency at the zero-load sum.  Then the DES-only behaviours:
loss under burst, backpressure holding packets upstream, occupancy.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import SimContext
from repro.sim.clock import ClockDomain
from repro.sim.des_pipeline import DesPacket, DesPipeline, packet_train
from repro.sim.pipeline import PipelineChain, PipelineStage


def make_stage(name="s", freq=250.0, width=512, latency=4, ii=1):
    return PipelineStage(name, ClockDomain(name, freq), width,
                         latency_cycles=latency, initiation_interval=ii)


def steady_train(count=400, size=512, load=0.9, stage=None):
    stage = stage or make_stage()
    service_ps = stage.clock.cycles_to_ps(stage.beats(size))
    gap_ps = int(service_ps / load)
    return packet_train(count, size, gap_ps)


class TestAgreementWithAnalyticModel:
    def test_throughput_matches_bottleneck_at_saturation(self):
        stages = [make_stage("fast", freq=500.0), make_stage("slow", freq=125.0)]
        chain = PipelineChain("c", [make_stage("fast", freq=500.0),
                                    make_stage("slow", freq=125.0)])
        slow_service = stages[1].clock.cycles_to_ps(stages[1].beats(512))
        train = packet_train(500, 512, gap_ps=slow_service)
        result = DesPipeline(stages, fifo_depth=64).run(train)
        assert result.loss_fraction == 0.0
        assert result.throughput_bps == pytest.approx(chain.bandwidth_bps(512),
                                                      rel=0.03)

    def test_zero_load_latency_matches_analytic_sum(self):
        stages = [make_stage("a", freq=100.0, latency=3),
                  make_stage("b", freq=200.0, latency=5)]
        chain = PipelineChain("c", [make_stage("a", freq=100.0, latency=3),
                                    make_stage("b", freq=200.0, latency=5)])
        single = [DesPacket(size_bytes=512, created_ps=0)]
        result = DesPipeline(stages).run(single)
        analytic = chain.zero_load_latency_ps(512)
        # The DES charges full service before hand-off (store-and-forward
        # per stage), so it sits at or above the cut-through analytic
        # bound but within one transaction's beats.
        beats_ps = stages[0].clock.cycles_to_ps(stages[0].beats(512))
        assert analytic <= result.latency.mean_ps <= analytic + 2 * beats_ps

    def test_admissible_load_is_lossless(self):
        stages = [make_stage()]
        result = DesPipeline(stages, fifo_depth=4).run(steady_train(load=0.8))
        assert result.dropped == 0
        assert result.delivered == 400


class TestFiniteBufferEffects:
    def test_burst_overflows_shallow_ingress(self):
        stage = make_stage(freq=50.0)   # slow service
        burst = packet_train(64, 512, gap_ps=1, burst=64)   # all at once
        result = DesPipeline([stage], fifo_depth=8).run(burst)
        assert result.dropped > 0
        assert result.delivered + result.dropped == 64

    def test_deeper_buffer_absorbs_the_same_burst(self):
        stage = make_stage(freq=50.0)
        burst = packet_train(64, 512, gap_ps=1, burst=64)
        result = DesPipeline([stage], fifo_depth=64).run(burst)
        assert result.dropped == 0

    def test_backpressure_holds_packets_upstream(self):
        # Fast front stage into a much slower back stage: the front
        # must not run ahead further than the inter-stage buffer.
        stages = [make_stage("fast", freq=500.0), make_stage("slow", freq=25.0)]
        train = packet_train(60, 512, gap_ps=1, burst=60)
        pipeline = DesPipeline(stages, fifo_depth=4)
        result = pipeline.run(train)
        assert result.peak_occupancies[1] <= 4
        assert result.delivered + result.dropped == 60

    def test_occupancy_grows_with_load(self):
        stage_low = [make_stage()]
        stage_high = [make_stage()]
        low = DesPipeline(stage_low, fifo_depth=32).run(steady_train(load=0.5))
        high = DesPipeline(stage_high, fifo_depth=32).run(
            packet_train(400, 512, gap_ps=1, burst=8)
        )
        assert high.peak_occupancies[0] > low.peak_occupancies[0]

    def test_latency_rises_under_congestion(self):
        relaxed = DesPipeline([make_stage()], fifo_depth=64).run(
            steady_train(load=0.5))
        congested = DesPipeline([make_stage()], fifo_depth=64).run(
            packet_train(400, 512, gap_ps=1, burst=16))
        assert congested.latency.mean_ps > relaxed.latency.mean_ps


class TestPacketTrain:
    def test_default_burst_spaces_every_packet(self):
        train = packet_train(4, 512, gap_ps=100)
        assert [p.created_ps for p in train] == [0, 100, 200, 300]

    def test_burst_groups_share_a_slot(self):
        train = packet_train(6, 512, gap_ps=100, burst=3)
        assert [p.created_ps for p in train] == [0, 0, 0, 100, 100, 100]

    def test_count_not_a_multiple_of_burst_leaves_a_short_tail(self):
        train = packet_train(5, 512, gap_ps=100, burst=2)
        assert [p.created_ps for p in train] == [0, 0, 100, 100, 200]

    def test_burst_of_count_arrives_all_at_once(self):
        train = packet_train(8, 512, gap_ps=1_000, burst=8)
        assert {p.created_ps for p in train} == {0}

    def test_empty_train(self):
        assert packet_train(0, 512, gap_ps=100) == []


class TestSharedContextRerun:
    def test_rerun_on_shared_context_does_not_mutate_source(self):
        # The rebase onto the advanced clock must work on copies: the
        # caller's train is reusable, with its timestamps untouched.
        context = SimContext(name="shared")
        train = packet_train(20, 512, gap_ps=10_000)
        original_times = [p.created_ps for p in train]
        pipeline = DesPipeline([make_stage()], fifo_depth=32, context=context)
        first = pipeline.run(train)
        assert context.simulator.now_ps > 0
        second = pipeline.run(train)
        assert [p.created_ps for p in train] == original_times
        # Pipeline counters are cumulative; each run delivers the full train.
        assert first.delivered == 20
        assert second.delivered - first.delivered == 20
        assert second.dropped == 0

    def test_rerun_results_agree_between_fresh_and_shared_contexts(self):
        train = packet_train(50, 512, gap_ps=10_000)
        fresh = DesPipeline([make_stage()], fifo_depth=32).run(train)
        context = SimContext(name="shared")
        pipeline = DesPipeline([make_stage()], fifo_depth=32, context=context)
        pipeline.run(train)                 # advance the shared clock
        rerun = pipeline.run(train)
        assert rerun.latency.mean_ps == fresh.latency.mean_ps
        assert rerun.throughput_bps == pytest.approx(fresh.throughput_bps)


class TestInFlightLoss:
    @staticmethod
    def overflow_run(context=None):
        # A fast front stage with a huge hand-off latency feeding a much
        # slower back stage: the front drains the whole train (paced at
        # its own service rate, so the backpressure check in kick() sees
        # an empty downstream FIFO every time) and puts 40 hand-offs in
        # flight before the first one lands.  Once the slow stage's FIFO
        # fills, the remaining in-flight hand-offs have nowhere to land.
        stages = [make_stage("fast", freq=1000.0, latency=50_000),
                  make_stage("slow", freq=1.0)]
        # fast service: 8 beats @ 1 GHz = 8_000 ps -> pace arrivals to match.
        pipeline = DesPipeline(stages, fifo_depth=4, context=context)
        return pipeline, pipeline.run(packet_train(40, 512, gap_ps=8_000))

    def test_in_flight_overflow_is_counted_not_silent(self):
        _pipeline, result = self.overflow_run()
        assert result.dropped_in_flight > 0
        # Conservation: every offered packet is delivered or accounted lost.
        assert result.delivered + result.lost == 40
        assert result.loss_fraction == result.lost / 40

    def test_in_flight_drops_surface_in_metrics(self):
        context = SimContext(name="loss")
        pipeline, result = self.overflow_run(context)
        counters = context.metrics.namespace(f"des.{pipeline.name}")
        assert counters.counter("dropped_in_flight").value == \
            result.dropped_in_flight

    def test_lossless_runs_report_zero(self):
        result = DesPipeline([make_stage()], fifo_depth=32).run(
            steady_train(load=0.5))
        assert result.dropped_in_flight == 0
        assert result.lost == 0


class TestThroughputWindow:
    def test_single_packet_has_no_window(self):
        result = DesPipeline([make_stage()]).run(
            [DesPacket(size_bytes=512, created_ps=0)])
        assert result.delivered == 1
        assert result.throughput_bps == 0.0

    def test_uniform_train_reduces_to_n_minus_one_formula(self):
        pipeline = DesPipeline([make_stage()], fifo_depth=64)
        result = pipeline.run(packet_train(100, 512, gap_ps=40_000))
        assert result.delivered == 100
        window_ps = (pipeline.delivered[-1].completed_ps
                     - pipeline.delivered[0].completed_ps)
        expected = (99 * 512 * 8) / (window_ps / 1e12)
        assert result.throughput_bps == pytest.approx(expected)

    def test_mixed_size_train_counts_actual_window_bytes(self):
        # Alternate 64B/1500B packets: the window opens at the first
        # completion, so the first packet's bytes stay outside it and
        # the rest contribute their true sizes.
        sizes = [64, 1500] * 10
        train = [DesPacket(size_bytes=size, created_ps=index * 100_000)
                 for index, size in enumerate(sizes)]
        pipeline = DesPipeline([make_stage()], fifo_depth=64)
        result = pipeline.run(train)
        assert result.delivered == len(sizes)
        window_ps = (pipeline.delivered[-1].completed_ps
                     - pipeline.delivered[0].completed_ps)
        window_bytes = (sum(p.size_bytes for p in pipeline.delivered)
                        - pipeline.delivered[0].size_bytes)
        assert result.throughput_bps == pytest.approx(
            window_bytes * 8 / (window_ps / 1e12))


class TestValidation:
    def test_empty_stage_list_rejected(self):
        with pytest.raises(ConfigurationError):
            DesPipeline([])

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            DesPipeline([make_stage()], fifo_depth=0)

    def test_loss_fraction_of_empty_run(self):
        result = DesPipeline([make_stage()]).run([])
        assert result.loss_fraction == 0.0
        assert result.delivered == 0
