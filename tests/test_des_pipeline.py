"""Tests for the event-driven (finite-buffer) pipeline.

The headline check: for admissible steady load, the DES agrees with the
analytic model of :mod:`repro.sim.pipeline` -- throughput at the
bottleneck, latency at the zero-load sum.  Then the DES-only behaviours:
loss under burst, backpressure holding packets upstream, occupancy.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.des_pipeline import DesPacket, DesPipeline, packet_train
from repro.sim.pipeline import PipelineChain, PipelineStage


def make_stage(name="s", freq=250.0, width=512, latency=4, ii=1):
    return PipelineStage(name, ClockDomain(name, freq), width,
                         latency_cycles=latency, initiation_interval=ii)


def steady_train(count=400, size=512, load=0.9, stage=None):
    stage = stage or make_stage()
    service_ps = stage.clock.cycles_to_ps(stage.beats(size))
    gap_ps = int(service_ps / load)
    return packet_train(count, size, gap_ps)


class TestAgreementWithAnalyticModel:
    def test_throughput_matches_bottleneck_at_saturation(self):
        stages = [make_stage("fast", freq=500.0), make_stage("slow", freq=125.0)]
        chain = PipelineChain("c", [make_stage("fast", freq=500.0),
                                    make_stage("slow", freq=125.0)])
        slow_service = stages[1].clock.cycles_to_ps(stages[1].beats(512))
        train = packet_train(500, 512, gap_ps=slow_service)
        result = DesPipeline(stages, fifo_depth=64).run(train)
        assert result.loss_fraction == 0.0
        assert result.throughput_bps == pytest.approx(chain.bandwidth_bps(512),
                                                      rel=0.03)

    def test_zero_load_latency_matches_analytic_sum(self):
        stages = [make_stage("a", freq=100.0, latency=3),
                  make_stage("b", freq=200.0, latency=5)]
        chain = PipelineChain("c", [make_stage("a", freq=100.0, latency=3),
                                    make_stage("b", freq=200.0, latency=5)])
        single = [DesPacket(size_bytes=512, created_ps=0)]
        result = DesPipeline(stages).run(single)
        analytic = chain.zero_load_latency_ps(512)
        # The DES charges full service before hand-off (store-and-forward
        # per stage), so it sits at or above the cut-through analytic
        # bound but within one transaction's beats.
        beats_ps = stages[0].clock.cycles_to_ps(stages[0].beats(512))
        assert analytic <= result.latency.mean_ps <= analytic + 2 * beats_ps

    def test_admissible_load_is_lossless(self):
        stages = [make_stage()]
        result = DesPipeline(stages, fifo_depth=4).run(steady_train(load=0.8))
        assert result.dropped == 0
        assert result.delivered == 400


class TestFiniteBufferEffects:
    def test_burst_overflows_shallow_ingress(self):
        stage = make_stage(freq=50.0)   # slow service
        burst = packet_train(64, 512, gap_ps=1, burst=64)   # all at once
        result = DesPipeline([stage], fifo_depth=8).run(burst)
        assert result.dropped > 0
        assert result.delivered + result.dropped == 64

    def test_deeper_buffer_absorbs_the_same_burst(self):
        stage = make_stage(freq=50.0)
        burst = packet_train(64, 512, gap_ps=1, burst=64)
        result = DesPipeline([stage], fifo_depth=64).run(burst)
        assert result.dropped == 0

    def test_backpressure_holds_packets_upstream(self):
        # Fast front stage into a much slower back stage: the front
        # must not run ahead further than the inter-stage buffer.
        stages = [make_stage("fast", freq=500.0), make_stage("slow", freq=25.0)]
        train = packet_train(60, 512, gap_ps=1, burst=60)
        pipeline = DesPipeline(stages, fifo_depth=4)
        result = pipeline.run(train)
        assert result.peak_occupancies[1] <= 4
        assert result.delivered + result.dropped == 60

    def test_occupancy_grows_with_load(self):
        stage_low = [make_stage()]
        stage_high = [make_stage()]
        low = DesPipeline(stage_low, fifo_depth=32).run(steady_train(load=0.5))
        high = DesPipeline(stage_high, fifo_depth=32).run(
            packet_train(400, 512, gap_ps=1, burst=8)
        )
        assert high.peak_occupancies[0] > low.peak_occupancies[0]

    def test_latency_rises_under_congestion(self):
        relaxed = DesPipeline([make_stage()], fifo_depth=64).run(
            steady_train(load=0.5))
        congested = DesPipeline([make_stage()], fifo_depth=64).run(
            packet_train(400, 512, gap_ps=1, burst=16))
        assert congested.latency.mean_ps > relaxed.latency.mean_ps


class TestValidation:
    def test_empty_stage_list_rejected(self):
        with pytest.raises(ConfigurationError):
            DesPipeline([])

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            DesPipeline([make_stage()], fifo_depth=0)

    def test_loss_fraction_of_empty_run(self):
        result = DesPipeline([make_stage()]).run([])
        assert result.loss_fraction == 0.0
        assert result.delivered == 0
