"""Tests for deficit-round-robin tenant scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.host import DmaDescriptor
from repro.core.rbb.scheduling import (
    DEFAULT_QUANTUM_BYTES,
    DeficitRoundRobinScheduler,
)
from repro.errors import ConfigurationError


def flood(scheduler, tenant, count, size=1_024):
    for _ in range(count):
        scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=size, tenant_id=tenant))


class TestFairness:
    def test_equal_weights_split_evenly(self):
        scheduler = DeficitRoundRobinScheduler({0: 1, 1: 1})
        flood(scheduler, 0, 400)
        flood(scheduler, 1, 400)
        # Look at shares while both are backlogged (first rounds only).
        for _ in range(20):
            scheduler.schedule_round()
        shares = scheduler.service_shares()
        assert shares[0] == pytest.approx(0.5, abs=0.05)

    def test_weights_proportion_service(self):
        scheduler = DeficitRoundRobinScheduler({0: 3, 1: 1})
        flood(scheduler, 0, 1_000)
        flood(scheduler, 1, 1_000)
        for _ in range(30):
            scheduler.schedule_round()
        shares = scheduler.service_shares()
        assert shares[0] == pytest.approx(0.75, abs=0.05)

    def test_work_conserving_when_one_tenant_idle(self):
        scheduler = DeficitRoundRobinScheduler({0: 1, 1: 9})
        flood(scheduler, 0, 50)
        served = scheduler.drain()
        assert len(served) == 50
        assert scheduler.service_shares()[0] == pytest.approx(1.0)

    def test_large_descriptor_eventually_served(self):
        scheduler = DeficitRoundRobinScheduler({0: 1}, quantum_bytes=512)
        scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=4_096, tenant_id=0))
        served = scheduler.drain()
        assert len(served) == 1

    @settings(max_examples=25, deadline=None)
    @given(weight=st.integers(1, 8), rounds=st.integers(5, 20))
    def test_share_tracks_weight_property(self, weight, rounds):
        scheduler = DeficitRoundRobinScheduler({0: weight, 1: 1})
        # Backlog deep enough that neither tenant drains during the
        # measurement window (shares are only meaningful under contention).
        per_round_descriptors = DEFAULT_QUANTUM_BYTES * weight // 1_024 + 1
        depth = per_round_descriptors * (rounds + 2)
        flood(scheduler, 0, depth)
        flood(scheduler, 1, depth)
        for _ in range(rounds):
            scheduler.schedule_round()
        assert scheduler.backlog > 0
        shares = scheduler.service_shares()
        expected = weight / (weight + 1)
        assert shares[0] == pytest.approx(expected, abs=0.1)


class TestMechanics:
    def test_fifo_within_tenant(self):
        scheduler = DeficitRoundRobinScheduler({0: 1})
        scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=100, tenant_id=0))
        scheduler.submit(DmaDescriptor(queue_id=1, size_bytes=200, tenant_id=0))
        served = scheduler.drain()
        assert [d.size_bytes for d in served] == [100, 200]

    def test_unknown_tenant_rejected(self):
        scheduler = DeficitRoundRobinScheduler({0: 1})
        with pytest.raises(ConfigurationError):
            scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=64, tenant_id=7))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            DeficitRoundRobinScheduler({})
        with pytest.raises(ConfigurationError):
            DeficitRoundRobinScheduler({0: 0})
        with pytest.raises(ConfigurationError):
            DeficitRoundRobinScheduler({0: 1}, quantum_bytes=0)

    def test_idle_tenant_keeps_no_credit(self):
        scheduler = DeficitRoundRobinScheduler({0: 1, 1: 1})
        flood(scheduler, 0, 2)
        scheduler.drain()
        # Tenant 0 going idle must not bank deficit for later rounds.
        assert scheduler._deficit[0] == 0

    def test_drain_empties_everything(self):
        scheduler = DeficitRoundRobinScheduler({0: 2, 1: 1, 2: 5})
        for tenant in (0, 1, 2):
            flood(scheduler, tenant, 37, size=777)
        served = scheduler.drain()
        assert len(served) == 3 * 37
        assert scheduler.backlog == 0
