"""Tests for the error hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigurationError,
        errors.DependencyError,
        errors.IncompatiblePlatformError,
        errors.InterfaceMismatchError,
        errors.ResourceExhaustedError,
        errors.CommandError,
        errors.ChecksumError,
        errors.RegisterAccessError,
        errors.TailoringError,
        errors.DeploymentError,
    ]

    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_harmonia_error(self, error_type):
        assert issubclass(error_type, errors.HarmoniaError)

    def test_checksum_is_a_command_error(self):
        assert issubclass(errors.ChecksumError, errors.CommandError)

    def test_one_except_clause_catches_everything(self):
        from repro.core.command.packet import CommandPacket

        try:
            CommandPacket.decode(b"\x00" * 4)
        except errors.HarmoniaError:
            caught = True
        assert caught


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_quickstart_from_docstring_runs(self):
        from repro import DEVICE_A, HierarchicalTailor, build_unified_shell
        from repro.apps import SecGateway

        shell = build_unified_shell(DEVICE_A)
        tailored = HierarchicalTailor(shell).tailor(SecGateway().role())
        assert tailored.resources().as_dict()["lut"] > 0

    def test_device_constants_exported(self):
        assert repro.DEVICE_A.name == "device-a"
        assert len(repro.all_devices()) >= 4
