"""Smoke tests: every example script runs cleanly and says what it should."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ("Project bundle:", "with Harmonia", "native"),
    "cross_platform_migration.py": ("register interface", "command interface",
                                    "reduction"),
    "retrieval_service.py": ("Recall@1", "QPS vs corpus size"),
    "multi_tenant_smartnic.py": ("isolation violations", "PR slot", "Cross-tenant"),
    "fleet_rollout.py": ("fleet health sweep", "critical", "drain traffic"),
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs_and_reports(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    for marker in EXPECTATIONS[script]:
        assert marker in output, (script, marker)


def test_every_example_has_a_smoke_test():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTATIONS)
