"""Fleet-scale serving simulator: policies, residency, determinism."""

import json

import numpy as np
import pytest

from repro.core.multitenancy import residency_matrix
from repro.errors import ConfigurationError
from repro.platform.fleet import Introduction, production_fleet
from repro.runtime import SimContext
from repro.runtime.fleet import (
    POLICIES,
    FleetSimulation,
    FleetSpec,
    _allocate_instances,
    _capacity_gbps,
    run_fleet,
)

#: Small but non-trivial scenario -- fast enough for every test.
SMALL = FleetSpec(flow_count=20_000, device_count=64, tenant_count=8,
                  slots_per_device=2, seed=11)


@pytest.fixture(scope="module")
def small_result():
    return run_fleet(SMALL)


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"flow_count": 0},
        {"device_count": 0},
        {"tenant_count": 0},
        {"slots_per_device": 0},
        {"alpha": 0.0},
        {"offered_load": 0.0},
        {"mean_packet_bytes": 0},
    ])
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetSpec(**kwargs)

    def test_too_few_devices_for_active_types_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetSimulation(FleetSpec(flow_count=100, device_count=2))

    def test_unknown_policy_rejected(self, small_result):
        simulation = FleetSimulation(SMALL)
        with pytest.raises(ConfigurationError):
            simulation.assignment("random")
        with pytest.raises(ConfigurationError):
            simulation.run(())


class TestCapacityMapping:
    def test_catalog_device_uses_catalog_speed(self):
        assert _capacity_gbps("device-c") == 400.0

    def test_speed_suffix_wins_for_uncatalogued_variant(self):
        assert _capacity_gbps("device-a-100g") == 100.0
        assert _capacity_gbps("device-c-400g") == 400.0

    def test_revision_falls_back_to_base_type(self):
        assert _capacity_gbps("device-b-rev2") == _capacity_gbps("device-b")

    def test_unpriceable_name_gets_conservative_fallback(self):
        assert _capacity_gbps("device-zynq-edge") == 25.0
        assert _capacity_gbps("mystery-part") == 25.0


class TestAllocation:
    def test_shares_proportional_and_exact(self):
        allocation = _allocate_instances([3_000, 1_000], 100)
        assert sum(allocation) == 100
        assert allocation[0] == 75 and allocation[1] == 25

    def test_every_type_gets_an_instance(self):
        allocation = _allocate_instances([10_000, 1], 10)
        assert sum(allocation) == 10
        assert min(allocation) >= 1

    def test_production_fleet_2024_covers_ten_types(self):
        simulation = FleetSimulation(SMALL)
        assert len(simulation.groups) == \
            len(production_fleet().active_introductions(2024))
        assert simulation.device_count == SMALL.device_count

    def test_no_units_rejected(self):
        with pytest.raises(ConfigurationError):
            _allocate_instances([0, 0], 10)

    def test_equal_remainders_break_toward_earlier_index(self):
        # Three equal unit counts, one surplus instance after the floor
        # pass: every remainder ties, so the surplus must land on the
        # earliest index -- never flapping between reruns.
        assert _allocate_instances([100, 100, 100], 4) == [2, 1, 1]
        assert _allocate_instances([100, 100, 100], 5) == [2, 2, 1]

    def test_allocation_is_rerun_stable(self):
        units = [7, 13, 13, 7, 60]
        first = _allocate_instances(units, 23)
        assert all(_allocate_instances(units, 23) == first
                   for _ in range(5))
        assert sum(first) == 23


class TestActiveIntroductions:
    def test_lifecycle_window_respected(self):
        history = production_fleet()
        active_2024 = {item.device_name
                       for item in history.active_introductions(2024)}
        assert "device-b" in active_2024          # 2020 + 5y lifecycle
        assert "device-c-400g" in active_2024
        assert history.active_introductions(2019) == []

    def test_sorted_deterministically(self):
        items = production_fleet().active_introductions(2024)
        assert items == sorted(items,
                               key=lambda i: (i.year, i.device_name))


class TestResidencyMatrix:
    def test_heaviest_tenants_hold_slots(self):
        load = np.asarray([[5.0, 1.0, 3.0, 2.0]])
        resident = residency_matrix(load, 2)
        assert resident.tolist() == [[True, False, True, False]]

    def test_ties_break_toward_lower_tenant(self):
        load = np.asarray([[1.0, 1.0, 1.0]])
        assert residency_matrix(load, 2).tolist() == [[True, True, False]]

    def test_everyone_resident_when_slots_cover_tenants(self):
        load = np.zeros((3, 2))
        assert residency_matrix(load, 4).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            residency_matrix(np.zeros((2, 2)), 0)
        with pytest.raises(ConfigurationError):
            residency_matrix(np.zeros(4), 1)


class TestPolicies:
    def test_all_policies_evaluated(self, small_result):
        assert tuple(p.policy for p in small_result.policies) == POLICIES

    def test_round_robin_spreads_flows_evenly(self):
        simulation = FleetSimulation(SMALL)
        assign = simulation.assignment("round-robin")
        counts = np.bincount(assign, minlength=simulation.device_count)
        assert counts.max() - counts.min() <= 1

    def test_flow_hash_is_pure_function_of_flow(self):
        simulation = FleetSimulation(SMALL)
        first = simulation.assignment("flow-hash")
        second = simulation.assignment("flow-hash")
        assert (first == second).all()

    def test_least_loaded_has_lowest_imbalance(self, small_result):
        by_name = {p.policy: p for p in small_result.policies}
        assert by_name["least-loaded"].imbalance <= \
            by_name["round-robin"].imbalance
        assert by_name["least-loaded"].imbalance <= \
            by_name["flow-hash"].imbalance

    def test_least_loaded_wins_p99_under_skew(self, small_result):
        assert small_result.best_policy().policy == "least-loaded"

    def test_utilization_accounting(self, small_result):
        for policy in small_result.policies:
            utilization = np.asarray(policy.device_utilization)
            assert utilization.shape == (SMALL.device_count,)
            assert (utilization >= 0).all()
            assert policy.utilization_max == pytest.approx(utilization.max())
            assert policy.imbalance == pytest.approx(
                utilization.max() / utilization.mean())
            assert policy.overloaded_devices == int((utilization > 1.0).sum())

    def test_tenant_stats_cover_all_flows(self, small_result):
        for policy in small_result.policies:
            assert len(policy.tenants) == SMALL.tenant_count
            assert sum(t.flows for t in policy.tenants) == SMALL.flow_count
            for tenant in policy.tenants:
                assert tenant.p99_ns >= tenant.p50_ns >= 0


class TestDeterminismAndJson:
    def test_same_spec_same_json(self, small_result):
        again = run_fleet(SMALL)
        assert json.dumps(again.to_json(), sort_keys=True) == \
            json.dumps(small_result.to_json(), sort_keys=True)

    def test_seed_changes_the_scenario(self, small_result):
        other = run_fleet(FleetSpec(flow_count=20_000, device_count=64,
                                    tenant_count=8, slots_per_device=2,
                                    seed=12))
        assert other.to_json() != small_result.to_json()

    def test_json_round_trips(self, small_result):
        payload = json.loads(json.dumps(small_result.to_json()))
        assert payload["best_policy"] == "least-loaded"
        assert payload["spec"]["flow_count"] == SMALL.flow_count
        assert len(payload["policies"]) == len(POLICIES)

    def test_rate_cap_bounds_single_flows(self):
        simulation = FleetSimulation(SMALL)
        assert simulation.flow_rate_gbps.max() <= \
            simulation.instance_capacity_gbps.max()
        assert simulation.effective_offered_gbps <= simulation.offered_gbps

    def test_batched_run_shares_scratch_byte_identically(self, small_result):
        # run() threads ONE scratch assignment buffer through every
        # policy; the payload must be byte-identical to evaluating each
        # policy with its own freshly allocated arrays.
        simulation = FleetSimulation(SMALL)
        separate = {policy: simulation.run_policy(policy)
                    for policy in POLICIES}
        batched = {result.policy: result
                   for result in small_result.policies}
        for policy in POLICIES:
            assert json.dumps(batched[policy].to_json(), sort_keys=True) == \
                json.dumps(separate[policy].to_json(), sort_keys=True)

    def test_assignment_out_buffer_is_reused(self):
        simulation = FleetSimulation(SMALL)
        scratch = np.empty(SMALL.flow_count, dtype=np.int64)
        returned = simulation.assignment("flow-hash", out=scratch)
        assert returned is scratch
        fresh = simulation.assignment("flow-hash")
        assert np.array_equal(returned, fresh)


class TestObservability:
    def test_metrics_and_spans_emitted(self):
        context = SimContext(name="fleet-test", trace=True)
        run_fleet(SMALL, policies=("least-loaded",), context=context)
        snapshot = context.metrics.snapshot()
        assert snapshot["fleet"]["least-loaded"]["p99_ns"] > 0
        assert snapshot["fleet"]["flows"] == SMALL.flow_count
        assert "fleet.least-loaded" in context.trace.span_names()

    def test_slot_plan_validated_for_catalog_types(self):
        simulation = FleetSimulation(SMALL)
        assert simulation.slot_plan  # at least the catalog-backed types
        assert all(count == SMALL.slots_per_device
                   for count in simulation.slot_plan.values())

    def test_instance_labels(self):
        simulation = FleetSimulation(SMALL)
        assert simulation.instance_label(0).endswith("[0]")
        with pytest.raises(ConfigurationError):
            simulation.instance_label(simulation.device_count)


class TestCustomHistory:
    def test_private_history_is_honoured(self):
        from repro.platform.fleet import FleetHistory

        history = FleetHistory([
            Introduction(2024, "device-a", 100),
            Introduction(2024, "device-c", 300),
        ])
        spec = FleetSpec(flow_count=5_000, device_count=16, tenant_count=4,
                         slots_per_device=2)
        simulation = FleetSimulation(spec, history=history)
        assert [g.device_name for g in simulation.groups] == \
            ["device-a", "device-c"]
        assert sum(g.instances for g in simulation.groups) == 16
        assert simulation.groups[1].instances == 12
