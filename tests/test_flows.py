"""Tests for skewed flow-level traffic and its effect on balancing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.errors import ConfigurationError
from repro.workloads.flows import (
    FlowSet,
    backend_imbalance,
    skewed_packet_stream,
    zipf_weights,
)


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        weights = zipf_weights(100, alpha=1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_higher_alpha_concentrates_mass(self):
        flat = zipf_weights(100, alpha=0.5)
        steep = zipf_weights(100, alpha=2.0)
        assert steep[0] > flat[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0)
        with pytest.raises(ConfigurationError):
            zipf_weights(10, alpha=0.0)

    @given(count=st.integers(1, 300), alpha=st.floats(0.3, 2.5))
    def test_weights_always_a_distribution(self, count, alpha):
        weights = zipf_weights(count, alpha)
        assert sum(weights) == pytest.approx(1.0)
        assert all(weight > 0 for weight in weights)


class TestFlowSet:
    def test_deterministic_per_seed(self):
        first = FlowSet(50, seed=3)
        second = FlowSet(50, seed=3)
        assert [p.total_bytes for p in first.profiles] == \
            [p.total_bytes for p in second.profiles]

    def test_heavy_tail_has_mice_and_elephants(self):
        flow_set = FlowSet(2_000, mean_flow_bytes=200_000, seed=5)
        elephants = flow_set.elephants()
        assert 0 < len(elephants) < len(flow_set) / 2

    def test_top_flows_carry_most_traffic(self):
        flow_set = FlowSet(1_000, alpha=1.2)
        assert flow_set.top_share(0.1) > 0.5

    def test_invalid_pareto_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSet(10, pareto_shape=0.9)


class TestSkewedStream:
    def test_popular_flows_dominate_the_stream(self):
        flow_set = FlowSet(200, alpha=1.3)
        packets = skewed_packet_stream(flow_set, 5_000)
        top_flow = flow_set.profiles[0].flow
        hits = sum(1 for packet in packets if packet.flow == top_flow)
        assert hits > 5_000 / 200 * 5   # way above the uniform share

    def test_stream_deterministic(self):
        flow_set = FlowSet(100)
        first = skewed_packet_stream(flow_set, 500, seed=9)
        second = skewed_packet_stream(flow_set, 500, seed=9)
        assert [p.flow for p in first] == [p.flow for p in second]


class TestBalancingUnderSkew:
    def test_lb_stays_bounded_under_zipf_traffic(self):
        app = Layer4LoadBalancer()
        flow_set = FlowSet(500, alpha=1.1)
        packets = skewed_packet_stream(flow_set, 8_000)
        loads = app.distribute(packets)
        # Flow-level hashing cannot split an elephant flow, so skewed
        # traffic is imbalanced -- but consistent hashing keeps it within
        # a small factor of the mean rather than collapsing onto one box.
        assert 1.0 <= backend_imbalance(loads) < 4.0

    def test_uniform_traffic_balances_tightly(self):
        from repro.workloads.packets import PacketGenerator

        app = Layer4LoadBalancer()
        packets = PacketGenerator().uniform_stream(8_000, 256, flow_count=4_000)
        assert backend_imbalance(app.distribute(packets)) < 1.5

    def test_imbalance_requires_load(self):
        with pytest.raises(ConfigurationError):
            backend_imbalance({})
