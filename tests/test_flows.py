"""Tests for skewed flow-level traffic and its effect on balancing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.errors import ConfigurationError
from repro.workloads.flows import (
    FlowSet,
    backend_imbalance,
    skewed_packet_stream,
    zipf_weights,
)


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        weights = zipf_weights(100, alpha=1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_higher_alpha_concentrates_mass(self):
        flat = zipf_weights(100, alpha=0.5)
        steep = zipf_weights(100, alpha=2.0)
        assert steep[0] > flat[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0)
        with pytest.raises(ConfigurationError):
            zipf_weights(10, alpha=0.0)

    @given(count=st.integers(1, 300), alpha=st.floats(0.3, 2.5))
    def test_weights_always_a_distribution(self, count, alpha):
        weights = zipf_weights(count, alpha)
        assert sum(weights) == pytest.approx(1.0)
        assert all(weight > 0 for weight in weights)


class TestFlowSet:
    def test_deterministic_per_seed(self):
        first = FlowSet(50, seed=3)
        second = FlowSet(50, seed=3)
        assert [p.total_bytes for p in first.profiles] == \
            [p.total_bytes for p in second.profiles]

    def test_heavy_tail_has_mice_and_elephants(self):
        flow_set = FlowSet(2_000, mean_flow_bytes=200_000, seed=5)
        elephants = flow_set.elephants()
        assert 0 < len(elephants) < len(flow_set) / 2

    def test_top_flows_carry_most_traffic(self):
        flow_set = FlowSet(1_000, alpha=1.2)
        assert flow_set.top_share(0.1) > 0.5

    def test_invalid_pareto_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowSet(10, pareto_shape=0.9)


class TestSkewedStream:
    def test_popular_flows_dominate_the_stream(self):
        flow_set = FlowSet(200, alpha=1.3)
        packets = skewed_packet_stream(flow_set, 5_000)
        top_flow = flow_set.profiles[0].flow
        hits = sum(1 for packet in packets if packet.flow == top_flow)
        assert hits > 5_000 / 200 * 5   # way above the uniform share

    def test_stream_deterministic(self):
        flow_set = FlowSet(100)
        first = skewed_packet_stream(flow_set, 500, seed=9)
        second = skewed_packet_stream(flow_set, 500, seed=9)
        assert [p.flow for p in first] == [p.flow for p in second]


class TestBalancingUnderSkew:
    def test_lb_stays_bounded_under_zipf_traffic(self):
        app = Layer4LoadBalancer()
        flow_set = FlowSet(500, alpha=1.1)
        packets = skewed_packet_stream(flow_set, 8_000)
        loads = app.distribute(packets)
        # Flow-level hashing cannot split an elephant flow, so skewed
        # traffic is imbalanced -- but consistent hashing keeps it within
        # a small factor of the mean rather than collapsing onto one box.
        assert 1.0 <= backend_imbalance(loads) < 4.0

    def test_uniform_traffic_balances_tightly(self):
        from repro.workloads.packets import PacketGenerator

        app = Layer4LoadBalancer()
        packets = PacketGenerator().uniform_stream(8_000, 256, flow_count=4_000)
        assert backend_imbalance(app.distribute(packets)) < 1.5

    def test_imbalance_requires_load(self):
        with pytest.raises(ConfigurationError):
            backend_imbalance({})


class TestVectorizedSampling:
    def test_flowset_sizes_are_seed_stable(self):
        # ISSUE satellite: pin the numpy Generator stream so a silent
        # sampling change (numpy upgrade, refactor) fails loudly.
        flow_set = FlowSet(8, seed=11)
        sizes = (flow_set.sizes_bytes.tolist()
                 if hasattr(flow_set.sizes_bytes, "tolist")
                 else list(flow_set.sizes_bytes))
        assert sizes == [9345, 14830, 17938, 8537, 9522, 74834, 8856, 9356]

    def test_flow_hashes_are_seed_stable(self):
        from repro.workloads.flows import flow_hashes32

        hashes = flow_hashes32(6, seed=3)
        values = hashes.tolist() if hasattr(hashes, "tolist") else hashes
        assert values == [4169906344, 1908508304, 3287450234,
                          312960251, 2112154380, 426659522]

    def test_flow_hashes_match_scalar_splitmix(self):
        from repro.workloads.flows import _MASK64, _splitmix64, flow_hashes32

        offset = (3 * 0x9E3779B97F4A7C15) & _MASK64
        expected = [_splitmix64((rank + offset) & _MASK64) >> 32
                    for rank in range(100)]
        hashes = flow_hashes32(100, seed=3)
        values = hashes.tolist() if hasattr(hashes, "tolist") else hashes
        assert values == expected

    def test_stream_choice_is_seed_stable(self):
        flow_set = FlowSet(50, seed=2)
        flows = [profile.flow for profile in flow_set.profiles]
        packets = skewed_packet_stream(flow_set, 10, seed=5)
        assert [flows.index(p.flow) for p in packets] == \
            [17, 17, 3, 1, 0, 2, 2, 0, 0, 49]

    def test_profiles_materialise_lazily_and_consistently(self):
        flow_set = FlowSet(100, seed=4)
        assert not flow_set._profiles           # arrays only, so far
        profiles = flow_set.profiles
        assert len(profiles) == 100
        sizes = (flow_set.sizes_bytes.tolist()
                 if hasattr(flow_set.sizes_bytes, "tolist")
                 else list(flow_set.sizes_bytes))
        assert [p.total_bytes for p in profiles] == sizes
        weights = zipf_weights(100)
        assert profiles[0].weight == pytest.approx(weights[0])

    def test_million_flow_population_is_cheap(self):
        import time

        start = time.perf_counter()
        flow_set = FlowSet(1_000_000, alpha=1.05)
        elapsed = time.perf_counter() - start
        assert len(flow_set) == 1_000_000
        assert elapsed < 5.0                    # array-speed, not a loop

    def test_zipf_weights_array_matches_list_form(self):
        from repro.workloads.flows import zipf_weights_array

        array = zipf_weights_array(500, alpha=1.3)
        assert array.tolist() == pytest.approx(zipf_weights(500, alpha=1.3))
        assert float(array.sum()) == pytest.approx(1.0)

    def test_hash_count_validation(self):
        from repro.workloads.flows import flow_hashes32

        with pytest.raises(ConfigurationError):
            flow_hashes32(-1)
