"""Tests for command-plane health monitoring."""

import pytest

from repro.core.command.codes import RbbId
from repro.core.health import (
    DEFAULT_THRESHOLDS,
    HealthMonitor,
    HealthReport,
    Severity,
    Threshold,
    fleet_health,
)
from repro.core.host_software import ControlPlane
from repro.core.shell import build_unified_shell
from repro.errors import ConfigurationError
from repro.platform.catalog import DEVICE_A, evaluation_devices


def make_monitor(device=DEVICE_A, thresholds=None):
    control = ControlPlane(build_unified_shell(device))
    return HealthMonitor(control, thresholds=thresholds)


def _sensor_regfile(monitor):
    control = monitor.control
    sensor_id = control.management_instance_id("sensor")
    return control.kernel.endpoint(int(RbbId.MANAGEMENT), sensor_id).regfile


class TestThreshold:
    def test_classification_bands(self):
        threshold = Threshold(warning=85.0, critical=95.0)
        assert threshold.classify(50.0) is Severity.OK
        assert threshold.classify(85.0) is Severity.WARNING
        assert threshold.classify(95.0) is Severity.CRITICAL

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            Threshold(warning=90.0, critical=80.0)

    def test_defaults_cover_the_basics(self):
        assert {"temperature_c", "vccint_mv_delta", "command_failures"} <= set(
            DEFAULT_THRESHOLDS
        )


class TestHealthMonitor:
    def test_healthy_device_reports_ok(self):
        monitor = make_monitor()
        report = monitor.poll_once()
        assert report.healthy
        assert report.severity is Severity.OK
        assert report.device_name == "device-a"

    def test_hot_die_raises_warning_then_critical(self):
        monitor = make_monitor()
        regfile = _sensor_regfile(monitor)
        regfile.poke("TEMP_C", 88)
        assert monitor.poll_once().severity is Severity.WARNING
        regfile.poke("TEMP_C", 97)
        report = monitor.poll_once()
        assert report.severity is Severity.CRITICAL
        assert report.observation("temperature_c").value == 97

    def test_voltage_excursion_detected(self):
        monitor = make_monitor()
        regfile = _sensor_regfile(monitor)
        regfile.poke("VCCINT_MV", 850 - 70)
        assert monitor.poll_once().severity is Severity.CRITICAL

    def test_command_failures_surface_as_health(self):
        monitor = make_monitor()
        # Provoke kernel failures with a nonsense command.
        from repro.core.command.codes import CommandCode
        for _ in range(12):
            monitor.driver.cmd_write(CommandCode.FLASH_ERASE, int(RbbId.HOST), data=(1,))
        report = monitor.poll_once()
        assert report.observation("command_failures").severity is Severity.CRITICAL

    def test_custom_thresholds_override_defaults(self):
        monitor = make_monitor(thresholds={"temperature_c": Threshold(10.0, 20.0)})
        assert monitor.poll_once().severity is Severity.CRITICAL  # 45 C nominal

    def test_history_and_alarm_counts(self):
        monitor = make_monitor()
        monitor.poll(3)
        _sensor_regfile(monitor).poke("TEMP_C", 99)
        monitor.poll_once()
        counts = monitor.alarm_counts()
        assert counts[Severity.OK] == 3
        assert counts[Severity.CRITICAL] == 1
        assert len(monitor.history) == 4

    def test_report_unknown_observation_raises(self):
        report = make_monitor().poll_once()
        with pytest.raises(KeyError):
            report.observation("nonexistent")


class TestFleetHealth:
    def test_sweep_covers_every_device(self):
        monitors = [make_monitor(device) for device in evaluation_devices()]
        sweep = fleet_health(monitors)
        assert set(sweep) == {d.name for d in evaluation_devices()}
        assert all(severity is Severity.OK for severity in sweep.values())

    def test_one_sick_device_does_not_mask_others(self):
        monitors = [make_monitor(device) for device in evaluation_devices()[:2]]
        _sensor_regfile(monitors[0]).poke("TEMP_C", 99)
        sweep = fleet_health(monitors)
        assert sweep[monitors[0].control.device.name] is Severity.CRITICAL
        assert sweep[monitors[1].control.device.name] is Severity.OK
