"""Tests for host-software control programs and migration measurement."""

import pytest

from repro.core.host_software import BoardProfile, ControlPlane
from repro.core.shell import build_unified_shell
from repro.metrics.modifications import reduction_factor, trace_modifications
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D


class TestBoardProfile:
    def test_dsfp_boards_have_eight_lanes(self):
        assert BoardProfile.for_device(DEVICE_C).serdes_lanes == 8
        assert BoardProfile.for_device(DEVICE_A).serdes_lanes == 4

    def test_bar_base_differs_by_board_vendor(self):
        assert (BoardProfile.for_device(DEVICE_C).bar0_base
                != BoardProfile.for_device(DEVICE_D).bar0_base)

    def test_i2c_map_tracks_peripheral_count(self):
        assert (len(BoardProfile.for_device(DEVICE_D).i2c_devices)
                == len(DEVICE_D.peripherals))

    def test_queue_count_tracks_lanes(self):
        assert BoardProfile.for_device(DEVICE_A).dma_queues_at_init == 4  # x8
        assert BoardProfile.for_device(DEVICE_B).dma_queues_at_init == 8  # x16


class TestControlPrograms:
    def test_register_init_much_larger_than_command_init(self, any_device):
        control = ControlPlane(build_unified_shell(any_device))
        registers = control.register_full_init()
        commands = control.command_full_init()
        assert registers.operation_count > 10 * commands.invocation_count

    def test_command_init_actually_initialises_modules(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        control.command_full_init()
        for rbb_id, instance_id in control.kernel.registered_modules:
            endpoint = control.kernel.endpoint(rbb_id, instance_id)
            assert endpoint.init_runs == 1, endpoint.name

    def test_no_commands_fail_during_bring_up(self, any_device):
        control = ControlPlane(build_unified_shell(any_device))
        control.command_full_init()
        control.command_monitoring_walk()
        control.command_host_interaction()
        control.command_network_init()
        assert control.kernel.commands_failed == 0

    def test_table4_counts_on_device_a(self):
        # Table 4: registers 84 / 115 / 60 vs commands 4 / 5 / 4.
        control = ControlPlane(build_unified_shell(DEVICE_A))
        assert control.register_monitoring_walk().operation_count == 84
        assert control.register_network_init().operation_count == pytest.approx(115, abs=5)
        assert control.register_host_interaction().operation_count == 60
        assert control.command_monitoring_walk().invocation_count == 4
        assert control.command_network_init().invocation_count == 5
        assert control.command_host_interaction().invocation_count == 4

    def test_table4_simplification_in_band(self):
        # The paper's 15-23x simplification.
        control = ControlPlane(build_unified_shell(DEVICE_A))
        pairs = [
            (control.register_monitoring_walk().operation_count,
             control.command_monitoring_walk().invocation_count),
            (control.register_network_init().operation_count,
             control.command_network_init().invocation_count),
            (control.register_host_interaction().operation_count,
             control.command_host_interaction().invocation_count),
        ]
        factors = [registers / commands for registers, commands in pairs]
        assert min(factors) >= 14.0
        assert max(factors) <= 24.0

    def test_monitoring_walk_reads_only(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        driver = control.register_monitoring_walk()
        # Monitoring configures per-queue selectors but is read-dominated.
        reads = sum(1 for op in driver.operations if op[0] == "read")
        assert reads > len(driver.operations) * 0.8


class TestMigrationCost:
    def _traces(self, device):
        """Traces for the Host Network app's shell (the Figure 13 setup)."""
        from repro.apps import HostNetwork

        control = ControlPlane(HostNetwork().tailored_shell(device))
        return (control.register_full_init().operation_signatures(),
                control.command_full_init().invocation_signatures())

    def test_same_device_costs_nothing(self):
        first_registers, first_commands = self._traces(DEVICE_C)
        second_registers, second_commands = self._traces(DEVICE_C)
        assert trace_modifications(first_registers, second_registers) == 0
        assert trace_modifications(first_commands, second_commands) == 0

    def test_c_to_d_register_cost_dwarfs_command_cost(self):
        registers_c, commands_c = self._traces(DEVICE_C)
        registers_d, commands_d = self._traces(DEVICE_D)
        register_mods = trace_modifications(registers_c, registers_d)
        command_mods = trace_modifications(commands_c, commands_d)
        assert register_mods > 100
        assert command_mods < 10
        # Figure 13's band, with simulation slack.
        assert 60 <= reduction_factor(register_mods, command_mods) <= 150
