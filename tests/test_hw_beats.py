"""Unit and property tests for beat-level framing and conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterfaceMismatchError
from repro.hw.beats import (
    AvalonStBeat,
    AxiStreamBeat,
    avalon_to_axi,
    axi_to_avalon,
    beats_needed,
    convert_width,
    from_avalon_st,
    from_axi_stream,
    to_avalon_st,
    to_axi_stream,
)

payload_strategy = st.binary(min_size=1, max_size=400)
width_strategy = st.sampled_from([64, 128, 512, 2_048])


class TestAxiStreamFraming:
    def test_exact_multiple_has_full_keep(self):
        beats = to_axi_stream(b"\xAA" * 128, 512)
        assert len(beats) == 2
        assert all(beat.tkeep == (1 << 64) - 1 for beat in beats)
        assert beats[-1].tlast and not beats[0].tlast

    def test_partial_final_beat(self):
        beats = to_axi_stream(b"\x01" * 70, 512)
        assert beats[-1].valid_bytes == 6
        assert beats[-1].tkeep == 0b111111
        assert len(beats[-1].data) == 64   # padded to the bus width

    def test_single_beat_packet(self):
        beats = to_axi_stream(b"\x01\x02", 512)
        assert len(beats) == 1
        assert beats[0].tlast

    def test_empty_payload_rejected(self):
        with pytest.raises(InterfaceMismatchError):
            to_axi_stream(b"", 512)

    def test_reassembly_validates_tlast(self):
        beats = to_axi_stream(b"\x01" * 100, 512)
        broken = [AxiStreamBeat(beats[0].data, beats[0].tkeep, tlast=True),
                  beats[-1]]
        with pytest.raises(InterfaceMismatchError, match="TLAST"):
            from_axi_stream(broken)

    def test_reassembly_rejects_sparse_keep(self):
        beat = AxiStreamBeat(b"\x00" * 64, tkeep=0b101, tlast=True)
        with pytest.raises(InterfaceMismatchError, match="non-contiguous"):
            from_axi_stream([beat])

    @given(payload=payload_strategy, width=width_strategy)
    def test_roundtrip(self, payload, width):
        assert from_axi_stream(to_axi_stream(payload, width)) == payload


class TestAvalonStFraming:
    def test_empty_count_on_final_beat(self):
        beats = to_avalon_st(b"\x01" * 70, 512)
        assert beats[-1].empty == 58
        assert beats[-1].valid_bytes == 6

    def test_sop_eop_flags(self):
        beats = to_avalon_st(b"\x01" * 200, 512)
        assert beats[0].startofpacket and not beats[0].endofpacket
        assert beats[-1].endofpacket and not beats[-1].startofpacket

    def test_missing_sop_rejected(self):
        beats = to_avalon_st(b"\x01" * 10, 512)
        broken = [AvalonStBeat(beats[0].data, False, True, beats[0].empty)]
        with pytest.raises(InterfaceMismatchError, match="startofpacket"):
            from_avalon_st(broken)

    def test_mid_packet_empty_rejected(self):
        first = AvalonStBeat(b"\x00" * 64, True, False, empty=3)
        last = AvalonStBeat(b"\x00" * 64, False, True, empty=0)
        with pytest.raises(InterfaceMismatchError, match="final beat"):
            from_avalon_st([first, last])

    @given(payload=payload_strategy, width=width_strategy)
    def test_roundtrip(self, payload, width):
        assert from_avalon_st(to_avalon_st(payload, width)) == payload


class TestProtocolConversion:
    """The wrapper's actual data-plane job."""

    @given(payload=payload_strategy, width=width_strategy)
    def test_axi_to_avalon_preserves_bytes(self, payload, width):
        axi = to_axi_stream(payload, width)
        avalon = axi_to_avalon(axi)
        assert from_avalon_st(avalon) == payload

    @given(payload=payload_strategy, width=width_strategy)
    def test_avalon_to_axi_preserves_bytes(self, payload, width):
        avalon = to_avalon_st(payload, width)
        axi = avalon_to_axi(avalon)
        assert from_axi_stream(axi) == payload

    @given(payload=payload_strategy, width=width_strategy)
    def test_double_conversion_is_identity(self, payload, width):
        axi = to_axi_stream(payload, width)
        assert avalon_to_axi(axi_to_avalon(axi)) == axi

    def test_keep_mask_vs_empty_count_for_same_packet(self):
        # The two encodings of "6 valid bytes in the last 512-bit beat".
        payload = b"\x01" * 70
        axi = to_axi_stream(payload, 512)[-1]
        avalon = to_avalon_st(payload, 512)[-1]
        assert axi.valid_bytes == avalon.valid_bytes == 6
        assert axi.tkeep == 0b111111
        assert avalon.empty == 58


class TestWidthConversion:
    """The parameterised CDC's 512 <-> 128 bit conversion."""

    @given(payload=payload_strategy,
           from_width=width_strategy, to_width=width_strategy)
    def test_width_conversion_byte_exact(self, payload, from_width, to_width):
        wide = to_axi_stream(payload, from_width)
        narrow = convert_width(wide, to_width)
        assert from_axi_stream(narrow) == payload
        assert all(len(beat.data) * 8 == to_width for beat in narrow)

    def test_512_to_128_beat_count(self):
        beats = convert_width(to_axi_stream(b"\x01" * 128, 512), 128)
        assert len(beats) == 8

    @given(payload_bytes=st.integers(1, 10_000), width=width_strategy)
    def test_beats_needed_matches_framing(self, payload_bytes, width):
        assert beats_needed(payload_bytes, width) == len(
            to_axi_stream(b"\x00" * payload_bytes, width)
        )
