"""Tests for the vendor IP models (MAC / PCIe DMA / DDR / HBM / misc)."""

import pytest

from repro.errors import RegisterAccessError
from repro.hw.ip import (
    DdrTiming,
    DmaEngineKind,
    IpKind,
    i2c_controller,
    inhouse_bdma,
    inhouse_mac_400g,
    intel_emif_ddr4,
    intel_etile_100g,
    intel_ptile_mcdma,
    qspi_flash,
    sensor_block,
    soft_core,
    xilinx_cmac_100g,
    xilinx_ddr4_mig,
    xilinx_hbm_stack,
    xilinx_qdma,
    xilinx_xdma,
    xilinx_xxv_25g,
)
from repro.hw.ip.base import per_lane_params
from repro.hw.ip.ddr import DDR3_1600, DDR4_2400
from repro.hw.protocols.base import ProtocolFamily
from repro.platform.device import PcieGeneration
from repro.platform.vendor import Vendor

ALL_IPS = [
    xilinx_cmac_100g, xilinx_xxv_25g, intel_etile_100g, inhouse_mac_400g,
    xilinx_qdma, xilinx_xdma, intel_ptile_mcdma, inhouse_bdma,
    xilinx_ddr4_mig, intel_emif_ddr4, xilinx_hbm_stack,
    i2c_controller, qspi_flash, sensor_block, soft_core,
]


class TestEveryIp:
    @pytest.mark.parametrize("factory", ALL_IPS)
    def test_register_file_and_init_execute_cleanly(self, factory):
        ip = factory()
        regfile = ip.register_file()
        sequence = ip.init_sequence()
        accesses = sequence.execute(regfile)
        assert accesses >= len(sequence)

    @pytest.mark.parametrize("factory", ALL_IPS)
    def test_fresh_register_files_are_independent(self, factory):
        ip = factory()
        first, second = ip.register_file(), ip.register_file()
        writable = next(
            name for name in first.names()
            if first.register(name).access.name in ("RW",)
        )
        first.write_by_name(writable, 0x5A)
        assert second.read_by_name(writable) != 0x5A or second.register(writable).reset_value == 0x5A

    @pytest.mark.parametrize("factory", ALL_IPS)
    def test_resources_and_loc_nonempty(self, factory):
        ip = factory()
        assert not ip.resources.is_zero
        assert ip.loc.handcraft > 0

    @pytest.mark.parametrize("factory", ALL_IPS)
    def test_datapath_stage_runs_at_ip_parameters(self, factory):
        ip = factory()
        stage = ip.datapath_stage()
        assert stage.clock is ip.clock
        assert stage.data_width_bits == ip.data_width_bits


class TestMacs:
    def test_width_scales_with_rate(self):
        # The paper's 128/512/2048-bit scaling for 25/100/400G.
        assert xilinx_xxv_25g().data_width_bits == 128
        assert xilinx_cmac_100g().data_width_bits == 512
        assert inhouse_mac_400g().data_width_bits == 2_048

    def test_core_bandwidth_exceeds_line_rate(self):
        for factory in (xilinx_xxv_25g, xilinx_cmac_100g, inhouse_mac_400g):
            ip = factory()
            assert ip.bandwidth_gbps > ip.performance_gbps

    def test_vendor_protocols(self):
        assert xilinx_cmac_100g().interfaces[0].family is ProtocolFamily.AXI4_STREAM
        assert intel_etile_100g().interfaces[0].family is ProtocolFamily.AVALON_ST

    def test_cmac_init_polls_alignment_first(self):
        ops = xilinx_cmac_100g().init_sequence().ops
        assert ops[0].kind.value == "poll"
        assert ops[0].register == "STAT_RX_ALIGNED"

    def test_etile_init_is_auto_style(self):
        ops = intel_etile_100g().init_sequence().ops
        assert ops[0].register == "AUTO_INIT"
        assert len(ops) < len(xilinx_cmac_100g().init_sequence().ops)

    def test_config_inventories_differ_across_vendors(self):
        xilinx_keys = set(xilinx_cmac_100g().config_params)
        intel_keys = set(intel_etile_100g().config_params)
        assert not xilinx_keys & intel_keys


class TestDma:
    def test_engine_kinds(self):
        assert xilinx_qdma().dma_engine is DmaEngineKind.SGDMA
        assert xilinx_xdma().dma_engine is DmaEngineKind.BDMA
        assert intel_ptile_mcdma().dma_engine is DmaEngineKind.SGDMA
        assert inhouse_bdma().dma_engine is DmaEngineKind.BDMA

    def test_user_clock_doubles_per_generation(self):
        gen3 = xilinx_qdma(PcieGeneration.GEN3)
        gen4 = xilinx_qdma(PcieGeneration.GEN4)
        assert gen4.clock.freq_mhz == 2 * gen3.clock.freq_mhz

    def test_performance_tracks_lanes(self):
        x8 = xilinx_qdma(PcieGeneration.GEN4, 8)
        assert x8.performance_gbps == pytest.approx(PcieGeneration.GEN4.per_lane_gbps * 8)

    def test_qdma_has_2048_queues(self):
        assert xilinx_qdma().channels == 2_048

    def test_sgdma_init_programs_queue_contexts(self):
        ops = xilinx_qdma().init_sequence().ops
        context_writes = [op for op in ops if op.register.startswith("QID_CTXT_DATA")]
        assert len(context_writes) == 8 * 8  # 8 queues x 8 context slots

    def test_bdma_init_is_short(self):
        assert len(inhouse_bdma().init_sequence()) < 8


class TestDdrTiming:
    def test_row_hit_faster_than_miss(self):
        assert DDR4_2400.row_hit_ps < DDR4_2400.row_miss_ps

    def test_cross_group_gap_shorter_than_same_group(self):
        assert DDR4_2400.cross_group_gap_ps < DDR4_2400.same_group_gap_ps

    def test_ddr3_slower_clock(self):
        assert DDR3_1600.tck_ps > DDR4_2400.tck_ps

    def test_burst_bytes(self):
        assert DDR4_2400.burst_bytes == 64

    def test_row_hit_value(self):
        # CL17 + BL8/2 = 21 cycles at 833 ps.
        assert DDR4_2400.row_hit_ps == 21 * 833


class TestMemoryControllers:
    def test_hbm_has_32_channels(self):
        assert xilinx_hbm_stack().channels == 32

    def test_hbm_outperforms_ddr(self):
        assert xilinx_hbm_stack().performance_gbps > xilinx_ddr4_mig().performance_gbps

    def test_mig_polls_calibration(self):
        assert xilinx_ddr4_mig().init_sequence().ops[0].register == "CAL_STATUS"

    def test_emif_auto_calibrates(self):
        assert intel_emif_ddr4().init_sequence().ops[0].register == "AUTO_CAL"

    def test_byte_lane_parameters_present(self):
        params = xilinx_ddr4_mig().config_params
        assert "C0.DDR4_ByteLane0_Vref" in params


class TestManagementBlocks:
    def test_flash_write_protect_defaults_on(self):
        regfile = qspi_flash().register_file()
        assert regfile.read_by_name("WRITE_PROTECT") == 1

    def test_sensor_reports_sane_temperature(self):
        regfile = sensor_block().register_file()
        assert 0 < regfile.read_by_name("TEMP_C") < 100

    def test_soft_core_kind(self):
        assert soft_core().kind is IpKind.SOFT_CORE

    def test_i2c_vendor_parameterised(self):
        assert i2c_controller(Vendor.INTEL).vendor is Vendor.INTEL


class TestPerLaneParams:
    def test_expansion_count(self):
        params = per_lane_params("lane", 4, {"a": 1, "b": 2})
        assert len(params) == 8
        assert params["lane3_b"] == 2

    def test_zero_lanes_empty(self):
        assert per_lane_params("lane", 0, {"a": 1}) == {}
