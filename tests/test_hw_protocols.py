"""Tests for interface protocol definitions and disparity metrics."""

import pytest

from repro.hw.protocols import (
    Direction,
    InterfaceSpec,
    ProtocolFamily,
    SignalSpec,
    avalon_mm,
    avalon_st,
    axi4_full,
    axi4_lite,
    axi4_stream,
)
from repro.hw.protocols.base import disparity


class TestSignalSpec:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            SignalSpec("bad", 0, Direction.INPUT)

    def test_frozen(self):
        signal = SignalSpec("s", 8, Direction.OUTPUT)
        with pytest.raises(AttributeError):
            signal.width = 16


class TestAxi4Stream:
    def test_signal_count_matches_spec(self):
        # Clock + reset + 9 protocol signals (IHI0022 stream subset).
        assert axi4_stream().signal_count == 11

    def test_tdata_width_parameterised(self):
        assert axi4_stream(data_width_bits=2_048).signal("TDATA").width == 2_048

    def test_tkeep_is_byte_wide(self):
        spec = axi4_stream(data_width_bits=512)
        assert spec.signal("TKEEP").width == 64

    def test_data_width_helper(self):
        assert axi4_stream(data_width_bits=128).data_width_bits() == 128

    def test_tuser_is_sideband(self):
        assert "TUSER" in axi4_stream().sideband


class TestAxi4Full:
    def test_has_all_five_channels(self):
        names = set(axi4_full().signal_names())
        for representative in ("AWADDR", "WDATA", "BRESP", "ARADDR", "RDATA"):
            assert representative in names

    def test_signal_count(self):
        # 2 clock/reset + 13 AW + 6 W + 5 B + 13 AR + 7 R.
        assert axi4_full().signal_count == 46

    def test_strobe_tracks_data_width(self):
        assert axi4_full(data_width_bits=256).signal("WSTRB").width == 32

    def test_unknown_signal_lookup_raises(self):
        with pytest.raises(KeyError):
            axi4_full().signal("NOPE")


class TestAxi4Lite:
    def test_is_axi4_subset(self):
        lite_names = set(axi4_lite().signal_names())
        full_names = set(axi4_full().signal_names())
        # Everything in Lite exists in full AXI4 (no bursts, IDs, users).
        assert lite_names <= full_names

    def test_default_width_is_32(self):
        assert axi4_lite().signal("WDATA").width == 32


class TestAvalon:
    def test_avalon_st_uses_empty_not_keep(self):
        spec = avalon_st()
        names = spec.signal_names()
        assert "empty" in names
        assert "TKEEP" not in names

    def test_empty_width_is_log2_symbols(self):
        # 512 bits = 64 symbols -> 6-bit empty count.
        assert avalon_st(data_width_bits=512).signal("empty").width == 6

    def test_avalon_mm_has_waitrequest_handshake(self):
        names = avalon_mm().signal_names()
        assert "waitrequest" in names
        assert "AWVALID" not in names

    def test_families(self):
        assert avalon_st().family is ProtocolFamily.AVALON_ST
        assert avalon_mm().family is ProtocolFamily.AVALON_MM


class TestDisparity:
    def test_identical_interfaces_have_zero_disparity(self):
        assert disparity(axi4_stream(), axi4_stream("other")) == 0

    def test_cross_protocol_disparity_is_total(self):
        axi = axi4_stream()
        avalon = avalon_st()
        # No signal names are shared between the protocols.
        assert disparity(axi, avalon) == axi.signal_count + avalon.signal_count

    def test_disparity_symmetric(self):
        assert disparity(axi4_full(), avalon_mm()) == disparity(avalon_mm(), axi4_full())

    def test_renamed_keeps_signals(self):
        renamed = axi4_stream().renamed("rx")
        assert renamed.name == "rx"
        assert renamed.signal_count == axi4_stream().signal_count


class TestTotalWidth:
    def test_total_width_sums_signals(self):
        spec = InterfaceSpec(
            "t", ProtocolFamily.CUSTOM,
            (SignalSpec("a", 8, Direction.INPUT), SignalSpec("b", 24, Direction.OUTPUT)),
        )
        assert spec.total_width_bits == 32
