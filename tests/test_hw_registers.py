"""Tests for register files, init sequences, and modification costs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RegisterAccessError
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
    _lcs_length,
    modification_cost,
)


def make_regfile():
    regfile = RegisterFile("mod")
    regfile.add_many([
        Register("CTRL", 0x00),
        Register("STATUS", 0x04, access=Access.RO, reset_value=0x1),
        Register("IRQ", 0x08, access=Access.W1C),
        Register("KEY", 0x0C, access=Access.WO),
        Register("WIDE", 0x10, width=64),
    ])
    return regfile


class TestRegister:
    def test_reset_value_applied(self):
        assert Register("r", 0, reset_value=7).value == 7

    def test_misaligned_offset_rejected(self):
        with pytest.raises(ValueError):
            Register("r", 3)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            Register("r", 0, width=24)

    def test_mask(self):
        assert Register("r", 0, width=16).mask == 0xFFFF


class TestRegisterFile:
    def test_read_write_roundtrip(self):
        regfile = make_regfile()
        regfile.write(0x00, 0xABCD)
        assert regfile.read(0x00) == 0xABCD

    def test_by_name_access(self):
        regfile = make_regfile()
        regfile.write_by_name("CTRL", 5)
        assert regfile.read_by_name("CTRL") == 5

    def test_write_masks_to_width(self):
        regfile = make_regfile()
        regfile.write_by_name("CTRL", 0x1_FFFF_FFFF)
        assert regfile.read_by_name("CTRL") == 0xFFFF_FFFF

    def test_read_only_register_rejects_writes(self):
        with pytest.raises(RegisterAccessError):
            make_regfile().write_by_name("STATUS", 0)

    def test_write_only_register_rejects_reads(self):
        with pytest.raises(RegisterAccessError):
            make_regfile().read_by_name("KEY")

    def test_w1c_clears_set_bits(self):
        regfile = make_regfile()
        regfile.poke("IRQ", 0b1011)
        regfile.write_by_name("IRQ", 0b0010)
        assert regfile.register("IRQ").value == 0b1001

    def test_unmapped_offset_raises(self):
        with pytest.raises(RegisterAccessError):
            make_regfile().read(0x100)

    def test_unknown_name_raises(self):
        with pytest.raises(RegisterAccessError):
            make_regfile().register("NOPE")

    def test_duplicate_offset_rejected(self):
        regfile = make_regfile()
        with pytest.raises(ValueError):
            regfile.add(Register("DUP", 0x00))

    def test_duplicate_name_rejected(self):
        regfile = make_regfile()
        with pytest.raises(ValueError):
            regfile.add(Register("CTRL", 0x40))

    def test_poke_bypasses_access_checks_and_trace(self):
        regfile = make_regfile()
        regfile.poke("STATUS", 0x2)
        assert regfile.register("STATUS").value == 0x2
        assert regfile.trace == []

    def test_trace_records_operations(self):
        regfile = make_regfile()
        regfile.write_by_name("CTRL", 1)
        regfile.read_by_name("CTRL")
        assert regfile.trace == [("write", 0x00, 1), ("read", 0x00, 1)]

    def test_reset_all_restores_values_and_clears_trace(self):
        regfile = make_regfile()
        regfile.write_by_name("CTRL", 9)
        regfile.reset_all()
        assert regfile.read_by_name("CTRL") == 0
        assert len(regfile.trace) == 1  # only the read above

    def test_contains_and_names(self):
        regfile = make_regfile()
        assert "CTRL" in regfile
        assert "NOPE" not in regfile
        assert len(regfile) == 5


class TestInitSequence:
    def test_execute_runs_all_ops(self):
        regfile = make_regfile()
        sequence = InitSequence("init", [
            RegisterOp(OpKind.WRITE, "CTRL", 1),
            RegisterOp(OpKind.READ, "STATUS"),
        ])
        assert sequence.execute(regfile) == 2
        assert regfile.read_by_name("CTRL") == 1

    def test_poll_terminates_when_satisfied(self):
        regfile = make_regfile()
        sequence = InitSequence("init", [
            RegisterOp(OpKind.POLL, "STATUS", value=1, expect_mask=0x1),
        ])
        assert sequence.execute(regfile) == 1

    def test_poll_gives_up_after_max_polls(self):
        regfile = make_regfile()
        sequence = InitSequence("init", [
            RegisterOp(OpKind.POLL, "STATUS", value=0xFF, expect_mask=0xFF),
        ])
        with pytest.raises(RegisterAccessError):
            sequence.execute(regfile, max_polls=4)

    def test_append_chains(self):
        sequence = InitSequence("s").append(RegisterOp(OpKind.WRITE, "CTRL", 1))
        assert len(sequence) == 1


class TestModificationCost:
    def _seq(self, ops):
        return InitSequence("s", [RegisterOp(OpKind.WRITE, name, value)
                                  for name, value in ops])

    def test_identical_sequences_cost_nothing(self):
        a = self._seq([("CTRL", 1), ("IRQ", 2)])
        b = self._seq([("CTRL", 1), ("IRQ", 2)])
        assert modification_cost(a, b) == 0

    def test_value_change_costs_two_lines(self):
        a = self._seq([("CTRL", 1)])
        b = self._seq([("CTRL", 2)])
        assert modification_cost(a, b) == 2  # remove old + add new

    def test_added_op_costs_one_line(self):
        a = self._seq([("CTRL", 1)])
        b = self._seq([("CTRL", 1), ("IRQ", 2)])
        assert modification_cost(a, b) == 1

    def test_reorder_costs_lines(self):
        a = self._seq([("CTRL", 1), ("IRQ", 2)])
        b = self._seq([("IRQ", 2), ("CTRL", 1)])
        assert modification_cost(a, b) == 2

    def test_lcs_basics(self):
        assert _lcs_length([1, 2, 3], [2, 3, 4]) == 2
        assert _lcs_length([], [1]) == 0
        assert _lcs_length([1, 1, 1], [1, 1]) == 2

    @given(st.lists(st.integers(0, 5), max_size=20), st.lists(st.integers(0, 5), max_size=20))
    def test_lcs_bounded_by_shorter_list(self, left, right):
        assert _lcs_length(left, right) <= min(len(left), len(right))

    @given(st.lists(st.integers(0, 5), max_size=20))
    def test_lcs_with_self_is_length(self, items):
        assert _lcs_length(items, items) == len(items)

    @given(st.lists(st.tuples(st.sampled_from(["CTRL", "IRQ"]), st.integers(0, 3)),
                    max_size=12),
           st.lists(st.tuples(st.sampled_from(["CTRL", "IRQ"]), st.integers(0, 3)),
                    max_size=12))
    def test_cost_symmetric_and_bounded(self, left_ops, right_ops):
        a, b = self._seq(left_ops), self._seq(right_ops)
        cost = modification_cost(a, b)
        assert cost == modification_cost(b, a)
        assert 0 <= cost <= len(a.ops) + len(b.ops)
