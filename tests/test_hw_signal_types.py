"""Tests for the unified interface types."""

import pytest

from repro.hw.protocols.base import ProtocolFamily
from repro.hw.signal_types import (
    FAMILY_TO_UNIFIED,
    UnifiedType,
    make_unified_port,
    unified_clock,
    unified_irq,
    unified_mem_map,
    unified_reg,
    unified_reset,
    unified_stream,
)


class TestFamilyMapping:
    def test_stream_families(self):
        assert FAMILY_TO_UNIFIED[ProtocolFamily.AXI4_STREAM] is UnifiedType.STREAM
        assert FAMILY_TO_UNIFIED[ProtocolFamily.AVALON_ST] is UnifiedType.STREAM

    def test_mem_map_families(self):
        assert FAMILY_TO_UNIFIED[ProtocolFamily.AXI4_FULL] is UnifiedType.MEM_MAP
        assert FAMILY_TO_UNIFIED[ProtocolFamily.AVALON_MM] is UnifiedType.MEM_MAP

    def test_reg_family(self):
        assert FAMILY_TO_UNIFIED[ProtocolFamily.AXI4_LITE] is UnifiedType.REG

    def test_custom_has_no_mapping(self):
        assert ProtocolFamily.CUSTOM not in FAMILY_TO_UNIFIED


class TestUnifiedInterfaces:
    def test_stream_has_delimiters(self):
        names = unified_stream().signal_names()
        assert "sos" in names and "eos" in names

    def test_mem_map_has_address_and_size(self):
        names = unified_mem_map().signal_names()
        assert "addr" in names and "size" in names

    def test_reg_is_32_bit(self):
        assert unified_reg().signal("wdata").width == 32

    def test_clock_and_reset_are_arrays(self):
        assert unified_clock(lanes=4).signal_count == 4
        assert unified_reset(lanes=2).signal_count == 2

    def test_irq_exposes_raw_lanes(self):
        assert unified_irq(lanes=3).signal_count == 3

    def test_stream_width_parameterised(self):
        assert unified_stream(data_width_bits=2_048).data_width_bits() == 2_048


class TestMakeUnifiedPort:
    @pytest.mark.parametrize("unified_type", list(UnifiedType))
    def test_factory_covers_all_types(self, unified_type):
        port = make_unified_port(unified_type)
        assert port.unified_type is unified_type

    def test_stream_port_width(self):
        port = make_unified_port(UnifiedType.STREAM, data_width_bits=128)
        assert port.data_width_bits == 128

    def test_reg_port_width_is_32(self):
        assert make_unified_port(UnifiedType.REG).data_width_bits == 32

    def test_clock_port_width_is_one(self):
        assert make_unified_port(UnifiedType.CLOCK).data_width_bits == 1
