"""Integration tests: whole-stack scenarios across modules.

These exercise the paths a platform operator would: deploy every
application on every compatible device, drive control and data planes
together, and inject faults (corrupted packets, wrong toolchains,
overflowing buffers) to check the system degrades loudly, not silently.
"""

import pytest

from repro.adapters.toolchain import BuildFlow
from repro.apps import all_applications
from repro.core.command.codes import CommandCode, RbbId, SrcId
from repro.core.command.driver import CommandDriver
from repro.core.command.packet import CommandPacket
from repro.core.host_software import ControlPlane
from repro.core.lifecycle import ApplicationProject, Lifecycle, PocEstimate
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.errors import ChecksumError, DeploymentError, HarmoniaError
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D, evaluation_devices
from repro.sim.fifo import FifoFullError
from repro.workloads.packets import PacketGenerator


def compatible_devices(app):
    """Devices whose peripherals satisfy the app's demands."""
    demands = app.role().demands
    result = []
    for device in evaluation_devices():
        if demands.needs_memory:
            best = max(
                (p.memory_gbps for p in device.peripherals), default=0.0
            )
            if best < demands.memory_bandwidth_gibps:
                continue
        if demands.needs_network and device.network_gbps < demands.network_gbps:
            continue
        result.append(device)
    return result


class TestEveryAppOnEveryCompatibleDevice:
    @pytest.mark.parametrize("app_index", range(5))
    def test_full_lifecycle(self, app_index):
        app = all_applications()[app_index]
        for device in compatible_devices(app):
            project = ApplicationProject(
                role=app.role(), device=device, poc=PocEstimate(0.8, 8.0)
            )
            Lifecycle(device, tenants=app.role().demands.tenants).run_all(
                project, f"{app.name}-cluster"
            )
            assert project.deployed_cluster == f"{app.name}-cluster"

    @pytest.mark.parametrize("app_index", range(5))
    def test_bring_up_and_status_on_each_device(self, app_index):
        app = all_applications()[app_index]
        for device in compatible_devices(app):
            control = ControlPlane(app.tailored_shell(device))
            control.command_full_init()
            driver = CommandDriver(control.kernel)
            for name in control.shell.rbbs:
                rbb_id = {"network": RbbId.NETWORK, "memory": RbbId.MEMORY,
                          "host": RbbId.HOST}[name]
                result = driver.cmd_read(CommandCode.MODULE_STATUS_READ, int(rbb_id))
                assert result.ok, (app.name, device.name, name)


class TestControlAndDataPlaneTogether:
    def test_traffic_shows_up_in_status_reads(self):
        from repro.apps import Layer4LoadBalancer

        app = Layer4LoadBalancer()
        shell = app.tailored_shell(DEVICE_B)
        network = shell.rbbs["network"]
        packets = PacketGenerator().uniform_stream(500, 512, tenant_count=4)
        network.process_packets(packets)
        snapshot = network.monitor_snapshot()
        assert snapshot.counters["rx_packets"] == 500
        # The control plane reads the same counters through commands.
        control = ControlPlane(shell)
        endpoint = control.kernel.endpoint(int(RbbId.NETWORK), 0)
        endpoint.regfile.poke("STAT_RX_TOTAL_PACKETS", snapshot.counters["rx_packets"])
        driver = CommandDriver(control.kernel)
        result = driver.cmd_read(CommandCode.MODULE_STATUS_READ, int(RbbId.NETWORK))
        assert result.data[0] == 500

    def test_multiple_controllers_share_one_kernel(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        app_driver = CommandDriver(control.kernel, src_id=SrcId.HOST_APPLICATION)
        bmc_driver = CommandDriver(control.kernel, src_id=SrcId.BMC)
        tool_driver = CommandDriver(control.kernel, src_id=SrcId.STANDALONE_TOOL)
        sensor = control.management_instance_id("sensor")
        for driver in (app_driver, bmc_driver, tool_driver):
            result = driver.cmd_read(CommandCode.SENSOR_READ, int(RbbId.MANAGEMENT), sensor)
            assert result.ok
        assert control.kernel.commands_executed == 3


class TestFaultInjection:
    def test_corrupted_command_is_rejected_not_executed(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        packet = CommandPacket(src_id=1, dst_id=1, rbb_id=int(RbbId.HOST),
                               instance_id=0,
                               command_code=int(CommandCode.MODULE_RESET))
        raw = bytearray(packet.encode())
        raw[6] ^= 0xFF
        control.kernel.submit(bytes(raw))
        with pytest.raises(ChecksumError):
            control.kernel.process_one()
        assert control.kernel.endpoint(int(RbbId.HOST), 0).resets == 0

    def test_kernel_buffer_overflow_is_loud(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        packet = CommandPacket(src_id=1, dst_id=1, rbb_id=int(RbbId.HOST),
                               instance_id=0,
                               command_code=int(CommandCode.MODULE_STATUS_READ))
        raw = packet.encode()
        with pytest.raises(FifoFullError):
            for _ in range(control.kernel.buffer.depth + 1):
                control.kernel.submit(raw)

    def test_cross_vendor_build_rejected_before_compile(self):
        intel_shell = build_unified_shell(DEVICE_D)
        with pytest.raises(DeploymentError, match="dependency"):
            BuildFlow(DEVICE_A).build("wrong-vendor", intel_shell.modules())

    def test_failed_command_leaves_module_state_intact(self):
        control = ControlPlane(build_unified_shell(DEVICE_A))
        endpoint = control.kernel.endpoint(int(RbbId.NETWORK), 0)
        before = endpoint.regfile.register("CTRL_RX").value
        driver = CommandDriver(control.kernel)
        result = driver.cmd_write(CommandCode.FLASH_ERASE, int(RbbId.NETWORK), data=(1,))
        assert not result.ok
        assert endpoint.regfile.register("CTRL_RX").value == before


class TestCrossDeviceConsistency:
    def test_same_role_same_command_program_everywhere(self):
        """The paper's portability claim: command programs are identical
        across devices up to the instance-performance knob."""
        from repro.apps import SecGateway

        app = SecGateway()
        signatures = {}
        for device in (DEVICE_A, DEVICE_B, DEVICE_D):
            control = ControlPlane(app.tailored_shell(device))
            trace = control.command_full_init().invocation_signatures()
            # Mask the data payloads (instance selection differs).
            signatures[device.name] = [entry[:4] for entry in trace]
        assert signatures["device-a"] == signatures["device-b"] == signatures["device-d"]

    def test_register_programs_differ_everywhere(self):
        from repro.apps import SecGateway

        app = SecGateway()
        traces = {}
        for device in (DEVICE_A, DEVICE_B, DEVICE_D):
            control = ControlPlane(app.tailored_shell(device))
            traces[device.name] = tuple(control.register_full_init().operation_signatures())
        assert len(set(traces.values())) == 3
