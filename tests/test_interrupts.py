"""Tests for the irq path: vector table, coalescing, MSI timing."""

import pytest

from repro.core.command.timing import CommandPathSimulator
from repro.core.interrupts import MSI_WRITE_PS, InterruptController
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


def make_controller(**bind_kwargs):
    controller = InterruptController()
    controller.bind(0, "network", **bind_kwargs)
    return controller


class TestVectorTable:
    def test_bind_and_raise_delivers(self):
        controller = make_controller()
        controller.raise_event(0)
        controller.simulator.run()
        assert len(controller.deliveries) == 1
        assert controller.deliveries[0].vector == 0

    def test_vector_bounds_checked(self):
        controller = InterruptController(vector_count=4)
        with pytest.raises(ConfigurationError):
            controller.bind(4, "m")

    def test_double_bind_rejected(self):
        controller = make_controller()
        with pytest.raises(ConfigurationError, match="already bound"):
            controller.bind(0, "other")

    def test_unbound_vector_rejected(self):
        with pytest.raises(ConfigurationError, match="not bound"):
            InterruptController().raise_event(3)

    def test_invalid_moderation_rejected(self):
        controller = InterruptController()
        with pytest.raises(ConfigurationError):
            controller.bind(0, "m", coalesce_count=0)


class TestMasking:
    def test_masked_vector_suppresses_delivery(self):
        controller = make_controller()
        controller.mask(0)
        controller.raise_event(0)
        controller.simulator.run()
        assert controller.deliveries == []
        assert controller.suppressed_while_masked == 1

    def test_unmask_delivers_pending(self):
        controller = make_controller()
        controller.mask(0)
        controller.raise_event(0)
        controller.raise_event(0)
        controller.unmask(0)
        controller.simulator.run()
        assert len(controller.deliveries) == 1
        assert controller.deliveries[0].events_coalesced == 2


class TestCoalescing:
    def test_count_moderation_batches_events(self):
        controller = make_controller(coalesce_count=4)
        for _ in range(8):
            controller.raise_event(0)
        controller.simulator.run()
        assert len(controller.deliveries) == 2
        assert all(d.events_coalesced == 4 for d in controller.deliveries)

    def test_time_moderation_flushes_partial_batch(self):
        controller = make_controller(coalesce_count=100, coalesce_time_ps=1_000_000)
        controller.raise_event(0)
        controller.raise_event(0)
        controller.simulator.run()
        assert len(controller.deliveries) == 1
        assert controller.deliveries[0].events_coalesced == 2
        # Batch waited out the moderation timer before the MSI.
        assert controller.deliveries[0].latency_ps >= 1_000_000

    def test_rate_reduction_metric(self):
        controller = make_controller(coalesce_count=8)
        for _ in range(32):
            controller.raise_event(0)
        controller.simulator.run()
        assert controller.interrupt_rate_reduction(0) == 8.0

    def test_no_moderation_means_one_msi_per_event(self):
        controller = make_controller()
        simulator = controller.simulator
        for index in range(5):
            simulator.schedule_at(index * 10_000_000,
                                  lambda: controller.raise_event(0))
        simulator.run()
        assert len(controller.deliveries) == 5


class TestLatency:
    def test_unmoderated_delivery_is_one_msi_write(self):
        controller = make_controller()
        controller.raise_event(0)
        controller.simulator.run()
        assert controller.deliveries[0].latency_ps == MSI_WRITE_PS

    def test_irq_path_beats_polled_command_path(self):
        """Why the raw irq type exists: notification in one PCIe write
        versus a full command round trip."""
        controller = make_controller()
        controller.raise_event(0)
        controller.simulator.run()
        irq_latency_us = controller.deliveries[0].latency_ps / 1e6
        command_rtt_us = CommandPathSimulator().round_trip_us(register_accesses=1)
        assert irq_latency_us < command_rtt_us / 2
