"""Tests for shell manifests (serialise / rebuild / audit)."""

import json

import pytest

from repro.apps import HostNetwork, RetrievalApp, SecGateway, all_applications
from repro.core.manifest import (
    MANIFEST_VERSION,
    from_json,
    rebuild_from_manifest,
    shell_manifest,
    to_json,
)
from repro.errors import ConfigurationError
from repro.platform.catalog import DEVICE_A, DEVICE_D


class TestSerialisation:
    def test_manifest_contains_the_essentials(self):
        shell = SecGateway().tailored_shell(DEVICE_A)
        manifest = shell_manifest(shell)
        assert manifest["device"] == "device-a"
        assert manifest["role"]["name"] == "sec-gateway"
        assert manifest["rbbs"]["network"]["instance"] == "100g-xilinx"
        assert manifest["manifest_version"] == MANIFEST_VERSION

    def test_json_roundtrips_as_data(self):
        shell = HostNetwork().tailored_shell(DEVICE_D)
        text = to_json(shell)
        assert json.loads(text) == shell_manifest(shell)

    def test_ex_function_states_recorded(self):
        shell = SecGateway().tailored_shell(DEVICE_A)
        functions = shell_manifest(shell)["rbbs"]["network"]["ex_functions"]
        assert functions["packet_filter"] is False   # no multicast demand
        assert "flow_director" in functions

    def test_manifest_is_deterministic(self):
        first = to_json(SecGateway().tailored_shell(DEVICE_A))
        second = to_json(SecGateway().tailored_shell(DEVICE_A))
        assert first == second


class TestRebuild:
    @pytest.mark.parametrize("app_index", range(5))
    def test_rebuild_matches_original(self, app_index):
        app = all_applications()[app_index]
        original = app.tailored_shell(DEVICE_A)
        rebuilt = from_json(to_json(original))
        assert shell_manifest(rebuilt) == shell_manifest(original)
        assert rebuilt.resources() == original.resources()

    def test_rebuild_on_other_device_uses_manifest_device(self):
        original = RetrievalApp().tailored_shell(DEVICE_A)
        rebuilt = from_json(to_json(original))
        assert rebuilt.device.name == "device-a"

    def test_wrong_version_rejected(self):
        manifest = shell_manifest(SecGateway().tailored_shell(DEVICE_A))
        manifest["manifest_version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            rebuild_from_manifest(manifest)

    def test_tampered_manifest_detected(self):
        manifest = shell_manifest(SecGateway().tailored_shell(DEVICE_A))
        manifest["rbbs"]["network"]["instance"] = "400g-inhouse"
        with pytest.raises(ConfigurationError, match="disagrees"):
            rebuild_from_manifest(manifest)

    def test_property_list_tamper_detected(self):
        manifest = shell_manifest(SecGateway().tailored_shell(DEVICE_A))
        manifest["role_oriented_properties"].append("network.backdoor")
        with pytest.raises(ConfigurationError, match="disagrees"):
            rebuild_from_manifest(manifest)
