"""Tests for the memory march-pattern engine (Board Test substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.march_test import (
    FaultKind,
    InjectedFault,
    MarchTester,
    MemoryModel,
)
from repro.errors import ConfigurationError


class TestMemoryModel:
    def test_healthy_memory_roundtrips(self):
        memory = MemoryModel(256)
        memory.write(10, 0xA5)
        assert memory.read(10) == 0xA5

    def test_stuck_at_zero_clears_bit(self):
        memory = MemoryModel(64, faults=(
            InjectedFault(FaultKind.STUCK_AT_ZERO, address=5, bit=3),))
        memory.write(5, 0xFF)
        assert memory.read(5) == 0xFF & ~0x08

    def test_stuck_at_one_sets_bit(self):
        memory = MemoryModel(64, faults=(
            InjectedFault(FaultKind.STUCK_AT_ONE, address=7, bit=0),))
        memory.write(7, 0x00)
        assert memory.read(7) == 0x01

    def test_address_alias_shadows_another_cell(self):
        memory = MemoryModel(64, faults=(
            InjectedFault(FaultKind.ADDRESS_ALIAS, address=8, alias_of=0),))
        memory.write(0, 0x11)
        memory.write(8, 0x22)   # lands on address 0
        assert memory.read(0) == 0x22
        assert memory.read(8) == 0x22

    def test_fault_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(16, faults=(InjectedFault(FaultKind.STUCK_AT_ONE, 99),))

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(0)


class TestMarchPatterns:
    def test_healthy_memory_passes_everything(self):
        tester = MarchTester(MemoryModel(512))
        assert tester.run_all() == []
        assert tester.passed
        assert tester.reads > 0 and tester.writes > 0

    def test_walking_ones_catches_stuck_at_zero(self):
        memory = MemoryModel(256, faults=(
            InjectedFault(FaultKind.STUCK_AT_ZERO, address=100, bit=6),))
        tester = MarchTester(memory)
        tester.run_walking(ones=True)
        assert not tester.passed
        assert any(fault.address == 100 for fault in tester.faults)

    def test_walking_zeros_catches_stuck_at_one(self):
        memory = MemoryModel(256, faults=(
            InjectedFault(FaultKind.STUCK_AT_ONE, address=33, bit=2),))
        tester = MarchTester(memory)
        tester.run_walking(ones=False)
        assert any(fault.pattern == "walking-zeros" and fault.address == 33
                   for fault in tester.faults)

    def test_address_in_address_catches_aliasing(self):
        memory = MemoryModel(512, faults=(
            InjectedFault(FaultKind.ADDRESS_ALIAS, address=200, alias_of=40),))
        tester = MarchTester(memory)
        tester.run_address_in_address()
        assert not tester.passed
        faulty_addresses = {fault.address for fault in tester.faults}
        assert faulty_addresses & {40, 200}

    def test_mats_plus_catches_stuck_bits(self):
        memory = MemoryModel(128, faults=(
            InjectedFault(FaultKind.STUCK_AT_ZERO, address=64, bit=7),))
        tester = MarchTester(memory)
        tester.run_mats_plus()
        assert any(fault.pattern == "mats+" for fault in tester.faults)

    def test_fault_summary_groups_by_pattern(self):
        memory = MemoryModel(64, faults=(
            InjectedFault(FaultKind.STUCK_AT_ONE, address=1, bit=1),))
        tester = MarchTester(memory)
        tester.run_all()
        summary = tester.fault_summary()
        assert summary and all(count > 0 for count in summary.values())

    def test_stride_reduces_coverage_cost(self):
        fine = MarchTester(MemoryModel(1_024), stride=1)
        coarse = MarchTester(MemoryModel(1_024), stride=16)
        fine.run_address_in_address()
        coarse.run_address_in_address()
        assert coarse.reads < fine.reads

    @settings(max_examples=20, deadline=None)
    @given(address=st.integers(0, 255), bit=st.integers(0, 7),
           stuck_one=st.booleans())
    def test_any_single_stuck_bit_is_caught(self, address, bit, stuck_one):
        kind = FaultKind.STUCK_AT_ONE if stuck_one else FaultKind.STUCK_AT_ZERO
        memory = MemoryModel(256, faults=(InjectedFault(kind, address, bit),))
        tester = MarchTester(memory)
        tester.run_all()
        assert not tester.passed
        assert any(fault.address == address for fault in tester.faults)
