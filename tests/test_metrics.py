"""Tests for the metrics package (resources, LoC, configs, modifications)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceExhaustedError
from repro.hw.protocols.axi import axi4_stream
from repro.hw.protocols.avalon import avalon_st
from repro.metrics.configs import (
    config_disparity,
    interface_disparity,
    simplification_factor,
)
from repro.metrics.loc import (
    LocInventory,
    Migration,
    aggregate_reuse,
    reuse_rate,
    shell_fraction,
)
from repro.metrics.modifications import reduction_factor, trace_modifications
from repro.metrics.resources import (
    ResourceBudget,
    ResourceUsage,
    reduction_fraction,
    utilisation_percent,
)

usage_strategy = st.builds(
    ResourceUsage,
    lut=st.integers(0, 10 ** 6), ff=st.integers(0, 10 ** 6),
    bram_36k=st.integers(0, 5_000), uram=st.integers(0, 1_000),
    dsp=st.integers(0, 10_000),
)


class TestResourceUsage:
    def test_addition(self):
        total = ResourceUsage(lut=10, ff=20) + ResourceUsage(lut=1, dsp=3)
        assert total == ResourceUsage(lut=11, ff=20, dsp=3)

    def test_subtraction_floors_at_zero(self):
        assert (ResourceUsage(lut=5) - ResourceUsage(lut=9)).lut == 0

    def test_scaled(self):
        assert ResourceUsage(lut=100).scaled(0.5).lut == 50

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(lut=-1)

    def test_total(self):
        total = ResourceUsage.total([ResourceUsage(lut=1), ResourceUsage(lut=2)])
        assert total.lut == 3

    def test_is_zero(self):
        assert ResourceUsage().is_zero
        assert not ResourceUsage(ff=1).is_zero

    @given(usage_strategy, usage_strategy)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a


class TestResourceBudget:
    BUDGET = ResourceBudget(lut=1_000, ff=2_000, bram_36k=10, uram=0, dsp=100)

    def test_utilisation(self):
        util = self.BUDGET.utilisation(ResourceUsage(lut=500))
        assert util["lut"] == pytest.approx(0.5)

    def test_using_absent_resource_raises(self):
        with pytest.raises(ResourceExhaustedError):
            self.BUDGET.utilisation(ResourceUsage(uram=1))

    def test_zero_usage_of_absent_resource_is_fine(self):
        assert self.BUDGET.utilisation(ResourceUsage())["uram"] == 0.0

    def test_check_fits_overflow(self):
        with pytest.raises(ResourceExhaustedError, match="lut"):
            self.BUDGET.check_fits(ResourceUsage(lut=1_001))

    def test_headroom(self):
        headroom = self.BUDGET.headroom(ResourceUsage(lut=400))
        assert headroom.lut == 600

    def test_utilisation_percent(self):
        assert utilisation_percent(ResourceUsage(lut=250), self.BUDGET)["lut"] == 25.0

    def test_reduction_fraction(self):
        red = reduction_fraction(ResourceUsage(lut=100), ResourceUsage(lut=80))
        assert red["lut"] == pytest.approx(0.2)

    def test_reduction_fraction_zero_base(self):
        assert reduction_fraction(ResourceUsage(), ResourceUsage())["lut"] == 0.0


class TestLocInventory:
    INV = LocInventory(common=600, vendor_specific=150, device_specific=250, generated=900)

    def test_handcraft_excludes_generated(self):
        assert self.INV.handcraft == 1_000
        assert self.INV.total == 1_900

    def test_reuse_by_migration_kind(self):
        assert reuse_rate(self.INV, Migration.SAME_DEVICE) == 1.0
        assert reuse_rate(self.INV, Migration.CROSS_CHIP) == pytest.approx(0.75)
        assert reuse_rate(self.INV, Migration.CROSS_VENDOR) == pytest.approx(0.6)

    def test_cross_vendor_reuses_less_than_cross_chip(self):
        assert (self.INV.reused_on(Migration.CROSS_VENDOR)
                <= self.INV.reused_on(Migration.CROSS_CHIP))

    def test_redeveloped_complements_reused(self):
        for migration in Migration:
            assert (self.INV.reused_on(migration) + self.INV.redeveloped_on(migration)
                    == self.INV.handcraft)

    def test_no_handcraft_reuse_undefined(self):
        with pytest.raises(ValueError):
            reuse_rate(LocInventory(generated=100), Migration.CROSS_CHIP)

    def test_shell_fraction(self):
        shell = LocInventory(common=870)
        role = LocInventory(common=130)
        assert shell_fraction(shell, role) == pytest.approx(0.87)

    def test_aggregate_reuse_weighted(self):
        inventories = {
            "a": LocInventory(common=100),
            "b": LocInventory(device_specific=100),
        }
        assert aggregate_reuse(inventories, Migration.CROSS_VENDOR) == pytest.approx(0.5)

    def test_negative_loc_rejected(self):
        with pytest.raises(ValueError):
            LocInventory(common=-1)

    @given(st.integers(0, 10 ** 5), st.integers(0, 10 ** 5), st.integers(0, 10 ** 5))
    def test_reuse_rate_within_unit_interval(self, common, vendor, device):
        inventory = LocInventory(common, vendor, device)
        if inventory.handcraft == 0:
            return
        for migration in Migration:
            assert 0.0 <= reuse_rate(inventory, migration) <= 1.0


class TestConfigMetrics:
    def test_config_disparity_counts_missing_and_changed(self):
        left = {"a": 1, "b": 2, "c": 3}
        right = {"b": 2, "c": 9, "d": 4}
        # a missing (1) + d missing (1) + c changed (1).
        assert config_disparity(left, right) == 3

    def test_identical_configs_zero(self):
        assert config_disparity({"a": 1}, {"a": 1}) == 0

    def test_interface_disparity_pairs_in_order(self):
        assert interface_disparity([axi4_stream()], [axi4_stream("x")]) == 0

    def test_interface_disparity_unpaired_counts_fully(self):
        extra = avalon_st()
        assert interface_disparity([axi4_stream()], [axi4_stream("x"), extra]) == extra.signal_count

    def test_simplification_factor(self):
        assert simplification_factor(100, 10) == pytest.approx(10.0)

    def test_simplification_needs_positive_exposed(self):
        with pytest.raises(ValueError):
            simplification_factor(100, 0)


class TestModifications:
    def test_trace_modifications_matches_register_semantics(self):
        old = [("write", "m", "A", 1), ("write", "m", "B", 2)]
        new = [("write", "m", "A", 1), ("write", "m", "B", 3)]
        assert trace_modifications(old, new) == 2

    def test_reduction_factor_floors_command_side_at_one(self):
        assert reduction_factor(100, 0) == 100.0
        assert reduction_factor(100, 2) == 50.0

    @given(st.lists(st.integers(0, 3), max_size=15))
    def test_identical_traces_cost_zero(self, trace):
        assert trace_modifications(trace, trace) == 0
