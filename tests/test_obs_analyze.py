"""Trace analytics: critical path, flame fold, diff, tolerant parsing.

Traces are built record-by-record so every expectation is exact; the
determinism pin at the bottom feeds the same trace twice and demands
identical analytics -- the property the CLI tables inherit.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.analyze import (
    TraceAnalysis,
    analyze_trace,
    diff_traces,
    load_trace,
    parse_trace,
)


def _b(span_id, name, ts, parent=None, **attrs):
    record = {"type": "B", "id": span_id, "name": name, "ts_ps": ts}
    if parent is not None:
        record["parent"] = parent
    if attrs:
        record["attrs"] = attrs
    return record


def _e(span_id, name, ts):
    return {"type": "E", "id": span_id, "name": name, "ts_ps": ts}


def _x(span_id, name, ts, dur, parent=None):
    record = {"type": "X", "id": span_id, "name": name, "ts_ps": ts,
              "dur_ps": dur}
    if parent is not None:
        record["parent"] = parent
    return record


def _request_trace():
    """root(0..100) -> fast(0..20), slow(10..90) -> leaf(20..80)."""
    return [
        _b(0, "root", 0),
        _x(1, "fast", 0, 20, parent=0),
        _b(2, "slow", 10, parent=0),
        _x(3, "leaf", 20, 60, parent=2),
        {"type": "I", "id": 4, "name": "marker", "ts_ps": 50, "parent": 2},
        _e(2, "slow", 90),
        _e(0, "root", 100),
    ]


class TestForest:
    def test_tree_reconstruction(self):
        analysis = TraceAnalysis(_request_trace())
        assert len(analysis) == 5
        assert [node.name for node in analysis.roots] == ["root"]
        root = analysis.roots[0]
        assert [child.name for child in root.children] == ["fast", "slow"]
        assert analysis.final_ts == 100

    def test_unclosed_span_closes_at_final_ts(self):
        analysis = TraceAnalysis([_b(0, "root", 0), _x(1, "work", 0, 70,
                                                       parent=0)])
        root = analysis.roots[0]
        assert root.end_ps == 70
        assert root.closed is False
        assert root.duration_ps == 70

    def test_unknown_parent_becomes_a_root(self):
        analysis = TraceAnalysis([_x(5, "orphan", 0, 10, parent=99)])
        assert [node.name for node in analysis.roots] == ["orphan"]

    def test_instants_carry_no_duration(self):
        analysis = TraceAnalysis(_request_trace())
        marker = analysis.nodes[4]
        assert marker.kind == "instant"
        assert marker.duration_ps == 0


class TestCriticalPath:
    def test_follows_latest_ending_children(self):
        analysis = TraceAnalysis(_request_trace())
        assert [node.name for node in analysis.critical_path()] == \
            ["root", "slow", "leaf"]

    def test_latest_ending_root_wins_in_a_forest(self):
        analysis = TraceAnalysis([_x(0, "early", 0, 10),
                                  _x(1, "late", 5, 50)])
        assert [node.name for node in analysis.critical_path()] == ["late"]

    def test_instants_never_appear(self):
        records = _request_trace() + [
            {"type": "I", "id": 9, "name": "late-marker", "ts_ps": 99,
             "parent": 0}]
        path = TraceAnalysis(records).critical_path()
        assert all(node.kind != "instant" for node in path)

    def test_empty_trace(self):
        assert TraceAnalysis([]).critical_path() == []


class TestFlame:
    def test_self_time_subtracts_children(self):
        analysis = TraceAnalysis(_request_trace())
        rows = {name: (calls, total, self_ps)
                for name, calls, total, self_ps in analysis.flame()}
        assert rows["root"] == (1, 100, 0)     # fully covered by children
        assert rows["slow"] == (1, 80, 20)     # 80 minus leaf's 60
        assert rows["leaf"] == (1, 60, 60)

    def test_fold_merges_by_name_and_orders_by_self(self):
        records = [_x(0, "hot", 0, 40), _x(1, "hot", 40, 40),
                   _x(2, "cold", 80, 10)]
        rows = TraceAnalysis(records).flame()
        assert rows[0] == ("hot", 2, 80, 80)
        assert rows[1] == ("cold", 1, 10, 10)
        assert TraceAnalysis(records).flame(top=1) == [("hot", 2, 80, 80)]

    def test_to_json_round_trips(self):
        payload = TraceAnalysis(_request_trace()).to_json()
        assert payload["spans"] == 5
        assert payload["roots"] == 1
        assert [row["name"] for row in payload["critical_path"]] == \
            ["root", "slow", "leaf"]
        json.dumps(payload)    # must be serialisable as-is


class TestDiff:
    def test_ranks_by_absolute_total_delta(self):
        before = TraceAnalysis([_x(0, "a", 0, 100), _x(1, "b", 0, 10)])
        after = TraceAnalysis([_x(0, "a", 0, 40), _x(1, "b", 0, 15),
                               _x(2, "c", 0, 5)])
        rows = diff_traces(before, after)
        assert [row["name"] for row in rows] == ["a", "b", "c"]
        assert rows[0]["total_delta_ps"] == -60
        assert rows[1]["calls_before"] == 1
        assert rows[2]["calls_before"] == 0     # new span joins with zeros
        assert diff_traces(before, after, top=1) == rows[:1]

    def test_identical_traces_diff_to_zero_deltas(self):
        analysis = TraceAnalysis(_request_trace())
        rows = diff_traces(analysis, analysis)
        assert all(row["total_delta_ps"] == 0 for row in rows)
        assert all(row["self_delta_ps"] == 0 for row in rows)


class TestParsing:
    def test_parse_skips_blank_lines(self):
        text = "\n" + json.dumps(_x(0, "a", 0, 1)) + "\n\n"
        assert len(parse_trace(text)) == 1

    def test_junk_json_is_loud(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            parse_trace(json.dumps(_x(0, "a", 0, 1)) + "\n{broken")

    def test_non_record_json_is_loud(self):
        with pytest.raises(ConfigurationError, match="not a trace record"):
            parse_trace('{"no": "type"}')

    def test_load_trace_missing_file_is_loud(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_trace(str(tmp_path / "absent.jsonl"))

    def test_load_trace_reads_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_x(0, "a", 0, 1)) + "\n")
        analysis = analyze_trace(load_trace(str(path)))
        assert [node.name for node in analysis.roots] == ["a"]


def test_analytics_are_deterministic():
    records = _request_trace()
    assert TraceAnalysis(records).to_json() == \
        TraceAnalysis(list(records)).to_json()
