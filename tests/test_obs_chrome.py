"""Chrome/Perfetto ``trace_event`` export: golden-shape and determinism.

The export must open in ``chrome://tracing``: every event carries
ph/ts/pid/tid, B/E pairs balance per track, timestamps are monotonic in
file order, and two identical runs serialise byte for byte.
"""

import json
from collections import Counter as TallyCounter

from repro.obs.chrome import (
    DEFAULT_PROCESS,
    chrome_trace_events,
    export_chrome_json,
    write_chrome_json,
)
from repro.runtime import SimContext
from repro.runtime.trace import TraceBus


def _bus(**kwargs) -> TraceBus:
    clock = {"now": 0}
    bus = TraceBus(clock_ps=lambda: clock["now"], enabled=True, **kwargs)
    bus._test_clock = clock
    return bus


def _sample_bus() -> TraceBus:
    bus = _bus()
    outer = bus.begin("engine.run", device="device-a")
    bus._test_clock["now"] = 1_000
    inner = bus.begin("engine.dispatch")
    bus.complete("stage.occupancy", 1_000, 3_000, stage="parser")
    bus.instant("fifo.drop", reason="full")
    bus._test_clock["now"] = 4_000
    bus.end(inner)
    bus._test_clock["now"] = 5_000
    bus.end(outer, packets=7)
    return bus


def _traced_sweep_context(packets=120, sizes=(64, 256)):
    from repro.apps import all_applications
    from repro.platform.catalog import device_by_name

    app = next(app for app in all_applications()
               if app.name == "sec-gateway")
    context = SimContext(name="chrome", trace=True)
    app.measure(device_by_name("device-a"), packet_sizes=sizes,
                packets_per_point=packets, context=context)
    return context


class TestEventShape:
    def test_every_event_has_required_fields(self):
        events = chrome_trace_events(_sample_bus().records)
        assert events, "export produced no events"
        for event in events:
            assert event["ph"] in ("B", "E", "X", "I", "M")
            assert "ts" in event and "pid" in event and "tid" in event
            assert "name" in event

    def test_phase_mapping(self):
        events = chrome_trace_events(_sample_bus().records)
        phases = TallyCounter(event["ph"] for event in events)
        assert phases["B"] == 2 and phases["E"] == 2
        assert phases["X"] == 1 and phases["I"] == 1
        x_event = next(event for event in events if event["ph"] == "X")
        assert x_event["dur"] == 2_000 / 1e6
        i_event = next(event for event in events if event["ph"] == "I")
        assert i_event["s"] == "t"

    def test_timestamps_are_microseconds_and_exact(self):
        bus = _bus()
        bus.instant("tick", ts_ps=5)
        events = chrome_trace_events(bus.records)
        tick = next(event for event in events if event["name"] == "tick")
        assert tick["ts"] == 5e-06  # 5 ps exactly, no float noise

    def test_args_carry_span_id_parent_and_attrs(self):
        events = chrome_trace_events(_sample_bus().records)
        begin = next(event for event in events
                     if event["ph"] == "B" and event["name"] == "engine.run")
        assert begin["args"]["span_id"] == 0
        assert begin["args"]["device"] == "device-a"
        child = next(event for event in events
                     if event["name"] == "engine.dispatch"
                     and event["ph"] == "B")
        assert child["args"]["parent"] == 0


class TestTracks:
    def test_pid_from_device_attr_tid_from_name_head(self):
        events = chrome_trace_events(_sample_bus().records)
        processes = {event["args"]["name"]: event["pid"]
                     for event in events
                     if event["ph"] == "M"
                     and event["name"] == "process_name"}
        assert "device-a" in processes
        assert DEFAULT_PROCESS in processes
        threads = {(event["pid"], event["args"]["name"])
                   for event in events
                   if event["ph"] == "M" and event["name"] == "thread_name"}
        assert (processes["device-a"], "engine") in threads

    def test_begin_end_balanced_per_track(self):
        context = _traced_sweep_context()
        events = chrome_trace_events(context.trace.records)
        per_track: TallyCounter = TallyCounter()
        for event in events:
            track = (event["pid"], event["tid"])
            if event["ph"] == "B":
                per_track[track] += 1
            elif event["ph"] == "E":
                per_track[track] -= 1
        assert all(count == 0 for count in per_track.values()), per_track

    def test_unclosed_span_gets_synthetic_end(self):
        bus = _bus()
        bus.begin("engine.run")
        bus._test_clock["now"] = 9_000
        bus.instant("late")
        events = chrome_trace_events(bus.records)
        synthetic = [event for event in events
                     if event["ph"] == "E"
                     and event["args"].get("synthetic_end")]
        assert len(synthetic) == 1
        assert synthetic[0]["ts"] == 9_000 / 1e6  # closed at trace end


class TestGoldenExport:
    def test_valid_json_and_monotonic_ts(self):
        context = _traced_sweep_context()
        text = export_chrome_json(context.trace)
        events = json.loads(text)
        assert isinstance(events, list) and events
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)

    def test_byte_identical_across_runs(self):
        first = export_chrome_json(_traced_sweep_context().trace)
        second = export_chrome_json(_traced_sweep_context().trace)
        assert first == second

    def test_write_is_atomic_and_counts_events(self, tmp_path):
        bus = _sample_bus()
        target = tmp_path / "trace.json"
        count = write_chrome_json(bus, str(target))
        events = json.loads(target.read_text(encoding="utf-8"))
        assert count == len(events)
        assert not list(tmp_path.glob("*.tmp"))

    def test_accepts_raw_record_list(self):
        bus = _sample_bus()
        assert export_chrome_json(bus.records) == export_chrome_json(bus)
