"""Self-profiler: cumulative/self accounting and the two-ledger rule.

The profiler measures the simulator *process* (wall-clock), never the
modelled hardware (sim-time); a fake clock makes its arithmetic exact.
"""

import pytest

from repro.obs.profiler import (
    SelfProfiler,
    active_profiler,
    phase,
)


class FakeClock:
    """A controllable perf_counter stand-in."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return SelfProfiler(clock=clock)


class TestAccounting:
    def test_flat_phase(self, profiler, clock):
        with profiler.phase("engine.run"):
            clock.advance(2.0)
        stats = profiler.stats("engine.run")
        assert stats.calls == 1
        assert stats.cumulative_s == pytest.approx(2.0)
        assert stats.self_s == pytest.approx(2.0)

    def test_nested_child_time_subtracted_from_self(self, profiler, clock):
        with profiler.phase("outer"):
            clock.advance(1.0)
            with profiler.phase("inner"):
                clock.advance(3.0)
            clock.advance(1.0)
        outer = profiler.stats("outer")
        inner = profiler.stats("inner")
        assert outer.cumulative_s == pytest.approx(5.0)
        assert outer.self_s == pytest.approx(2.0)
        assert inner.cumulative_s == pytest.approx(3.0)
        assert inner.self_s == pytest.approx(3.0)

    def test_self_times_sum_to_total(self, profiler, clock):
        with profiler.phase("a"):
            clock.advance(1.0)
            with profiler.phase("b"):
                clock.advance(2.0)
        with profiler.phase("c"):
            clock.advance(4.0)
        assert profiler.total_s == pytest.approx(7.0)

    def test_recursion_counts_cumulative_once(self, profiler, clock):
        with profiler.phase("recurse"):
            clock.advance(1.0)
            with profiler.phase("recurse"):
                clock.advance(2.0)
        stats = profiler.stats("recurse")
        assert stats.calls == 2
        # Only the outermost activation adds to cumulative ...
        assert stats.cumulative_s == pytest.approx(3.0)
        # ... while self-time still sums to the real wall-clock.
        assert stats.self_s == pytest.approx(3.0)

    def test_out_of_order_exit_raises(self, profiler):
        outer = profiler.phase("outer")
        inner = profiler.phase("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError):
            outer.__exit__(None, None, None)

    def test_table_ranked_by_cumulative_then_name(self, profiler, clock):
        for name, seconds in (("slow", 3.0), ("fast", 1.0), ("mid", 2.0)):
            with profiler.phase(name):
                clock.advance(seconds)
        assert [stats.name for stats in profiler.table()] == [
            "slow", "mid", "fast"]
        assert [stats.name for stats in profiler.table(top=2)] == [
            "slow", "mid"]

    def test_to_json_and_reset(self, profiler, clock):
        with profiler.phase("a"):
            clock.advance(1.0)
        payload = profiler.to_json()
        assert payload["a"]["calls"] == 1
        assert payload["a"]["self_s"] == pytest.approx(1.0)
        profiler.reset()
        assert profiler.to_json() == {}

    def test_reset_with_open_phase_rejected(self, profiler):
        frame = profiler.phase("open")
        frame.__enter__()
        with pytest.raises(RuntimeError):
            profiler.reset()
        frame.__exit__(None, None, None)


class TestActivation:
    def test_module_phase_is_noop_without_profiler(self):
        assert active_profiler() is None
        with phase("anything"):
            pass  # must not raise, must not record anywhere

    def test_module_phase_reports_to_active_profiler(self, clock):
        profiler = SelfProfiler(clock=clock)
        with profiler:
            assert active_profiler() is profiler
            with phase("hot"):
                clock.advance(1.5)
        assert active_profiler() is None
        assert profiler.stats("hot").cumulative_s == pytest.approx(1.5)

    def test_second_activation_rejected(self):
        with SelfProfiler():
            with pytest.raises(RuntimeError):
                SelfProfiler().activate()

    def test_instrumented_phases_show_up_end_to_end(self):
        from repro.runtime import SimContext
        from repro.runtime.fleet import FleetSpec, run_fleet
        from repro.runtime.sweep import SweepPlan, run_plan

        plan = SweepPlan(apps=("sec-gateway",), devices=("device-a",),
                         packet_sizes=(64,), packets_per_point=50)
        profiler = SelfProfiler()
        with profiler:
            run_plan(plan, use_cache=False)               # fused planner
            run_plan(plan, use_cache=False, fuse=False)   # per-point path
            run_fleet(FleetSpec(flow_count=5_000, device_count=16),
                      context=SimContext(name="profiled"))
        names = {stats.name for stats in profiler.table(top=0)}
        assert {"sweep.fused", "sweep.point", "vector.kernel",
                "fleet.policy"} <= names

    def test_profiler_never_touches_sim_time(self):
        from repro.runtime import SimContext
        from repro.runtime.fleet import FleetSpec, run_fleet

        spec = FleetSpec(flow_count=5_000, device_count=16)
        bare = run_fleet(spec, context=SimContext(name="bare"))
        with SelfProfiler():
            profiled = run_fleet(spec, context=SimContext(name="prof"))
        assert [policy.p99_ns for policy in bare.policies] == [
            policy.p99_ns for policy in profiled.policies]
