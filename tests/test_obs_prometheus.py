"""Prometheus exposition: shape, kind mapping, and determinism.

The shape contract: exactly one ``# HELP`` and one ``# TYPE`` line per
family, no duplicate series, counters carry the ``_total`` suffix,
summaries expose quantile series plus ``_sum``/``_count``.
"""

import re
from collections import Counter as TallyCounter

from repro.obs.prometheus import (
    QUANTILES,
    to_prometheus_text,
    write_prometheus_text,
)
from repro.runtime import MetricsRegistry

_SERIES = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.increment("engine.events", 42)
    registry.set_gauge("fleet.round-robin.utilization_mean", 0.71)
    registry.set_gauge("fleet.least-loaded.utilization_mean", 0.66)
    for sample in (100, 200, 300, 400, 1_000):
        registry.observe("fleet.round-robin.latency_ps", sample)
    return registry


def _parse(text: str):
    helps: TallyCounter = TallyCounter()
    types: TallyCounter = TallyCounter()
    series = []
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helps[line.split()[2]] += 1
        elif line.startswith("# TYPE "):
            types[line.split()[2]] += 1
        else:
            match = _SERIES.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            series.append((match.group(1), match.group(2) or "",
                           match.group(3)))
    return helps, types, series


class TestShape:
    def test_help_and_type_once_per_family(self):
        helps, types, _series = _parse(to_prometheus_text(_registry()))
        assert helps and set(helps) == set(types)
        assert all(count == 1 for count in helps.values())
        assert all(count == 1 for count in types.values())

    def test_no_duplicate_series(self):
        _helps, _types, series = _parse(to_prometheus_text(_registry()))
        keys = [(name, labels) for name, labels, _value in series]
        assert len(keys) == len(set(keys))

    def test_every_series_belongs_to_a_declared_family(self):
        text = to_prometheus_text(_registry())
        helps, _types, series = _parse(text)
        for name, _labels, _value in series:
            base = re.sub(r"_(sum|count)$", "", name)
            assert name in helps or base in helps, name

    def test_empty_registry_exposes_nothing(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestKindMapping:
    def test_counter_total_suffix(self):
        text = to_prometheus_text(_registry())
        assert "# TYPE harmonia_events_total counter" in text
        assert 'harmonia_events_total{path="engine"} 42' in text

    def test_gauge_with_path_label(self):
        text = to_prometheus_text(_registry())
        assert "# TYPE harmonia_utilization_mean gauge" in text
        assert ('harmonia_utilization_mean{path="fleet.round-robin"} 0.71'
                in text)

    def test_summary_quantiles_sum_count(self):
        text = to_prometheus_text(_registry())
        assert "# TYPE harmonia_latency_ps summary" in text
        for quantile in QUANTILES:
            assert f'quantile="{quantile:g}"' in text
        assert ('harmonia_latency_ps_sum{path="fleet.round-robin"} 2000'
                in text)
        assert ('harmonia_latency_ps_count{path="fleet.round-robin"} 5'
                in text)

    def test_empty_histogram_exposes_zero_sum_count(self):
        registry = MetricsRegistry()
        registry.histogram("engine.idle_ps")
        text = to_prometheus_text(registry)
        assert 'harmonia_idle_ps_sum{path="engine"} 0' in text
        assert 'harmonia_idle_ps_count{path="engine"} 0' in text
        assert "quantile" not in text

    def test_kind_collision_keeps_both_families(self):
        registry = MetricsRegistry()
        registry.set_gauge("a.depth", 3)
        registry.increment("b.depth", 2)
        helps, _types, series = _parse(to_prometheus_text(registry))
        names = {name for name, _labels, _value in series}
        assert len(names) == 2  # one family per kind, both exposed
        assert all(count == 1 for count in helps.values())


class TestDeterminismAndSanitising:
    def test_byte_identical_for_identical_registries(self):
        assert (to_prometheus_text(_registry())
                == to_prometheus_text(_registry()))

    def test_hyphenated_paths_stay_in_labels(self):
        text = to_prometheus_text(_registry())
        # The hyphen lives in the label value, never the family name.
        assert 'path="fleet.round-robin"' in text
        for line in text.splitlines():
            name = line.split("{")[0].split()[-1 if "#" in line else 0]
            assert "-" not in name.split("{")[0]

    def test_write_is_atomic(self, tmp_path):
        target = tmp_path / "metrics.prom"
        lines = write_prometheus_text(_registry(), str(target))
        body = target.read_text(encoding="utf-8")
        assert lines == body.count("\n")
        assert body == to_prometheus_text(_registry())
        assert not list(tmp_path.glob("*.tmp"))


class TestNativeHistograms:
    def _snapshot(self):
        from repro.obs.window import HistogramSnapshot

        return HistogramSnapshot(bounds=(100.0, 200.0, 400.0),
                                 cumulative=(1, 3, 4), count=5,
                                 sum=1_300.0, max=900.0)

    def test_histogram_family_shape(self):
        text = to_prometheus_text(
            MetricsRegistry(),
            histograms={"serve.window.request.wall_ps": self._snapshot()})
        assert "# TYPE harmonia_wall_ps histogram" in text
        label = 'path="serve.window.request"'
        assert f'harmonia_wall_ps_bucket{{{label},le="100"}} 1' in text
        assert f'harmonia_wall_ps_bucket{{{label},le="200"}} 3' in text
        assert f'harmonia_wall_ps_bucket{{{label},le="400"}} 4' in text
        assert f'harmonia_wall_ps_bucket{{{label},le="+Inf"}} 5' in text
        assert f'harmonia_wall_ps_sum{{{label}}} 1300' in text
        assert f'harmonia_wall_ps_count{{{label}}} 5' in text

    def test_inf_bucket_equals_count(self):
        _helps, _types, series = _parse(to_prometheus_text(
            MetricsRegistry(), histograms={"a.wall_ps": self._snapshot()}))
        inf = [value for name, labels, value in series
               if name.endswith("_bucket") and 'le="+Inf"' in labels]
        count = [value for name, _labels, value in series
                 if name.endswith("_count")]
        assert inf == count == ["5"]

    def test_buckets_are_cumulative_and_monotone(self):
        _helps, _types, series = _parse(to_prometheus_text(
            MetricsRegistry(), histograms={"a.wall_ps": self._snapshot()}))
        buckets = [int(value) for name, _labels, value in series
                   if name.endswith("_bucket")]
        assert buckets == sorted(buckets)

    def test_histogram_labels_are_escaped(self):
        hostile = 'serve.window.tenant."ev\\il"\n.wall_ps'
        text = to_prometheus_text(MetricsRegistry(),
                                  histograms={hostile: self._snapshot()})
        assert '\\"ev\\\\il\\"\\n' in text
        for line in text.splitlines():
            assert "\n" not in line

    def test_histogram_beside_registry_families_stays_sorted(self):
        registry = MetricsRegistry()
        registry.increment("engine.events", 1)
        text = to_prometheus_text(
            registry, histograms={"a.wall_ps": self._snapshot()})
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE ")]
        assert families == sorted(families)
        assert (to_prometheus_text(registry,
                                   histograms={"a.wall_ps": self._snapshot()})
                == text)
