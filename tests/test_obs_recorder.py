"""Flight recorder and TraceBus ring/streaming properties.

The load-bearing invariants, property-tested with hypothesis:

* a bounded bus retains exactly the *last N* records an unbounded bus
  would hold (and counts the rest as dropped);
* a streaming sink reproduces ``export_jsonl`` byte for byte, with or
  without a ring cap in front of it.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.recorder import FlightRecorder
from repro.runtime.trace import TraceBus, dumps_record

# One trace "operation": (kind, name-index, ts). Spans open and close
# immediately -- nesting is exercised separately in test_runtime_trace.
_OPS = st.lists(
    st.tuples(st.sampled_from(("span", "instant", "complete")),
              st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=10_000)),
    max_size=60,
)


def _drive(bus: TraceBus, ops) -> None:
    for kind, name_index, ts in ops:
        name = f"op.{name_index}"
        if kind == "span":
            span = bus.begin(name, ts_ps=ts)
            bus.end(span, ts_ps=ts + 5)
        elif kind == "instant":
            bus.instant(name, ts_ps=ts)
        else:
            bus.complete(name, ts, ts + 7)


class TestRingBufferProperties:
    @given(ops=_OPS, cap=st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_bounded_bus_keeps_exactly_last_n(self, ops, cap):
        unbounded = TraceBus(clock_ps=lambda: 0, enabled=True)
        bounded = TraceBus(clock_ps=lambda: 0, enabled=True,
                           max_records=cap)
        _drive(unbounded, ops)
        _drive(bounded, ops)
        full = unbounded.records
        tail = full[-cap:] if cap else []
        assert bounded.records == tail
        assert bounded.dropped_records == len(full) - len(tail)
        assert bounded.total_records == len(full)

    @given(ops=_OPS, cap=st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_streaming_sink_matches_batch_export(self, ops, cap):
        unbounded = TraceBus(clock_ps=lambda: 0, enabled=True)
        _drive(unbounded, ops)
        streamed: list = []
        bounded = TraceBus(clock_ps=lambda: 0, enabled=True,
                           max_records=cap)
        bounded.add_sink(lambda line: streamed.append(line + "\n"))
        _drive(bounded, ops)
        assert "".join(streamed) == unbounded.export_jsonl()

    @given(ops=_OPS, cap=st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_limit_records_mid_run_matches_construction(self, ops, cap):
        constructed = TraceBus(clock_ps=lambda: 0, enabled=True,
                               max_records=cap)
        _drive(constructed, ops)
        limited = TraceBus(clock_ps=lambda: 0, enabled=True)
        _drive(limited, ops)
        limited.limit_records(cap)
        assert limited.records == constructed.records
        assert limited.dropped_records == constructed.dropped_records


class TestFlightRecorder:
    def _bus(self) -> TraceBus:
        return TraceBus(clock_ps=lambda: 0, enabled=True)

    def test_streams_byte_identical_to_unbounded_export(self, tmp_path):
        reference = self._bus()
        _drive(reference, [("span", 0, 10), ("instant", 1, 20),
                           ("complete", 2, 30)] * 40)
        target = tmp_path / "trace.jsonl"
        bus = self._bus()
        with FlightRecorder(bus, str(target), ring=8) as recorder:
            _drive(bus, [("span", 0, 10), ("instant", 1, 20),
                         ("complete", 2, 30)] * 40)
        assert target.read_text(encoding="utf-8") == reference.export_jsonl()
        assert recorder.records_written == reference.total_records
        assert len(bus) == 8  # resident capped while the file is complete

    def test_backfills_records_emitted_before_attach(self, tmp_path):
        bus = self._bus()
        bus.instant("early", ts_ps=1)
        target = tmp_path / "trace.jsonl"
        with FlightRecorder(bus, str(target)):
            bus.instant("late", ts_ps=2)
        lines = target.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "early", "late"]

    def test_file_appears_only_on_clean_close(self, tmp_path):
        bus = self._bus()
        target = tmp_path / "trace.jsonl"
        recorder = FlightRecorder(bus, str(target))
        recorder.start()
        bus.instant("tick", ts_ps=1)
        assert not target.exists()  # still streaming into the tempfile
        assert recorder.active
        recorder.close()
        assert target.exists()
        assert not recorder.active
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_keeps_previous_trace_and_no_tmp(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        target.write_text("previous run\n", encoding="utf-8")
        bus = self._bus()
        with pytest.raises(RuntimeError):
            with FlightRecorder(bus, str(target)):
                bus.instant("doomed", ts_ps=1)
                raise RuntimeError("run died")
        assert target.read_text(encoding="utf-8") == "previous run\n"
        assert not list(tmp_path.glob("*.tmp"))
        assert not bus._sinks  # sink detached even on the failure path

    def test_double_start_rejected(self, tmp_path):
        recorder = FlightRecorder(self._bus(),
                                  str(tmp_path / "trace.jsonl"))
        recorder.start()
        with pytest.raises(RuntimeError):
            recorder.start()
        recorder.close()

    def test_ring_none_leaves_residency_unbounded(self, tmp_path):
        bus = self._bus()
        with FlightRecorder(bus, str(tmp_path / "trace.jsonl")):
            _drive(bus, [("instant", 0, 1)] * 50)
        assert len(bus) == 50
        assert bus.max_records is None


class TestAtomicWriteJsonl:
    def test_write_jsonl_replaces_atomically(self, tmp_path):
        bus = TraceBus(clock_ps=lambda: 0, enabled=True)
        bus.instant("tick", ts_ps=3)
        target = tmp_path / "out.jsonl"
        target.write_text("stale\n", encoding="utf-8")
        count = bus.write_jsonl(str(target))
        assert count == 1
        assert target.read_text(encoding="utf-8") == (
            dumps_record(bus.records[0]) + "\n")
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_write_keeps_previous_file(self, tmp_path, monkeypatch):
        bus = TraceBus(clock_ps=lambda: 0, enabled=True)
        bus.instant("tick", ts_ps=3)
        target = tmp_path / "out.jsonl"
        target.write_text("previous\n", encoding="utf-8")

        def exploding_replace(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            bus.write_jsonl(str(target))
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == "previous\n"
        assert not list(tmp_path.glob("*.tmp"))
