"""SLO monitor: spec parsing, wildcard matching, and violation plumbing.

A violation must surface three ways at once: in the report section, as
an ``slo.violation`` instant on the trace, and as exit code 4 from the
CLI (the CLI path is covered in ``test_cli.py``).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_EXIT_CODE,
    SloMonitor,
    SloSpec,
    default_fleet_slos,
    load_slo_specs,
    registry_from_sweep,
)
from repro.runtime import MetricsRegistry
from repro.runtime.trace import TraceBus


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.set_gauge("fleet.round-robin.utilization_mean", 0.99)
    registry.set_gauge("fleet.least-loaded.utilization_mean", 0.60)
    registry.set_gauge("fleet.flows", 1_000)
    registry.set_gauge("fleet.round-robin.non_resident_flows", 700)
    for sample in (100_000, 200_000, 900_000):
        registry.observe("fleet.round-robin.tenant.00.latency_ps", sample)
    return registry


class TestSpecValidation:
    def test_needs_a_bound(self):
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", metric="a.b")

    def test_needs_name_and_metric(self):
        with pytest.raises(ConfigurationError):
            SloSpec(name="", metric="a.b", upper=1.0)
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", metric="", upper=1.0)

    def test_percentile_range(self):
        with pytest.raises(ConfigurationError):
            SloSpec(name="x", metric="a.b", upper=1.0, percentile=1.5)

    def test_json_round_trip(self):
        spec = SloSpec(name="util", metric="fleet.*.utilization_mean",
                       lower=0.1, upper=0.9)
        assert SloSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            SloSpec.from_json({"name": "x", "metric": "a", "upper": 1,
                               "treshold": 2})

    def test_bound_text(self):
        spec = SloSpec(name="band", metric="m", lower=0.1, upper=0.9)
        assert spec.bound_text() == ">= 0.1 and <= 0.9"


class TestEvaluation:
    def test_wildcard_matches_every_policy(self):
        monitor = SloMonitor([SloSpec(
            name="util", metric="fleet.*.utilization_mean", upper=0.9)])
        report = monitor.evaluate(_registry())
        assert report.checked == 2
        assert [v.metric for v in report.violations] == [
            "fleet.round-robin.utilization_mean"]
        assert not report.ok and report.exit_code == SLO_EXIT_CODE

    def test_exact_path_without_wildcards(self):
        monitor = SloMonitor([SloSpec(
            name="util", metric="fleet.least-loaded.utilization_mean",
            lower=0.5)])
        report = monitor.evaluate(_registry())
        assert report.checked == 1 and report.ok and report.exit_code == 0

    def test_histogram_reads_percentile(self):
        monitor = SloMonitor([SloSpec(
            name="p99", metric="fleet.*.tenant.*.latency_ps",
            upper=500_000.0)])
        report = monitor.evaluate(_registry())
        assert len(report.violations) == 1
        assert report.violations[0].value == 900_000.0
        relaxed = SloMonitor([SloSpec(
            name="p50", metric="fleet.*.tenant.*.latency_ps",
            upper=500_000.0, percentile=0.5)])
        assert relaxed.evaluate(_registry()).ok

    def test_ratio_to_divides_by_denominator(self):
        monitor = SloMonitor([SloSpec(
            name="resident", metric="fleet.*.non_resident_flows",
            ratio_to="fleet.flows", upper=0.35)])
        report = monitor.evaluate(_registry())
        assert report.violations[0].value == pytest.approx(0.7)

    def test_empty_histogram_and_missing_path_are_skipped(self):
        registry = MetricsRegistry()
        registry.histogram("quiet.latency_ps")
        monitor = SloMonitor([
            SloSpec(name="a", metric="quiet.latency_ps", upper=1.0),
            SloSpec(name="b", metric="absent.path", upper=1.0),
        ])
        report = monitor.evaluate(registry)
        assert report.checked == 0 and report.ok

    def test_violations_emit_trace_instants(self):
        bus = TraceBus(clock_ps=lambda: 0, enabled=True)
        monitor = SloMonitor([SloSpec(
            name="util", metric="fleet.*.utilization_mean", upper=0.9)])
        monitor.evaluate(_registry(), trace=bus)
        instants = [record for record in bus.records
                    if record["name"] == "slo.violation"]
        assert len(instants) == 1
        assert instants[0]["attrs"]["slo"] == "util"
        assert instants[0]["attrs"]["metric"] == (
            "fleet.round-robin.utilization_mean")

    def test_report_format_and_json(self):
        monitor = SloMonitor([SloSpec(
            name="util", metric="fleet.*.utilization_mean", upper=0.9)])
        report = monitor.evaluate(_registry())
        text = report.format()
        assert "VIOLATION util" in text and "1 violation(s)" in text
        payload = report.to_json()
        assert payload["ok"] is False
        assert payload["violations"][0]["slo"] == "util"
        clean = SloMonitor([]).evaluate(_registry())
        assert "all objectives met" in clean.format()


class TestPersistence:
    def test_load_list_and_wrapped_object(self, tmp_path):
        specs = [{"name": "a", "metric": "m", "upper": 1.0}]
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps(specs), encoding="utf-8")
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"slos": specs}), encoding="utf-8")
        assert load_slo_specs(str(flat)).specs == (
            SloMonitor.load(str(wrapped)).specs)

    def test_invalid_json_is_a_configuration_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            SloMonitor.load(str(bad))

    def test_non_list_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            SloMonitor.from_json({"other": 1})


class TestFleetAndSweepIntegration:
    def test_default_fleet_slos_cover_the_fleet_registry(self):
        from repro.runtime import SimContext
        from repro.runtime.fleet import FleetSpec, run_fleet

        context = SimContext(name="slo-fleet")
        run_fleet(FleetSpec(flow_count=5_000, device_count=16),
                  context=context)
        report = SloMonitor(default_fleet_slos()).evaluate(context.metrics)
        # Every spec family found series to check: 3 policies x 16
        # tenants of p99 plus per-policy utilisation/overload/residency.
        assert report.checked >= 3 * 16 + 3 * 3

    def test_registry_from_sweep_exposes_gauges(self):
        from repro.runtime.sweep import SweepPlan, run_plan

        result = run_plan(
            SweepPlan(apps=("sec-gateway",), devices=("device-a",),
                      packet_sizes=(64, 256), packets_per_point=50),
            use_cache=False)
        registry = registry_from_sweep(result)
        paths = registry.paths()
        assert "sweep.sec-gateway.device-a.64B.throughput_gbps" in paths
        assert "sweep.sec-gateway.device-a.256B.mean_latency_ns" in paths
        floor = SloMonitor([SloSpec(
            name="throughput-floor", metric="sweep.*.throughput_gbps",
            lower=1e9)])
        report = floor.evaluate(registry)
        assert report.checked == 2
        assert len(report.violations) == 2  # Gbps values, nowhere near 1e9
