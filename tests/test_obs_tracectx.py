"""Trace-context propagation and the plan-order span stitcher.

The two contracts pinned here: (1) stitched output is a pure function
of the fragments -- byte-identical no matter how many workers produced
them -- and (2) response-embedded trace ids derive from the scenario,
never the request, so coalesced followers and cache hits stay
byte-compatible with the leader.
"""

import json

from repro.obs.analyze import TraceAnalysis, parse_trace
from repro.obs.tracectx import (
    TRACE_HEADER,
    TraceContext,
    sanitise_trace_id,
    stitch_spans,
)
from repro.runtime.sweep import SweepPlan, run_plan
from repro.runtime.trace import TraceBus
from repro.scenario import Scenario, WorkloadSpec
from repro.service import run_scenario


class TestSanitise:
    def test_safe_ids_pass_through(self):
        assert sanitise_trace_id("req-00000001") == "req-00000001"
        assert sanitise_trace_id("a.b:c_d-e") == "a.b:c_d-e"

    def test_hostile_bytes_are_replaced(self):
        assert sanitise_trace_id("x y\nz") == "x-y-z"
        assert sanitise_trace_id('"; rm -rf /') == "---rm--rf--"

    def test_length_clamped_and_never_empty(self):
        assert len(sanitise_trace_id("a" * 200)) == 64
        assert sanitise_trace_id("") == "trace"
        assert sanitise_trace_id("   ") == "trace"


class TestTraceContext:
    def test_from_headers_prefers_the_header(self):
        context = TraceContext.from_headers({TRACE_HEADER: "caller-7"},
                                            fallback="req-1")
        assert context.trace_id == "caller-7"
        assert context.parent_span is None

    def test_from_headers_falls_back(self):
        context = TraceContext.from_headers({}, fallback="req-42")
        assert context.trace_id == "req-42"

    def test_header_value_is_sanitised(self):
        context = TraceContext.from_headers(
            {TRACE_HEADER: "evil id\r\nSet-Cookie: x"}, fallback="req-1")
        assert "\n" not in context.trace_id
        assert " " not in context.trace_id

    def test_for_scenario_uses_scenario_prefix(self):
        scenario_id = "deadbeefcafef00d" + "0" * 48
        context = TraceContext.for_scenario(scenario_id)
        assert context.trace_id == "deadbeefcafef00d"

    def test_child_keeps_the_id(self):
        child = TraceContext("t1").child(7)
        assert child.trace_id == "t1"
        assert child.parent_span == 7


def _fragment(names, base_ts=0):
    """A standalone JSONL fragment: ids from 0, first span rootless."""
    bus = TraceBus(clock_ps=lambda: base_ts, enabled=True)
    root = bus.begin(names[0])
    for name in names[1:]:
        bus.complete(name, base_ts, base_ts + 10, parent=root.span_id)
    bus.end(root)
    return bus.export_jsonl()


class TestStitch:
    def test_two_fragments_become_one_connected_tree(self):
        stitched = stitch_spans([_fragment(["p0", "p0.work"]),
                                 _fragment(["p1", "p1.work"])],
                                trace_id="t-1")
        analysis = TraceAnalysis(parse_trace(stitched))
        assert len(analysis.roots) == 1
        root = analysis.roots[0]
        assert root.name == "serve.request"
        assert root.attrs["trace_id"] == "t-1"
        assert [child.name for child in root.children] == ["serve.execute"]
        execute = root.children[0]
        assert [child.name for child in execute.children] == ["p0", "p1"]

    def test_ids_are_renumbered_without_collision(self):
        stitched = stitch_spans([_fragment(["a"]), _fragment(["b"])],
                                trace_id="t")
        ids = [json.loads(line)["id"] for line in stitched.splitlines()
               if json.loads(line)["type"] != "E"]
        assert len(ids) == len(set(ids))
        assert min(ids) == 0

    def test_empty_segments_are_skipped(self):
        with_gap = stitch_spans(["", _fragment(["a"]), ""], trace_id="t")
        without = stitch_spans([_fragment(["a"])], trace_id="t")
        assert with_gap == without

    def test_no_fragments_still_yields_a_closed_root(self):
        analysis = TraceAnalysis(parse_trace(stitch_spans([], trace_id="t")))
        assert len(analysis.roots) == 1
        assert all(node.closed for node in analysis.nodes.values())

    def test_root_closes_at_latest_fragment_timestamp(self):
        stitched = stitch_spans([_fragment(["a"], base_ts=500),
                                 _fragment(["b"], base_ts=100)],
                                trace_id="t")
        records = parse_trace(stitched)
        closes = [record for record in records if record["type"] == "E"
                  and record["id"] in (0, 1)]
        latest = max(record["ts_ps"] + record.get("dur_ps", 0)
                     for record in records if record["type"] != "E")
        assert all(record["ts_ps"] == latest for record in closes)

    def test_attrs_ride_on_the_synthetic_spans(self):
        stitched = stitch_spans([_fragment(["a"])], trace_id="t",
                                root_attrs={"points": 1},
                                exec_attrs={"kind": "sweep"})
        records = parse_trace(stitched)
        assert records[0]["attrs"] == {"trace_id": "t", "points": 1}
        assert records[1]["attrs"] == {"kind": "sweep"}


class TestSweepStitching:
    SIZES = (64, 128, 256)

    def _sweep(self, workers):
        plan = SweepPlan(apps=("sec-gateway",), devices=("device-a",),
                         packet_sizes=self.SIZES, packets_per_point=40,
                         trace=True)
        return run_plan(plan, workers=workers, use_cache=False)

    def test_byte_identical_across_worker_counts(self):
        solo = self._sweep(1).stitched_trace_jsonl(trace_id="t")
        wide = self._sweep(4).stitched_trace_jsonl(trace_id="t")
        assert solo == wide
        assert solo.endswith("\n")

    def test_stitched_tree_is_connected_in_plan_order(self):
        stitched = self._sweep(2).stitched_trace_jsonl(
            trace_id="t", scenario_id="cafe")
        analysis = TraceAnalysis(parse_trace(stitched))
        assert len(analysis.roots) == 1
        assert analysis.roots[0].attrs["scenario_id"] == "cafe"
        execute = analysis.roots[0].children[0]
        point_names = [child.name for child in execute.children
                       if child.kind != "instant"]
        assert point_names == [
            f"sweep.sec-gateway.harmonia.{size}B" for size in self.SIZES]

    def test_untraced_sweep_stitches_to_empty(self):
        plan = SweepPlan(apps=("sec-gateway",), devices=("device-a",),
                         packet_sizes=(64,), packets_per_point=40)
        result = run_plan(plan, use_cache=False)
        assert result.stitched_trace_jsonl(trace_id="t") == ""


class TestFleetRooting:
    def test_trace_context_roots_the_fleet_run(self):
        from repro.runtime import SimContext
        from repro.scenario import TenancySpec
        from repro.service.runs import run_fleet_service

        scenario = Scenario(kind="fleet", tenancy=TenancySpec(
            flow_count=2_000, device_count=16, tenant_count=4))
        context = SimContext(name="fleet-traced", trace=True)
        run_fleet_service(scenario, context=context,
                          trace_context=TraceContext("req-77"))
        analysis = TraceAnalysis(parse_trace(context.trace.export_jsonl()))
        roots = [node for node in analysis.roots if node.kind != "instant"]
        assert [node.name for node in roots] == ["serve.execute"]
        assert roots[0].attrs["trace_id"] == "req-77"
        assert roots[0].children, "simulation spans hang off the root"


class TestServiceEmbedding:
    def test_traced_response_embeds_scenario_derived_trace(self):
        scenario = Scenario(
            kind="sweep", apps=("sec-gateway",), devices=("device-a",),
            workload=WorkloadSpec(packet_sizes=(64,), packets_per_point=40,
                                  trace=True))
        body = json.loads(run_scenario(scenario).response_text())
        assert "trace" in body
        records = parse_trace(body["trace"])
        expected = TraceContext.for_scenario(scenario.scenario_id()).trace_id
        assert records[0]["attrs"]["trace_id"] == expected

    def test_untraced_response_has_no_trace_key(self):
        scenario = Scenario(
            kind="sweep", apps=("sec-gateway",), devices=("device-a",),
            workload=WorkloadSpec(packet_sizes=(64,), packets_per_point=40))
        body = json.loads(run_scenario(scenario).response_text())
        assert set(body) == {"kind", "scenario_id", "result", "slo",
                             "exit_code"}
