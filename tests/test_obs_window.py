"""Sliding-window telemetry: rings, histograms, burn rates.

The hypothesis suite at the bottom checks the rotation arithmetic
against an exact model: an observation stamped at time ``t`` (epoch
``int(t // slice_s)``) must survive a query at time ``T`` iff its epoch
lies within the trailing ``slices`` epochs -- no off-by-one at slice
boundaries, no resurrection of expired slices after long idle gaps.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs.slo import SloSpec, default_serve_slos
from repro.obs.window import (
    MAX_LABEL_VALUES,
    OVERFLOW_LABEL,
    ExponentialBuckets,
    TelemetryHub,
    WindowedCounter,
    WindowedHistogram,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestExponentialBuckets:
    def test_bounds_are_geometric(self):
        buckets = ExponentialBuckets(100.0, growth=2.0, count=4)
        assert buckets.bounds == (100.0, 200.0, 400.0, 800.0)

    def test_index_uses_le_semantics(self):
        buckets = ExponentialBuckets(100.0, growth=2.0, count=4)
        assert buckets.index(100.0) == 0      # value == bound lands inside
        assert buckets.index(100.1) == 1
        assert buckets.index(800.0) == 3
        assert buckets.index(801.0) == len(buckets)   # +Inf overflow

    def test_bad_layouts_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialBuckets(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBuckets(1.0, growth=1.0)
        with pytest.raises(ConfigurationError):
            ExponentialBuckets(1.0, count=0)


class TestWindowedCounter:
    def test_expiry_is_per_slice(self):
        clock = FakeClock()
        counter = WindowedCounter(10.0, 10, clock)   # 1 s slices
        counter.add()
        clock.now = 9.0
        counter.add()
        assert counter.total() == 2.0
        clock.now = 10.0        # slice of t=0 just expired
        assert counter.total() == 1.0
        clock.now = 18.0        # slice of t=9 on its last legal tick
        assert counter.total() == 1.0
        clock.now = 19.0
        assert counter.total() == 0.0

    def test_long_gap_clears_everything(self):
        clock = FakeClock()
        counter = WindowedCounter(10.0, 10, clock)
        for _ in range(5):
            counter.add()
        clock.now = 1_000.0
        assert counter.total() == 0.0

    def test_backwards_clock_resets(self):
        clock = FakeClock(100.0)
        counter = WindowedCounter(10.0, 10, clock)
        counter.add()
        clock.now = 5.0
        assert counter.total() == 0.0
        counter.add()
        assert counter.total() == 1.0

    def test_rate_is_per_window_second(self):
        clock = FakeClock()
        counter = WindowedCounter(60.0, 12, clock)
        for _ in range(30):
            counter.add()
        assert counter.rate() == pytest.approx(0.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WindowedCounter(0.0, 4, FakeClock())
        with pytest.raises(ConfigurationError):
            WindowedCounter(10.0, 0, FakeClock())


class TestWindowedHistogram:
    def _histogram(self, clock):
        return WindowedHistogram(10.0, 5, ExponentialBuckets(100.0, 2.0, 4),
                                 clock)

    def test_snapshot_is_cumulative(self):
        histogram = self._histogram(FakeClock())
        for value in (50.0, 150.0, 150.0, 900.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot.cumulative == (1, 3, 3, 3)   # overflow excluded
        assert snapshot.count == 4
        assert snapshot.sum == pytest.approx(1_250.0)
        assert snapshot.max == 900.0

    def test_percentile_reports_bucket_bound(self):
        histogram = self._histogram(FakeClock())
        for value in [50.0] * 98 + [900.0, 900.0]:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot.percentile(0.50) == 100.0
        assert snapshot.percentile(0.99) == 900.0    # overflow -> max
        assert snapshot.to_json()["p99"] == 900.0

    def test_empty_window_percentile_is_zero(self):
        snapshot = self._histogram(FakeClock()).snapshot()
        assert snapshot.count == 0
        assert snapshot.percentile(0.99) == 0.0

    def test_observations_expire_with_their_slice(self):
        clock = FakeClock()
        histogram = self._histogram(clock)   # 2 s slices
        histogram.observe(500.0)
        clock.now = 9.9
        histogram.observe(500.0)
        assert histogram.snapshot().count == 2
        clock.now = 10.0
        assert histogram.snapshot().count == 1
        clock.now = 20.0
        assert histogram.snapshot().count == 0


class TestTelemetryHub:
    def _hub(self, clock=None, **kwargs):
        return TelemetryHub(clock=clock or FakeClock(), **kwargs)

    def test_record_request_feeds_every_view(self):
        hub = self._hub()
        hub.record_request(endpoint="/v1/sweep", tenant="acme", status=200,
                           wall_ps=2e11)
        hub.record_request(endpoint="/v1/sweep", tenant="acme", status=500,
                           wall_ps=9e11, shed=True)
        body = hub.telemetry_json()
        assert body["rates"]["serve.requests"]["window_total"] == 2
        assert body["rates"]["serve.responses.500"]["window_total"] == 1
        assert body["rates"]["serve.shed"]["window_total"] == 1
        assert body["latency"]["serve.window.request.wall_ps"]["count"] == 2
        assert body["endpoints"]["/v1/sweep"]["count"] == 2
        assert body["tenants"]["acme"]["count"] == 2
        assert hub.summary()["window_requests"] == 2

    def test_unknown_endpoints_fold_to_other(self):
        hub = self._hub()
        hub.record_request(endpoint="/v1/../../etc", tenant="t", status=404,
                           wall_ps=1e9)
        assert list(hub.telemetry_json()["endpoints"]) == ["other"]

    def test_tenant_cardinality_is_bounded(self):
        hub = self._hub()
        for index in range(MAX_LABEL_VALUES + 10):
            hub.record_request(endpoint="/v1/run", tenant=f"t{index}",
                               status=200, wall_ps=1e9)
        tenants = hub.telemetry_json()["tenants"]
        assert len(tenants) == MAX_LABEL_VALUES + 1   # incl. overflow
        assert tenants[OVERFLOW_LABEL]["count"] == 10

    def test_latency_burn_rate(self):
        # p99 <= 500 ms tolerates 1% slow; 2% slow burns at 2x.
        hub = self._hub(specs=default_serve_slos())
        for index in range(100):
            slow = index < 2
            hub.record_request(endpoint="/v1/run", tenant="t", status=200,
                               wall_ps=6e11 if slow else 1e9)
        burn = {report["name"]: report
                for report in hub.telemetry_json()["slo_burn"]}
        latency = burn["serve-request-p99"]
        assert latency["bad_requests"] == 2
        assert latency["burn_rate"] == pytest.approx(2.0, rel=1e-3)
        assert latency["budget_remaining"] == 0.0

    def test_ratio_burn_rate(self):
        hub = self._hub(specs=default_serve_slos())
        for index in range(200):
            hub.record_request(endpoint="/v1/run", tenant="t",
                               status=500 if index < 1 else 200, wall_ps=1e9)
        burn = {report["name"]: report
                for report in hub.telemetry_json()["slo_burn"]}
        errors = burn["serve-error-ratio"]
        assert errors["window_ratio"] == pytest.approx(0.005)
        assert errors["burn_rate"] == pytest.approx(0.5)
        assert errors["budget_remaining"] == pytest.approx(0.5)

    def test_zero_tolerance_ratio(self):
        spec = SloSpec(name="no-5xx", metric="serve.responses.500",
                       ratio_to="serve.requests", upper=0.0)
        hub = self._hub(specs=[spec])
        hub.record_request(endpoint="/v1/run", tenant="t", status=200,
                           wall_ps=1e9)
        report = hub.telemetry_json()["slo_burn"][0]
        assert report["burn_rate"] is None
        assert report["budget_remaining"] == 1.0
        hub.record_request(endpoint="/v1/run", tenant="t", status=500,
                           wall_ps=1e9)
        report = hub.telemetry_json()["slo_burn"][0]
        assert report["burn_rate"] == math.inf
        assert report["budget_remaining"] == 0.0

    def test_histogram_snapshots_expose_prometheus_paths(self):
        hub = self._hub()
        hub.record_request(endpoint="/v1/sweep", tenant="acme", status=200,
                           wall_ps=1e9)
        paths = set(hub.histogram_snapshots())
        assert "serve.window.request.wall_ps" in paths
        assert "serve.window.endpoint./v1/sweep.wall_ps" in paths
        assert "serve.window.tenant.acme.wall_ps" in paths


# --------------------------------------------------------------------- #
# Rotation arithmetic, checked against an exact survivorship model      #
# --------------------------------------------------------------------- #

window_layouts = st.tuples(
    st.floats(min_value=0.5, max_value=120.0, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=1, max_value=24),
)

event_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False,
                  allow_infinity=False),          # time delta (monotone)
        st.floats(min_value=0.0, max_value=1e13, allow_nan=False,
                  allow_infinity=False),          # observed value
    ),
    min_size=0, max_size=60,
)


def _surviving(events, query_time, slice_s, slices):
    """The model: events whose epoch is within the trailing window."""
    query_epoch = int(query_time // slice_s)
    return [value for when, value in events
            if int(when // slice_s) > query_epoch - slices]


@settings(max_examples=200, deadline=None)
@given(layout=window_layouts, stream=event_streams,
       tail=st.floats(min_value=0.0, max_value=600.0, allow_nan=False))
def test_counter_total_matches_survivorship_model(layout, stream, tail):
    window_s, slices = layout
    clock = FakeClock()
    counter = WindowedCounter(window_s, slices, clock)
    events = []
    now = 0.0
    for delta, value in stream:
        now += delta
        clock.now = now
        counter.add(value)
        events.append((now, value))
    clock.now = now + tail
    expected = sum(_surviving(events, clock.now, counter.slice_s, slices))
    assert counter.total() == pytest.approx(expected)


@settings(max_examples=200, deadline=None)
@given(layout=window_layouts, stream=event_streams,
       tail=st.floats(min_value=0.0, max_value=600.0, allow_nan=False))
def test_histogram_snapshot_matches_survivorship_model(layout, stream, tail):
    window_s, slices = layout
    clock = FakeClock()
    buckets = ExponentialBuckets(1e8, 2.0, 8)
    histogram = WindowedHistogram(window_s, slices, buckets, clock)
    events = []
    now = 0.0
    for delta, value in stream:
        now += delta
        clock.now = now
        histogram.observe(value)
        events.append((now, value))
    clock.now = now + tail
    survivors = _surviving(events, clock.now, histogram.slice_s, slices)
    snapshot = histogram.snapshot()
    assert snapshot.count == len(survivors)
    assert snapshot.sum == pytest.approx(sum(survivors), rel=1e-9, abs=1e-6)
    # Cumulative counts are monotone and bounded by the total.
    assert list(snapshot.cumulative) == sorted(snapshot.cumulative)
    assert (snapshot.cumulative[-1] if snapshot.cumulative else 0) \
        <= snapshot.count
    expected_in_bounds = sum(1 for value in survivors
                             if buckets.index(value) < len(buckets))
    assert (snapshot.cumulative[-1] if snapshot.cumulative else 0) \
        == expected_in_bounds


@settings(max_examples=100, deadline=None)
@given(layout=window_layouts,
       checkpoints=st.lists(st.floats(min_value=0.0, max_value=30.0,
                                      allow_nan=False),
                            min_size=1, max_size=20))
def test_counter_never_resurrects_after_idle(layout, checkpoints):
    """Once a window drains to zero it stays at zero without new adds."""
    window_s, slices = layout
    clock = FakeClock()
    counter = WindowedCounter(window_s, slices, clock)
    counter.add()
    clock.now = window_s + counter.slice_s   # strictly past the window
    assert counter.total() == 0.0
    now = clock.now
    for delta in checkpoints:
        now += delta
        clock.now = now
        assert counter.total() == 0.0
