"""Epoch-stepped orchestrator: delta exactness, determinism, invariants."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multitenancy import residency_matrix
from repro.errors import ConfigurationError
from repro.runtime import SimContext
from repro.runtime.fleet import FleetSpec
from repro.runtime.orchestrator import (
    MODES,
    RATE_UNITS_PER_GBPS,
    DeltaMismatch,
    FleetState,
    Orchestrator,
    OrchestratorSpec,
    desired_residency,
    run_orchestrator,
    weighted_percentiles,
)
from repro.scenario.fuzz import _min_fleet_devices
from repro.workloads.flows import ChurnStream, churn_stream_hashes32

#: Small but churn-heavy configuration -- every epoch exercises churn,
#: failure, drain, migration, PR budgeting, and autoscaling.
SMALL_FLEET = FleetSpec(flow_count=6_000, device_count=16, tenant_count=6,
                        slots_per_device=2, seed=11)
SMALL_SPEC = OrchestratorSpec(epochs=18, churn=0.03, failure_every=5,
                              drain_every=7, pr_budget=8, scale_step=2)


@pytest.fixture(scope="module")
def small_runs():
    return {mode: run_orchestrator(SMALL_FLEET, SMALL_SPEC, mode=mode)
            for mode in MODES}


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"epochs": 0},
        {"epoch_seconds": 0},
        {"churn": -0.1},
        {"churn": 0.6},
        {"failure_every": -1},
        {"drain_every": -1},
        {"migrate_threshold": 0.0},
        {"spare_fraction": -0.5},
        {"scale_step": 0},
        {"pr_budget": -1},
        {"policy": "bogus"},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            OrchestratorSpec(**kwargs)

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            Orchestrator(SMALL_FLEET, SMALL_SPEC, mode="approximate")


class TestChurnStream:
    def test_channels_are_independent_and_stable(self):
        base = churn_stream_hashes32(64, seed=7, epoch=3, channel="a")
        assert np.array_equal(
            base, churn_stream_hashes32(64, seed=7, epoch=3, channel="a"))
        for seed, epoch, channel in ((8, 3, "a"), (7, 4, "a"), (7, 3, "b")):
            other = churn_stream_hashes32(
                64, seed=seed, epoch=epoch, channel=channel)
            assert not np.array_equal(base, other)

    def test_block_is_positionally_equal_to_one_draw(self):
        stream = ChurnStream(21)
        parts = stream.block(5, "churn", (10, 20, 30))
        flat = stream.draws(5, "churn", 60)
        assert np.array_equal(np.concatenate(parts), flat)
        assert [part.shape[0] for part in parts] == [10, 20, 30]

    def test_picks_delegate_to_as_picks(self):
        stream = ChurnStream(3)
        draws = stream.draws(2, "x", 100)
        picks = stream.picks(2, "x", 100, 17)
        assert np.array_equal(picks, ChurnStream.as_picks(draws, 17))
        assert picks.min() >= 0 and picks.max() < 17

    def test_harmonic_units_bounds_and_determinism(self):
        stream = ChurnStream(3)
        rates = stream.harmonic_rate_units(1, "r", 500, 10_000, 64)
        again = stream.harmonic_rate_units(1, "r", 500, 10_000, 64)
        assert np.array_equal(rates, again)
        assert rates.min() >= 1 and rates.max() <= 10_000


class TestWeightedPercentiles:
    def test_matches_expanded_nearest_rank(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            values = rng.normal(size=12).astype(np.float64)
            weights = rng.integers(0, 9, size=12)
            if weights.sum() == 0:
                continue
            expanded = np.sort(np.repeat(values, weights))
            total = int(weights.sum())
            for q in (0.5, 0.9, 0.99):
                got = weighted_percentiles(values, weights, (q,))[0]
                rank = max(int(np.ceil(q * total)), 1)
                assert got == float(expanded[rank - 1])

    def test_zero_weight_is_zero(self):
        assert weighted_percentiles(
            np.ones(4), np.zeros(4, dtype=np.int64), (0.5, 0.99)) == [0.0, 0.0]


class TestDesiredResidency:
    def test_pinned_element_equal_to_residency_matrix(self):
        rng = np.random.default_rng(17)
        for _ in range(50):
            devices = int(rng.integers(1, 40))
            tenants = int(rng.integers(1, 12))
            slots = int(rng.integers(1, 5))
            # Small value range forces heavy ties -- the hard case.
            units = rng.integers(0, 4, size=(devices, tenants)).astype(np.int64)
            fast = desired_residency(units, slots)
            reference = residency_matrix(units, slots)
            assert np.array_equal(fast, reference)


class TestFleetState:
    def _state(self):
        return FleetState(SMALL_FLEET, SMALL_SPEC)

    def _flows_oracle(self, state, device):
        return np.flatnonzero(
            state.flow_active & (state.flow_device == device))

    def test_initial_aggregates_match_oracle(self):
        state = self._state()
        load, units, flows = state.rebuild_aggregates()
        assert np.array_equal(load, state.load_units)
        assert np.array_equal(units, state.tenant_units)
        assert np.array_equal(flows, state.tenant_flows)

    def test_device_flows_matches_flatnonzero_oracle(self):
        state = self._state()
        stream = ChurnStream(99)
        for round_index in range(6):
            victims = np.unique(stream.picks(
                round_index, "kill", 200, state.capacity_slots))
            victims = victims[state.flow_active[victims]]
            state.remove_flows(victims)
            count = int(victims.shape[0])
            state.add_flows(
                stream.picks(round_index, "rate", count, 1_000) + 1,
                stream.picks(round_index, "tenant", count, state.tenant_count),
                stream.picks(round_index, "dev", count, state.total_devices))
            moved = state.device_flows(0)
            if moved.shape[0]:
                state.move_flows(moved, np.full(
                    moved.shape[0], 1, dtype=np.int64))
            for device in (0, 1, 2, state.total_devices - 1):
                assert np.array_equal(
                    state.device_flows(device),
                    self._flows_oracle(state, device))

    def test_deferred_deltas_equal_eager_deltas(self):
        eager, deferred = self._state(), self._state()
        stream = ChurnStream(4)
        for state in (eager, deferred):
            if state is deferred:
                state.defer_deltas()
            victims = np.unique(stream.picks(0, "kill", 300,
                                             state.capacity_slots))
            victims = victims[state.flow_active[victims]]
            state.remove_flows(victims)
            count = int(victims.shape[0])
            state.add_flows(
                stream.picks(0, "rate", count, 1_000) + 1,
                stream.picks(0, "tenant", count, state.tenant_count),
                stream.picks(0, "dev", count, state.total_devices))
            if state is deferred:
                state.flush_deltas()
        assert np.array_equal(eager.load_units, deferred.load_units)
        assert np.array_equal(eager.tenant_units, deferred.tenant_units)
        assert np.array_equal(eager.tenant_flows, deferred.tenant_flows)

    def test_stats_weights_incremental_equals_full(self):
        state = self._state()
        fast_res, fast_non = state.stats_weights()
        full_res, full_non = state.stats_weights_full()
        assert np.array_equal(fast_res, full_res)
        assert np.array_equal(fast_non, full_non)
        total = int(fast_res.sum() + fast_non.sum())
        assert total == state.active_flows


class TestBitExactness:
    def test_all_modes_serialise_identically(self, small_runs):
        payloads = {mode: json.dumps(run.to_json(), sort_keys=True)
                    for mode, run in small_runs.items()}
        assert payloads["incremental"] == payloads["full"]
        assert payloads["incremental"] == payloads["verify"]

    def test_digests_agree_across_modes(self, small_runs):
        digests = {run.aggregate_digest for run in small_runs.values()}
        flow_digests = {run.flow_digest for run in small_runs.values()}
        assert len(digests) == 1 and len(flow_digests) == 1

    def test_mode_excluded_from_payload(self, small_runs):
        payload = small_runs["incremental"].to_json()
        assert "mode" not in json.dumps(payload)

    def test_metrics_snapshots_identical(self):
        snapshots = []
        for mode in ("incremental", "full"):
            context = SimContext(name=f"orch-{mode}")
            run_orchestrator(SMALL_FLEET, SMALL_SPEC, mode=mode,
                             context=context)
            snapshots.append(context.metrics.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_verify_mode_detects_corruption(self):
        orchestrator = Orchestrator(SMALL_FLEET, SMALL_SPEC, mode="verify")
        # Sabotage one aggregate cell: the next epoch's oracle check
        # must localise the divergence instead of drifting silently.
        orchestrator.state.tenant_units[0, 0] += 1
        orchestrator.state.load_units[0] += 1
        with pytest.raises(DeltaMismatch) as excinfo:
            orchestrator.run()
        assert excinfo.value.epoch == 0

    def test_runs_are_deterministic(self):
        first = run_orchestrator(SMALL_FLEET, SMALL_SPEC)
        second = run_orchestrator(SMALL_FLEET, SMALL_SPEC)
        assert first.to_json() == second.to_json()


class TestEpochMechanics:
    def test_epoch_schedule_fires(self, small_runs):
        run = small_runs["incremental"]
        totals = run.to_json()["totals"]
        assert len(run.epochs) == SMALL_SPEC.epochs
        assert totals["failures"] == SMALL_SPEC.epochs // SMALL_SPEC.failure_every
        assert totals["drains"] == SMALL_SPEC.epochs // SMALL_SPEC.drain_every
        assert totals["arrivals"] > 0 and totals["departures"] > 0

    def test_population_stays_at_capacity(self, small_runs):
        for stats in small_runs["incremental"].epochs:
            assert 0 < stats.flows <= SMALL_FLEET.flow_count

    def test_pr_budget_respected(self, small_runs):
        for stats in small_runs["incremental"].epochs:
            assert stats.pr_grants <= SMALL_SPEC.pr_budget

    def test_tenant_stats_cover_all_tenants(self, small_runs):
        run = small_runs["incremental"]
        assert len(run.tenants) == SMALL_FLEET.tenant_count
        assert sum(t.flows for t in run.tenants) == run.final.flows

    def test_policies_all_run(self):
        for policy in ("round-robin", "least-loaded"):
            spec = dataclasses.replace(SMALL_SPEC, epochs=4, policy=policy)
            result = run_orchestrator(SMALL_FLEET, spec, mode="verify")
            assert result.final.flows > 0

    def test_autoscale_disabled_keeps_fleet_flat(self):
        spec = dataclasses.replace(SMALL_SPEC, epochs=6, autoscale=False,
                                   failure_every=0, drain_every=0)
        result = run_orchestrator(SMALL_FLEET, spec)
        alive = {stats.alive_devices for stats in result.epochs}
        assert alive == {SMALL_FLEET.device_count}
        assert all(stats.scaled_up == stats.scaled_down == 0
                   for stats in result.epochs)

    def test_scale_down_never_drops_capacity_below_demand(self):
        # A heavily over-provisioned fleet breaches the utilization
        # lower bound every epoch; the autoscaler parks devices but the
        # floor guard must keep alive capacity >= offered units with
        # no forced (failure/drain) events in the mix.
        fleet = dataclasses.replace(SMALL_FLEET, flow_count=300,
                                    device_count=40, offered_load=0.02)
        spec = dataclasses.replace(SMALL_SPEC, epochs=10, churn=0.05,
                                   failure_every=0, drain_every=0,
                                   scale_step=3)
        orchestrator = Orchestrator(fleet, spec, mode="verify")
        result = orchestrator.run()
        assert sum(stats.scaled_down for stats in result.epochs) > 0
        state = orchestrator.state
        alive = state.alive_devices()
        assert int(state.capacity_units[alive].sum()) >= int(
            state.load_units.sum())


#: Hypothesis strategy: tiny-but-varied orchestration shapes.  Sizes
#: stay small so each example runs in milliseconds; churn, cadence and
#: budget ranges still cross every interesting boundary (0 = disabled,
#: 1 = every epoch, budget smaller/larger than demand).
_fleet_specs = st.builds(
    FleetSpec,
    flow_count=st.integers(min_value=200, max_value=1_500),
    device_count=st.integers(min_value=_min_fleet_devices(),
                             max_value=_min_fleet_devices() + 8),
    tenant_count=st.integers(min_value=1, max_value=8),
    slots_per_device=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
_orch_specs = st.builds(
    OrchestratorSpec,
    epochs=st.integers(min_value=1, max_value=6),
    churn=st.floats(min_value=0.0, max_value=0.2),
    failure_every=st.integers(min_value=0, max_value=3),
    drain_every=st.integers(min_value=0, max_value=4),
    pr_budget=st.integers(min_value=0, max_value=6),
    scale_step=st.integers(min_value=1, max_value=3),
    spare_fraction=st.floats(min_value=0.0, max_value=1.0),
)


class TestConservationInvariants:
    """Property suite: churn ops conserve flows, residency respects
    slots, autoscaling never drops capacity below active demand."""

    @settings(max_examples=30, deadline=None)
    @given(fleet=_fleet_specs, spec=_orch_specs)
    def test_epoch_invariants(self, fleet, spec):
        orchestrator = Orchestrator(fleet, spec, mode="verify")
        state = orchestrator.state
        slots = fleet.slots_per_device
        result = orchestrator.run()

        # Residency never exceeds the PR slot count on any device, and
        # parked/failed devices hold no residency.
        per_device = state.resident.sum(axis=1)
        assert int(per_device.max(initial=0)) <= slots
        assert not state.resident[state.status != 1].any()

        # Flow conservation: arrivals minus departures exactly explain
        # the population change; migration/drain/failure never create
        # or destroy flows.
        flows = fleet.flow_count
        for stats in result.epochs:
            flows += stats.arrivals - stats.departures
            assert stats.flows == flows
        assert state.active_flows == flows
        assert int(state.flow_active.sum()) == flows

        # The aggregates a whole run of churn produced still match the
        # ground-truth oracle exactly.
        load, units, counts = state.rebuild_aggregates()
        assert np.array_equal(load, state.load_units)
        assert np.array_equal(units, state.tenant_units)
        assert np.array_equal(counts, state.tenant_flows)

        # Autoscaling floor: the scale-down path refuses to drain alive
        # capacity below the offered units.  Failures and drains are
        # forced events outside the autoscaler's control, so the
        # whole-run floor is only guaranteed when none occurred.
        alive = state.alive_devices()
        assert alive.shape[0] >= 1
        forced = sum(stats.failures + stats.drains
                     for stats in result.epochs)
        if forced == 0:
            assert int(state.capacity_units[alive].sum()) >= int(
                state.load_units.sum())

    @settings(max_examples=20, deadline=None)
    @given(fleet=_fleet_specs, data=st.data())
    def test_migration_conserves_flows_and_load(self, fleet, data):
        spec = OrchestratorSpec(epochs=1, churn=0.0)
        state = FleetState(fleet, spec)
        before_flows = state.active_flows
        before_load = int(state.load_units.sum())
        source = data.draw(st.integers(0, state.total_devices - 1))
        target = data.draw(st.integers(0, state.total_devices - 1))
        slots = state.device_flows(source)
        state.move_flows(slots, np.full(slots.shape[0], target,
                                        dtype=np.int64))
        assert state.active_flows == before_flows
        assert int(state.load_units.sum()) == before_load
        load, units, counts = state.rebuild_aggregates()
        assert np.array_equal(load, state.load_units)
        assert np.array_equal(units, state.tenant_units)
        assert np.array_equal(counts, state.tenant_flows)


class TestScale:
    def test_churn_zero_is_stable(self):
        spec = OrchestratorSpec(epochs=3, churn=0.0, failure_every=0,
                                drain_every=0, autoscale=False)
        result = run_orchestrator(SMALL_FLEET, spec, mode="verify")
        flows = {stats.flows for stats in result.epochs}
        assert flows == {SMALL_FLEET.flow_count}

    def test_rate_units_round_trip(self):
        state = FleetState(SMALL_FLEET, SMALL_SPEC)
        offered = state.load_units.sum() / RATE_UNITS_PER_GBPS
        assert offered > 0
