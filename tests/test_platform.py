"""Tests for vendors, devices, the catalog, and the fleet model."""

import pytest

from repro.errors import ResourceExhaustedError
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import (
    DEVICE_A,
    DEVICE_B,
    DEVICE_C,
    DEVICE_D,
    all_devices,
    device_by_name,
    evaluation_devices,
)
from repro.platform.device import (
    AGILEX,
    FpgaDevice,
    PcieGeneration,
    Peripheral,
    PeripheralKind,
    SUPPORTED_FAMILIES,
    VIRTEX_ULTRASCALE_PLUS,
)
from repro.platform.fleet import FleetHistory, Introduction, production_fleet
from repro.platform.vendor import (
    DEFAULT_TOOLCHAINS,
    IpPackaging,
    Vendor,
    default_toolchain,
)


class TestVendors:
    def test_every_vendor_has_a_toolchain(self):
        for vendor in Vendor:
            assert default_toolchain(vendor).vendor is vendor

    def test_packaging_formats_differ(self):
        assert default_toolchain(Vendor.XILINX).ip_packaging is IpPackaging.IP_XACT
        assert default_toolchain(Vendor.INTEL).ip_packaging is IpPackaging.PLATFORM_DESIGNER

    def test_dependency_key(self):
        tool = default_toolchain(Vendor.XILINX)
        assert tool.dependency_key() == ("vivado", tool.version)


class TestPcieGeneration:
    def test_per_lane_rate_doubles(self):
        assert PcieGeneration.GEN4.per_lane_gbps == pytest.approx(
            2 * PcieGeneration.GEN3.per_lane_gbps, rel=0.01
        )

    def test_gen4_x8_is_16gbs(self):
        link = Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN4,
                          pcie_lanes=8)
        assert link.host_gbps == pytest.approx(126, rel=0.01)


class TestPeripheral:
    def test_pcie_needs_generation_and_lanes(self):
        with pytest.raises(ValueError):
            Peripheral(PeripheralKind.PCIE)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            Peripheral(PeripheralKind.QSFP28, count=0)

    def test_network_bandwidth_scales_with_count(self):
        assert Peripheral(PeripheralKind.QSFP28, count=2).network_gbps == 200.0

    def test_hbm_bandwidth(self):
        assert Peripheral(PeripheralKind.HBM).memory_gbps == 460.0


class TestCatalog:
    def test_table2_devices_match_paper(self):
        assert DEVICE_A.chip == "XCVU35P"
        assert DEVICE_A.board_vendor is Vendor.XILINX
        assert DEVICE_A.has_peripheral(PeripheralKind.HBM)
        assert DEVICE_B.chip == "XCVU9P"
        assert DEVICE_B.board_vendor is Vendor.INHOUSE
        assert DEVICE_C.has_peripheral(PeripheralKind.DSFP)
        assert DEVICE_D.board_vendor is Vendor.INTEL

    def test_chip_vendor_follows_silicon_not_board(self):
        # Device B is an in-house board carrying Xilinx silicon.
        assert DEVICE_B.board_vendor is Vendor.INHOUSE
        assert DEVICE_B.chip_vendor is Vendor.XILINX

    def test_every_device_has_exactly_one_pcie_link(self):
        for device in all_devices():
            assert device.pcie.kind is PeripheralKind.PCIE

    def test_lookup_by_name(self):
        assert device_by_name("device-a") is DEVICE_A

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(KeyError, match="device-a"):
            device_by_name("nonexistent")

    def test_evaluation_devices_are_four(self):
        assert len(evaluation_devices()) == 4

    def test_catalog_covers_multiple_process_nodes(self):
        nodes = {device.family.process_nm for device in all_devices()}
        assert len(nodes) >= 3

    def test_supported_families_match_paper_list(self):
        names = {family.name for family in SUPPORTED_FAMILIES}
        assert {"Virtex UltraScale+", "Agilex", "Stratix 10", "Arria 10",
                "Zynq 7000", "Virtex UltraScale"} == names

    def test_describe_mentions_pcie(self):
        assert "PCIe Gen4x8" in DEVICE_A.describe()

    def test_budget_rejects_oversized_design(self):
        huge = ResourceUsage(lut=DEVICE_A.budget.lut + 1)
        with pytest.raises(ResourceExhaustedError):
            DEVICE_A.budget.check_fits(huge)

    def test_device_without_memory_has_no_memory_kinds(self):
        assert DEVICE_C.memory_kinds == []
        assert PeripheralKind.HBM in DEVICE_A.memory_kinds


class TestFleet:
    def test_production_fleet_grows_every_year(self):
        assert production_fleet().is_monotonically_growing()

    def test_new_devices_every_year(self):
        fleet = production_fleet()
        assert all(fleet.new_device_types(year) >= 1 for year in fleet.years)

    def test_years_span_2020_to_2024(self):
        assert production_fleet().years == [2020, 2021, 2022, 2023, 2024]

    def test_lifecycle_retires_units(self):
        fleet = FleetHistory([Introduction(2020, "old", 100, lifecycle_years=2)])
        assert fleet.active_units(2021) == 100
        assert fleet.active_units(2022) == 0

    def test_device_type_count_reflects_heterogeneity(self):
        fleet = production_fleet()
        assert fleet.device_type_count(2024) > fleet.device_type_count(2020)

    def test_growth_table_rows(self):
        rows = production_fleet().growth_table()
        assert len(rows) == 5
        year, new_types, total = rows[0]
        assert year == 2020 and new_types == 3 and total > 0

    def test_empty_fleet(self):
        assert FleetHistory([]).years == []
