"""Tests for the dynamic-power model."""

import pytest

from repro.apps import SecGateway, all_applications
from repro.baselines import CoyoteFramework, HarmoniaFramework, VitisFramework
from repro.core.shell import build_unified_shell
from repro.errors import ConfigurationError
from repro.metrics.power import (
    dynamic_power_mw,
    estimate,
    tailoring_power_saving_mw,
)
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import DEVICE_A


class TestModel:
    def test_power_scales_linearly_with_usage(self):
        single = dynamic_power_mw(ResourceUsage(lut=10_000))
        double = dynamic_power_mw(ResourceUsage(lut=20_000))
        assert double == pytest.approx(2 * single)

    def test_power_scales_with_toggle_rate_and_clock(self):
        usage = ResourceUsage(lut=50_000, bram_36k=100)
        base = dynamic_power_mw(usage, toggle_rate=0.25, clock_mhz=300.0)
        hot = dynamic_power_mw(usage, toggle_rate=0.5, clock_mhz=600.0)
        assert hot == pytest.approx(4 * base)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            dynamic_power_mw(ResourceUsage(lut=1), toggle_rate=0.0)
        with pytest.raises(ConfigurationError):
            dynamic_power_mw(ResourceUsage(lut=1), clock_mhz=-1.0)

    def test_estimate_includes_device_leakage(self):
        result = estimate(DEVICE_A, ResourceUsage(lut=10_000))
        assert result.static_mw > 0
        assert result.total_mw == pytest.approx(result.static_mw + result.dynamic_mw)
        assert result.total_w == pytest.approx(result.total_mw / 1_000.0)

    def test_estimate_rejects_oversized_designs(self):
        with pytest.raises(Exception):
            estimate(DEVICE_A, ResourceUsage(lut=DEVICE_A.budget.lut + 1))


class TestPaperClaims:
    def test_tailored_shells_save_dynamic_power(self):
        """Section 5.4: tailoring 'helps reduce dynamic power consumption'."""
        unified = build_unified_shell(DEVICE_A).resources()
        for app in all_applications():
            tailored = app.tailored_shell(DEVICE_A).resources()
            saving = tailoring_power_saving_mw(DEVICE_A, unified, tailored)
            assert saving > 0, app.name

    def test_sec_gateway_saves_the_most(self):
        unified = build_unified_shell(DEVICE_A).resources()
        savings = {
            app.name: tailoring_power_saving_mw(
                DEVICE_A, unified, app.tailored_shell(DEVICE_A).resources()
            )
            for app in all_applications()
            if app.name in ("sec-gateway", "layer4-lb", "retrieval")
        }
        assert max(savings, key=savings.get) == "sec-gateway"

    def test_harmonia_shells_burn_less_than_baselines(self):
        for bench in ("matmul", "database", "tcp"):
            harmonia = HarmoniaFramework().deploy(DEVICE_A, bench).resources
            for framework in (VitisFramework(), CoyoteFramework()):
                baseline = framework.deploy(DEVICE_A, bench).resources
                assert dynamic_power_mw(harmonia) < dynamic_power_mw(baseline)
