"""System-level property tests: invariants over randomised role demands.

These fuzz the tailoring + manifest + control-plane stack with arbitrary
(but satisfiable) role demands and check the invariants the design
promises for *every* role, not just the five applications.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.host_software import ControlPlane
from repro.core.manifest import from_json, shell_manifest, to_json
from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.platform.catalog import DEVICE_A, DEVICE_B, DEVICE_D, device_by_name

DEVICES = ("device-a", "device-b", "device-d")

demand_strategy = st.builds(
    RoleDemands,
    network_gbps=st.sampled_from([0.0, 25.0, 100.0]),
    memory_bandwidth_gibps=st.sampled_from([0.0, 19.0]),
    memory_capacity_gib=st.sampled_from([0, 8]),
    host_gbps=st.sampled_from([8.0, 32.0, 64.0]),
    bulk_dma=st.booleans(),
    tenants=st.sampled_from([1, 2, 4]),
    needs_multicast=st.booleans(),
    needs_flow_steering=st.booleans(),
    needs_hot_cache=st.booleans(),
    user_clock_mhz=st.sampled_from([250.0, 300.0, 350.0]),
)


def satisfiable(device_name: str, demands: RoleDemands) -> bool:
    device = device_by_name(device_name)
    if demands.needs_network and device.network_gbps < demands.network_gbps:
        return False
    if demands.needs_memory and not device.memory_kinds:
        return False
    return True


def tailor(device_name: str, demands: RoleDemands):
    device = device_by_name(device_name)
    role = Role("fuzz", Architecture.BUMP_IN_THE_WIRE, demands)
    unified = build_unified_shell(device, tenants=demands.tenants)
    return unified, HierarchicalTailor(unified).tailor(role)


@settings(max_examples=40, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_tailored_never_exceeds_unified_resources(device_name, demands):
    assume(satisfiable(device_name, demands))
    unified, tailored = tailor(device_name, demands)
    # Fabric-dominant kinds are monotone under tailoring.  DSP/URAM may
    # legitimately rise when instance substitution trades a few DSPs for
    # tens of thousands of LUTs (e.g. DDR4 MIG vs the DSP-free HBM).
    for kind in ("lut", "ff", "bram_36k"):
        assert getattr(tailored.resources(), kind) <= getattr(unified.resources(), kind)


@settings(max_examples=40, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_tailored_shell_always_fits_its_device(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    device_by_name(device_name).budget.check_fits(tailored.resources())


@settings(max_examples=40, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_retained_rbbs_exactly_match_demands(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    assert ("network" in tailored.rbbs) == demands.needs_network
    assert ("memory" in tailored.rbbs) == demands.needs_memory
    assert ("host" in tailored.rbbs) == demands.needs_host


@settings(max_examples=40, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_selected_instances_meet_performance_demands(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    network = tailored.rbbs.get("network")
    if network is not None:
        assert network.instance.performance_gbps >= demands.network_gbps
    memory = tailored.rbbs.get("memory")
    if memory is not None:
        assert memory.instance.performance_gbps / 8 >= demands.memory_bandwidth_gibps


@settings(max_examples=25, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_property_split_covers_the_native_inventory(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    covered = (tailored.role_config_item_count()
               + len(tailored.shell_oriented_properties))
    assert covered >= tailored.native_config_item_count()


@settings(max_examples=20, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_manifest_roundtrip_for_any_role(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    rebuilt = from_json(to_json(tailored))
    assert shell_manifest(rebuilt) == shell_manifest(tailored)


@settings(max_examples=15, deadline=None)
@given(device_name=st.sampled_from(DEVICES), demands=demand_strategy)
def test_command_bring_up_never_fails_for_any_role(device_name, demands):
    assume(satisfiable(device_name, demands))
    _unified, tailored = tailor(device_name, demands)
    control = ControlPlane(tailored)
    control.command_full_init()
    assert control.kernel.commands_failed == 0
