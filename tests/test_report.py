"""Tests for the benchmark-report collator."""

import pathlib

import pytest

from repro.analysis.report import (
    EXPECTED_EXPERIMENTS,
    EXTENSION_EXPERIMENTS,
    build_report,
    load_results,
    missing_experiments,
)
from repro.cli import main
from repro.errors import ConfigurationError


@pytest.fixture
def fake_results(tmp_path):
    """A results directory with every expected artifact present."""
    for name in EXPECTED_EXPERIMENTS + EXTENSION_EXPERIMENTS[:2]:
        (tmp_path / f"{name}.txt").write_text(f"{name}: row1\n")
    return tmp_path


class TestLoadAndCheck:
    def test_load_reads_every_artifact(self, fake_results):
        results = load_results(fake_results)
        assert set(EXPECTED_EXPERIMENTS) <= set(results)
        assert results["fig11_tailoring_resources"].startswith("fig11")

    def test_missing_detected(self, tmp_path):
        (tmp_path / "fig11_tailoring_resources.txt").write_text("x\n")
        results = load_results(tmp_path)
        missing = missing_experiments(results)
        assert "fig13_command_modifications" in missing
        assert "fig11_tailoring_resources" not in missing

    def test_absent_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="run pytest"):
            load_results(tmp_path / "nope")


class TestBuildReport:
    def test_complete_run_reports_full_counts(self, fake_results):
        report = build_report(fake_results)
        assert f"paper experiments reproduced: {len(EXPECTED_EXPERIMENTS)}/" in report
        assert "INCOMPLETE" not in report
        assert "EXTENSIONS AND ABLATIONS" in report

    def test_incomplete_run_flags_missing(self, tmp_path):
        (tmp_path / "fig11_tailoring_resources.txt").write_text("x\n")
        report = build_report(tmp_path)
        assert "INCOMPLETE RUN" in report
        assert "- fig13_command_modifications" in report

    def test_experiment_bodies_included_in_order(self, fake_results):
        report = build_report(fake_results)
        first = report.index("fig03a_shell_role_workload: row1")
        last = report.index("table4_interface_simplification: row1")
        assert first < last

    def test_expected_list_matches_bench_suite(self):
        """Every emit() in benchmarks/ appears in the expected lists."""
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        emitted = set()
        for path in bench_dir.glob("test_*.py"):
            text = path.read_text()
            position = 0
            while True:
                position = text.find('emit("', position)
                if position < 0:
                    break
                position += len('emit("')
                emitted.add(text[position:text.index('"', position)])
        expected = set(EXPECTED_EXPERIMENTS) | set(EXTENSION_EXPERIMENTS)
        assert emitted <= expected
        # Experiments emitted through a parametrised variable still
        # appear as string literals in some benchmark source.
        all_sources = "".join(path.read_text() for path in bench_dir.glob("test_*.py"))
        for name in expected - emitted:
            assert f'"{name}"' in all_sources, name


class TestCliReport:
    def test_report_command_runs_against_real_results(self, capsys):
        # The repository ships with a full benchmark run's artifacts.
        code = main(["report"])
        out = capsys.readouterr().out
        assert "Harmonia reproduction -- benchmark report" in out
        assert code in (0, 3)
