"""Tests for development-workload claims (Figs 3a/14/15) and formatting."""

import pytest

from repro.analysis.tables import format_percent, format_series, format_table
from repro.apps import all_applications
from repro.core.rbb.host import HostRbb
from repro.core.rbb.memory import MemoryRbb
from repro.core.rbb.network import NetworkRbb
from repro.core.shell import build_unified_shell
from repro.metrics.loc import Migration, reuse_rate, shell_fraction
from repro.platform.catalog import DEVICE_A


class TestRbbReuse:
    """Figure 14: 69-76% cross-vendor, 84-93% cross-chip reuse."""

    @pytest.mark.parametrize("rbb_factory", [NetworkRbb, HostRbb, MemoryRbb])
    def test_cross_vendor_band(self, rbb_factory):
        rate = reuse_rate(rbb_factory().loc(), Migration.CROSS_VENDOR)
        assert 0.65 <= rate <= 0.78

    @pytest.mark.parametrize("rbb_factory", [NetworkRbb, HostRbb, MemoryRbb])
    def test_cross_chip_band(self, rbb_factory):
        rate = reuse_rate(rbb_factory().loc(), Migration.CROSS_CHIP)
        assert 0.82 <= rate <= 0.95

    @pytest.mark.parametrize("rbb_factory", [NetworkRbb, HostRbb, MemoryRbb])
    def test_cross_chip_always_reuses_more(self, rbb_factory):
        loc = rbb_factory().loc()
        assert (reuse_rate(loc, Migration.CROSS_CHIP)
                > reuse_rate(loc, Migration.CROSS_VENDOR))

    def test_same_device_reuse_is_total(self):
        assert reuse_rate(NetworkRbb().loc(), Migration.SAME_DEVICE) == 1.0


class TestApplicationReuse:
    """Figure 15: 70-80% shell reuse across applications."""

    @pytest.mark.parametrize("app_index", range(5))
    def test_app_shell_reuse_band(self, app_index):
        app = all_applications()[app_index]
        loc = app.tailored_shell(DEVICE_A).loc()
        assert 0.65 <= reuse_rate(loc, Migration.CROSS_VENDOR) <= 0.80


class TestShellFraction:
    """Figure 3a: shells occupy 66-87% of handcraft logic."""

    def test_fractions_in_band(self):
        fractions = {
            app.name: shell_fraction(app.tailored_shell(DEVICE_A).loc(), app.role().loc)
            for app in all_applications()
        }
        assert all(0.60 <= value <= 0.90 for value in fractions.values()), fractions
        # The extremes follow the paper's ordering: Sec-Gateway highest,
        # Host Network lowest.
        assert max(fractions, key=fractions.get) == "sec-gateway"
        assert min(fractions, key=fractions.get) == "host-network"


class TestFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert len(lines) == 5

    def test_format_percent(self):
        assert format_percent(0.137) == "13.7%"
        assert format_percent(0.0363, digits=2) == "3.63%"

    def test_format_series(self):
        line = format_series("fig", {"x4": 953.2, "x8": 1905.0}, unit="mm/s")
        assert line.startswith("fig: x4=953")
        assert line.endswith("mm/s")

    def test_float_rendering_thresholds(self):
        table = format_table(["v"], [[12_345.6], [42.0], [0.123], [0]])
        assert "12,346" in table
        assert "42.0" in table
        assert "0.123" in table
