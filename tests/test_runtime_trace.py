"""Tests for the unified runtime: SimContext, tracing, and metrics.

The two load-bearing guarantees:

* **determinism** -- two identical Fig-17-style app sweeps produce
  byte-identical JSONL traces and equal metrics snapshots;
* **single engine** -- no module outside ``repro/runtime`` constructs a
  bare ``Simulator()``; everything joins a context.
"""

import json
import pathlib
import re

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    MetricsRegistry,
    SimContext,
    current_context,
    ensure_context,
)
from repro.sim.clock import ClockDomain


def _sec_gateway():
    from repro.apps import all_applications

    return next(app for app in all_applications() if app.name == "sec-gateway")


def _traced_sweep(packets=200, sizes=(64, 256)):
    from repro.platform.catalog import device_by_name

    context = SimContext(name="fig17", trace=True)
    _sec_gateway().measure(
        device_by_name("device-a"), packet_sizes=sizes,
        packets_per_point=packets, context=context,
    )
    return context


class TestSimContext:
    def test_owns_engine_trace_metrics(self):
        context = SimContext()
        assert context.simulator.now_ps == 0
        assert not context.trace.enabled
        assert len(context.metrics) == 0

    def test_ambient_resolution(self):
        assert current_context() is None
        with SimContext(name="outer") as outer:
            assert current_context() is outer
            assert ensure_context() is outer
            with SimContext(name="inner") as inner:
                assert ensure_context() is inner
            assert current_context() is outer
        assert current_context() is None

    def test_explicit_context_wins_over_ambient(self):
        mine = SimContext(name="mine")
        with SimContext(name="ambient"):
            assert ensure_context(mine) is mine

    def test_no_context_means_fresh_private(self):
        first = ensure_context()
        second = ensure_context()
        assert first is not second

    def test_out_of_order_deactivation_raises(self):
        outer, inner = SimContext(), SimContext()
        outer.activate()
        inner.activate()
        with pytest.raises(ConfigurationError):
            outer.deactivate()
        inner.deactivate()
        outer.deactivate()

    def test_clock_registry_memoises_and_checks(self):
        context = SimContext()
        clk = context.clocks.domain("core", 300.0)
        assert context.clocks.domain("core") is clk
        with pytest.raises(ConfigurationError):
            context.clocks.domain("core", 250.0)
        with pytest.raises(ConfigurationError):
            context.clocks.domain("never-registered")

    def test_clock_registry_adopts_external_domain(self):
        context = SimContext()
        domain = ClockDomain("ext", 125.0)
        assert context.clocks.register(domain) is domain
        assert context.clocks.domain("ext") is domain

    def test_dispatch_hooks_reach_trace_bus(self):
        context = SimContext(trace=True)
        context.trace_dispatches()
        context.simulator.schedule(1_000, lambda: None)
        context.simulator.schedule(2_000, lambda: None)
        context.run()
        dispatches = [r for r in context.trace.records
                      if r["name"] == "engine.dispatch"]
        assert [r["ts_ps"] for r in dispatches] == [1_000, 2_000]


class TestTraceBus:
    def test_disabled_bus_is_silent(self):
        context = SimContext(trace=False)
        span = context.trace.begin("noop")
        context.trace.instant("noop")
        context.trace.complete("noop", 0, 10)
        context.trace.end(span)
        assert len(context.trace) == 0
        assert context.trace.export_jsonl() == ""

    def test_span_nesting_sets_parents(self):
        trace = SimContext(trace=True).trace
        outer = trace.begin("outer", ts_ps=0)
        trace.complete("child", 5, 9)
        inner = trace.begin("inner", ts_ps=10)
        trace.instant("leaf", ts_ps=11)
        trace.end(inner, ts_ps=12)
        trace.end(outer, ts_ps=20)
        by_name = {r["name"]: r for r in trace.records if r["type"] != "E"}
        assert "parent" not in by_name["outer"]
        assert by_name["child"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["leaf"]["parent"] == by_name["inner"]["id"]

    def test_timestamps_default_to_context_clock(self):
        context = SimContext(trace=True)
        context.simulator.schedule(5_000, lambda: context.trace.instant("tick"))
        context.run()
        assert context.trace.records[0]["ts_ps"] == 5_000

    def test_jsonl_round_trips(self):
        context = SimContext(trace=True)
        with context.trace.begin("work", ts_ps=0, size_bytes=64):
            context.trace.complete("stage", 0, 7)
        lines = context.trace.export_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["B", "X", "E"]
        assert records[0]["attrs"] == {"size_bytes": 64}
        assert records[1]["dur_ps"] == 7


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.increment("rbb.network.rx_packets", 3)
        registry.set_gauge("rbb.network.queue_usage", 0.5)
        registry.observe("command.rtt_ps", 1_000)
        registry.observe("command.rtt_ps", 3_000)
        tree = registry.snapshot()
        assert tree["rbb"]["network"]["rx_packets"] == 3
        assert tree["rbb"]["network"]["queue_usage"] == 0.5
        assert tree["command"]["rtt_ps"]["count"] == 2
        assert tree["command"]["rtt_ps"]["p50_ps"] == 1_000

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ConfigurationError):
            registry.gauge("a.b")

    def test_bad_paths_raise(self):
        registry = MetricsRegistry()
        for path in ("", ".x", "x.", "a..b"):
            with pytest.raises(ConfigurationError):
                registry.counter(path)

    def test_namespace_scopes_and_clears(self):
        registry = MetricsRegistry()
        ns = registry.namespace("rbb.network")
        ns.increment("rx_packets")
        registry.increment("rbb.host.submitted")
        assert ns.names() == ["rx_packets"]
        ns.clear()
        assert "rbb.network.rx_packets" not in registry
        assert "rbb.host.submitted" in registry

    def test_subtree_snapshot(self):
        registry = MetricsRegistry()
        registry.increment("a.b.c", 7)
        registry.increment("a.d", 1)
        assert registry.snapshot("a.b") == {"c": 7}

    def test_dict_views_are_dict_compatible(self):
        from repro.runtime import CounterDictView, GaugeDictView

        ns = MetricsRegistry().namespace("rbb.test")
        counters, gauges = CounterDictView(ns), GaugeDictView(ns)
        counters["hits"] = counters.get("hits", 0) + 2
        gauges["usage"] = 0.25
        assert counters["hits"] == 2
        assert dict(counters) == {"hits": 2}
        assert gauges == {"usage": 0.25}
        assert "hits" not in gauges  # views are per-kind
        counters.clear()
        assert counters == {}
        assert gauges == {"usage": 0.25}


class TestRbbMonitorsOnRegistry:
    def test_shell_monitors_land_in_ambient_registry(self, device_a):
        from repro.core.shell import build_unified_shell
        from repro.workloads.packets import PacketGenerator

        with SimContext() as context:
            shell = build_unified_shell(device_a)
            network = shell.rbbs["network"]
            network.process_packets(PacketGenerator().uniform_stream(50, 256))
        tree = context.metrics.snapshot()
        assert tree["rbb"]["network"]["rx_packets"] == 50
        snapshot = network.monitor_snapshot()
        assert snapshot.counters["rx_packets"] == 50

    def test_private_registry_without_context(self, device_a):
        from repro.core.shell import build_unified_shell

        shell = build_unified_shell(device_a)
        network = shell.rbbs["network"]
        network._bump("rx_packets", 5)
        assert network.counters["rx_packets"] == 5
        assert current_context() is None


class TestSweepDeterminism:
    def test_identical_sweeps_byte_identical_traces(self):
        first, second = _traced_sweep(), _traced_sweep()
        jsonl = first.trace.export_jsonl()
        assert jsonl  # non-empty
        assert jsonl == second.trace.export_jsonl()
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_trace_covers_every_datapath_layer(self):
        names = _traced_sweep().trace.span_names()
        joined = " ".join(names)
        assert "network.link" in joined          # physical link
        assert "(ingress)" in joined             # RBB specific instance
        assert ".wrapper" in joined              # interface wrapper
        assert "sec-gateway.cdc" in joined       # parameterised CDC
        assert "sec-gateway.role" in joined      # user role
        assert "(egress)" in joined

    def test_sweep_metrics_tree_is_populated(self):
        tree = _traced_sweep().metrics.snapshot()
        point = tree["app"]["sec-gateway"]["harmonia"]["64B"]
        assert point["throughput_gbps"] > 0
        sweep = tree["sweep"]["sec-gateway"]["harmonia"]["64B"]
        assert sweep["latency_ps"]["count"] == 200

    def test_untraced_measure_matches_traced_numbers(self):
        from repro.platform.catalog import device_by_name

        device = device_by_name("device-a")
        app = _sec_gateway()
        plain = app.measure(device, packet_sizes=(128,), packets_per_point=100)
        traced = app.measure(device, packet_sizes=(128,),
                             packets_per_point=100,
                             context=SimContext(trace=True))
        assert plain[0].throughput_gbps == traced[0].throughput_gbps
        assert plain[0].latency_us == traced[0].latency_us


class TestSharedEngine:
    def test_components_share_the_context_clock(self):
        from repro.core.interrupts import InterruptController

        with SimContext() as context:
            controller = InterruptController(vector_count=4)
            assert controller.simulator is context.simulator
            controller.bind(0, "mac")
            controller.raise_event(0)
            context.run()
        assert len(controller.deliveries) == 1
        assert context.metrics.snapshot()["irq"]["delivered"] == 1

    def test_des_pipeline_joins_and_publishes(self):
        from repro.sim.des_pipeline import DesPacket, DesPipeline
        from repro.sim.pipeline import PipelineStage

        stage = PipelineStage("s0", ClockDomain("clk", 200.0), 64)
        with SimContext() as context:
            pipeline = DesPipeline([stage], fifo_depth=8, name="unit")
            assert pipeline.simulator is context.simulator
            result = pipeline.run(
                [DesPacket(size_bytes=64, created_ps=i * 10_000)
                 for i in range(5)]
            )
        assert result.delivered == 5
        tree = context.metrics.snapshot()["des"]["unit"]
        assert tree["delivered"] == 5
        assert tree["latency_ps"]["count"] == 5

    def test_command_path_rtt_publishes_histogram(self):
        from repro.core.command.timing import burst_latency_profile

        with SimContext() as context:
            burst_latency_profile(burst_size=4)
        tree = context.metrics.snapshot()["command"]
        assert tree["completed"] == 4
        assert tree["rtt_ps"]["count"] == 4


SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: The definition site (class + usage docstring) is the one legal mention.
_ALLOWED = {SRC_ROOT / "sim" / "engine.py"}


class TestNoBareSimulatorConstruction:
    def test_only_runtime_constructs_simulator(self):
        """Grep-check: every engine comes from a SimContext."""
        pattern = re.compile(r"\bSimulator\(\)")
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path in _ALLOWED or SRC_ROOT / "runtime" in path.parents:
                continue
            for number, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(SRC_ROOT)}:{number}")
        assert offenders == [], (
            "bare Simulator() constructed outside repro/runtime: "
            + ", ".join(offenders)
        )
