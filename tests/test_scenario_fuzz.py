"""The differential conformance fuzzer: determinism, shrinking, and
the pinned corpus replay."""

import glob
import os

from repro.scenario import DifferentialFuzzer, load_scenario
from repro.scenario.fuzz import feasible_pairs

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "scenarios")


def corpus_paths():
    paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
    assert len(paths) == 10, "the pinned corpus must hold ten scenarios"
    return paths


class TestGeneration:
    def test_generation_is_seed_deterministic(self):
        first_fuzzer = DifferentialFuzzer(seed=42)
        first = [first_fuzzer.generate() for _ in range(5)]
        second_fuzzer = DifferentialFuzzer(seed=42)
        second = [second_fuzzer.generate() for _ in range(5)]
        assert first == second

    def test_different_seeds_diverge(self):
        one = DifferentialFuzzer(seed=1)
        two = DifferentialFuzzer(seed=2)
        assert ([one.generate() for _ in range(3)]
                != [two.generate() for _ in range(3)])

    def test_generated_pairs_are_feasible(self):
        fuzzer = DifferentialFuzzer(seed=9)
        pairs = feasible_pairs()
        for _ in range(20):
            scenario = fuzzer.generate()
            for app in scenario.apps:
                for device in scenario.devices:
                    assert device in pairs[app], (app, device)

    def test_mutations_stay_valid_and_feasible(self):
        fuzzer = DifferentialFuzzer(seed=11)
        pairs = feasible_pairs()
        scenario = fuzzer.generate()
        for _ in range(25):
            scenario = fuzzer.mutate(scenario)
            scenario.validate_names()
            for app in scenario.apps:
                for device in scenario.devices:
                    assert device in pairs[app], (app, device)


class TestCampaign:
    def test_clean_campaign_reports_no_failures(self):
        report = DifferentialFuzzer(seed=3, max_packets=8).run(budget=8)
        assert report.ok
        assert report.scenarios_run == 8
        assert report.points_checked >= 8
        assert report.checks_run == 8 * 6
        assert report.coverage > 0

    def test_campaign_is_seed_deterministic(self):
        first = DifferentialFuzzer(seed=5, max_packets=8).run(budget=6)
        second = DifferentialFuzzer(seed=5, max_packets=8).run(budget=6)
        assert first.to_json() == second.to_json()

    def test_coverage_guides_the_corpus(self):
        fuzzer = DifferentialFuzzer(seed=4, max_packets=8)
        fuzzer.run(budget=6)
        assert fuzzer.corpus
        assert len(fuzzer.coverage) > 0


class TestInjectedFailuresAndShrinking:
    def test_injected_failure_is_found_and_minimised(self, tmp_path):
        fuzzer = DifferentialFuzzer(seed=13, max_packets=8,
                                    repro_dir=str(tmp_path),
                                    inject_size_threshold=1_024)
        report = fuzzer.run(budget=12)
        assert report.failures, "seed 13 must generate a >=1024B size"
        failure = report.failures[0]
        assert failure.check == "injected"
        shrunk = failure.shrunk
        # Minimal shape: one app, one device, one offending size, one packet.
        assert len(shrunk.apps) == 1
        assert len(shrunk.devices) == 1
        assert len(shrunk.workload.packet_sizes) == 1
        assert shrunk.workload.packet_sizes[0] >= 1_024
        assert shrunk.workload.packets_per_point == 1
        assert shrunk.workload.trace is False
        assert shrunk.engine == "auto"

    def test_repro_file_replays_the_shrunk_scenario(self, tmp_path):
        fuzzer = DifferentialFuzzer(seed=13, max_packets=8,
                                    repro_dir=str(tmp_path),
                                    inject_size_threshold=1_024)
        report = fuzzer.run(budget=12)
        failure = report.failures[0]
        assert failure.repro_path is not None
        assert load_scenario(failure.repro_path) == failure.shrunk
        assert failure.shrunk.scenario_id()[:16] in failure.repro_path

    def test_shrinking_is_deterministic_across_runs(self, tmp_path):
        runs = []
        for tag in ("a", "b"):
            repro_dir = tmp_path / tag
            fuzzer = DifferentialFuzzer(seed=13, max_packets=8,
                                        repro_dir=str(repro_dir),
                                        inject_size_threshold=1_024)
            report = fuzzer.run(budget=12)
            runs.append([(f.check, f.detail, f.shrunk.canonical_json())
                         for f in report.failures])
        assert runs[0] == runs[1]

    def test_report_json_counts_failures(self):
        fuzzer = DifferentialFuzzer(seed=13, max_packets=8,
                                    inject_size_threshold=1)
        report = fuzzer.run(budget=3)
        payload = report.to_json()
        assert payload["ok"] is False
        assert len(payload["failures"]) == len(report.failures)
        assert payload["failures"][0]["scenario_id"] == \
            report.failures[0].shrunk.scenario_id()


class TestVectorBatchCheck:
    def test_vector_batch_is_a_standing_check(self):
        fuzzer = DifferentialFuzzer(seed=1)
        assert "vector-batch" in [name for name, _ in fuzzer.checks]

    def test_broken_batch_kernel_is_caught_and_shrunk(self, monkeypatch,
                                                      tmp_path):
        import repro.sim.vector as vector_module

        real = vector_module.run_packet_sweep_vector_batch

        def skewed(chain, sizes, count, offered_loads_bps=None):
            rows = real(chain, sizes, count,
                        offered_loads_bps=offered_loads_bps)
            # Perturb the first row by one ULP-ish nudge: the check must
            # catch even the smallest float divergence from per-point.
            return ([(rows[0][0] * (1 + 1e-12), rows[0][1])] + rows[1:]
                    if rows else rows)

        monkeypatch.setattr(vector_module, "run_packet_sweep_vector_batch",
                            skewed)
        fuzzer = DifferentialFuzzer(seed=3, max_packets=8,
                                    repro_dir=str(tmp_path))
        report = fuzzer.run(budget=6)
        assert not report.ok
        failure = report.failures[0]
        assert failure.check == "vector-batch"
        assert "per-point" in failure.detail
        shrunk = failure.shrunk
        assert len(shrunk.apps) == 1
        assert len(shrunk.devices) == 1
        assert len(shrunk.workload.packet_sizes) == 1
        # One-packet trains have zero throughput, which the relative
        # skew cannot perturb, so the minimal failing train is 2 packets.
        assert shrunk.workload.packets_per_point == 2
        assert failure.repro_path is not None
        assert load_scenario(failure.repro_path) == shrunk


class TestEpochDeltaCheck:
    def test_epoch_delta_is_a_standing_check(self):
        fuzzer = DifferentialFuzzer(seed=1)
        assert "epoch-delta" in [name for name, _ in fuzzer.checks]

    def test_default_stream_is_unchanged_by_epoch_support(self):
        # epoch_rate=0.0 must not consume any extra rng draws: the
        # default generation stream stays byte-identical.
        plain = DifferentialFuzzer(seed=42)
        epoch_aware = DifferentialFuzzer(seed=42, epoch_rate=0.0)
        assert ([plain.generate() for _ in range(5)]
                == [epoch_aware.generate() for _ in range(5)])

    def test_epoch_generation_is_seed_deterministic(self):
        first = DifferentialFuzzer(seed=21, epoch_rate=1.0)
        second = DifferentialFuzzer(seed=21, epoch_rate=1.0)
        assert ([first.generate_epoch() for _ in range(4)]
                == [second.generate_epoch() for _ in range(4)])

    def test_epoch_campaign_runs_clean(self):
        fuzzer = DifferentialFuzzer(seed=6, epoch_rate=1.0,
                                    max_epochs=4, max_epoch_flows=800)
        report = fuzzer.run(budget=6)
        assert report.ok, [f.detail for f in report.failures]
        assert report.scenarios_run == 6
        assert any(key[0] == "fleet-epochs" for key in fuzzer.coverage)

    def test_epoch_campaign_is_seed_deterministic(self):
        first = DifferentialFuzzer(seed=7, epoch_rate=1.0, max_epochs=3,
                                   max_epoch_flows=500).run(budget=4)
        second = DifferentialFuzzer(seed=7, epoch_rate=1.0, max_epochs=3,
                                    max_epoch_flows=500).run(budget=4)
        assert first.to_json() == second.to_json()

    def test_epoch_mutations_stay_valid(self):
        fuzzer = DifferentialFuzzer(seed=8, epoch_rate=1.0)
        scenario = fuzzer.generate_epoch()
        for _ in range(25):
            scenario = fuzzer.mutate(scenario)
            scenario.validate_names()
            assert scenario.kind == "fleet"
            assert scenario.epochs is not None

    def test_injected_epoch_failure_is_found_and_shrunk(self, tmp_path):
        shrunk_texts = []
        for tag in ("a", "b"):
            fuzzer = DifferentialFuzzer(
                seed=19, epoch_rate=1.0, max_epochs=6,
                max_epoch_flows=500, repro_dir=str(tmp_path / tag),
                inject_epoch_threshold=2)
            report = fuzzer.run(budget=6)
            assert report.failures, "an epochs>=2 scenario must appear"
            failure = report.failures[0]
            assert failure.check == "injected-epoch"
            shrunk = failure.shrunk
            # Minimal epoch shape near the threshold (the greedy halver
            # stops within one halving step of it), everything else at
            # its smallest/most-default value.
            assert 2 <= shrunk.epochs.epochs <= 3
            assert shrunk.tenancy.flow_count == 1
            assert shrunk.tenancy.tenant_count == 1
            assert shrunk.epochs.churn == 0.0
            assert shrunk.epochs.autoscale is False
            assert shrunk.epochs.policy == "flow-hash"
            assert failure.repro_path is not None
            assert load_scenario(failure.repro_path) == shrunk
            shrunk_texts.append([f.shrunk.canonical_json()
                                 for f in report.failures])
        assert shrunk_texts[0] == shrunk_texts[1]


class TestPinnedCorpus:
    """Replay of the ten pinned fuzzer scenarios, every run."""

    def test_corpus_files_are_canonical_json(self):
        for path in corpus_paths():
            scenario = load_scenario(path)
            with open(path, encoding="utf-8") as handle:
                assert handle.read() == scenario.canonical_json() + "\n"

    def test_corpus_replays_clean_through_every_check(self):
        fuzzer = DifferentialFuzzer(seed=0)
        for path in corpus_paths():
            scenario = load_scenario(path)
            failure = fuzzer.check_scenario(scenario)
            assert failure is None, (path, failure)

    def test_corpus_ids_match_their_file_names(self):
        for path in corpus_paths():
            scenario = load_scenario(path)
            assert scenario.scenario_id()[:12] in os.path.basename(path)
