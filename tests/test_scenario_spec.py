"""The unified declarative Scenario spec: validation, canonical
serialisation, identity, and the tier-native conversions."""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, HarmoniaError
from repro.runtime.buildfarm import DEFAULT_SOFTWARE, BuildPlan, fleet_build_plan
from repro.runtime.fleet import FleetSpec
from repro.runtime.sweep import SweepPlan, chain_signature, point_chain, sweep_cache_key
from repro.scenario import (
    DEFAULT_BUILD_SOFTWARE,
    SCENARIO_VERSION,
    BuildSpec,
    EpochsSpec,
    Scenario,
    TenancySpec,
    WorkloadSpec,
    load_scenario,
    loads_scenario,
    save_scenario,
)
from repro.scenario.spec import known_app_names, known_device_names, require_engine


def sweep_scenario(**changes):
    base = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",))
    return base.replace(**changes) if changes else base


class TestValidation:
    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(ConfigurationError, match="sweep, fleet, build"):
            Scenario(kind="orchestrate")

    def test_unknown_version_is_loud(self):
        with pytest.raises(ConfigurationError, match="version"):
            sweep_scenario(version=SCENARIO_VERSION + 1)

    def test_unknown_engine_lists_engines(self):
        with pytest.raises(ConfigurationError, match="auto, vector, des"):
            sweep_scenario(engine="warp")

    def test_unknown_app_lists_known_names(self):
        scenario = sweep_scenario(apps=("nope",))
        with pytest.raises(ConfigurationError) as caught:
            scenario.validate_names()
        message = str(caught.value)
        assert "nope" in message
        for name in known_app_names():
            assert name in message

    def test_unknown_device_lists_catalog(self):
        scenario = sweep_scenario(devices=("nope",))
        with pytest.raises(ConfigurationError) as caught:
            scenario.validate_names()
        assert "device-a" in str(caught.value)

    def test_sweep_kind_needs_apps_and_devices(self):
        with pytest.raises(ConfigurationError, match="at least one app"):
            Scenario(kind="sweep")

    def test_configuration_error_is_harmonia_error(self):
        with pytest.raises(HarmoniaError):
            Scenario(kind="orchestrate")

    def test_unknown_json_key_is_rejected(self):
        data = sweep_scenario().to_json()
        data["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            Scenario.from_json(data)

    def test_unknown_workload_key_is_rejected(self):
        data = sweep_scenario().to_json()
        data["workload"]["jitter"] = True
        with pytest.raises(ConfigurationError, match="jitter"):
            Scenario.from_json(data)

    def test_bool_is_not_an_integer(self):
        data = sweep_scenario().to_json()
        data["seed"] = True
        with pytest.raises(ConfigurationError, match="seed"):
            Scenario.from_json(data)

    def test_packet_sizes_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            WorkloadSpec(packet_sizes=(0,))

    def test_tenancy_mirrors_fleet_spec_messages(self):
        with pytest.raises(ConfigurationError, match="need at least one flow"):
            TenancySpec(flow_count=0)

    def test_require_engine_passes_known_names(self):
        assert require_engine("vector") == "vector"

    def test_non_mapping_scenario_is_loud(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            Scenario.from_json(["sweep"])

    def test_missing_kind_is_loud(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Scenario.from_json({"apps": ["sec-gateway"]})


class TestCanonicalSerialisation:
    def test_round_trip_is_identity(self):
        scenario = sweep_scenario(
            workload=WorkloadSpec(packet_sizes=(64, 777), trace=True))
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_canonical_bytes_ignore_key_order(self):
        scenario = sweep_scenario()
        data = scenario.to_json()
        reordered = dict(reversed(list(data.items())))
        reordered["workload"] = dict(
            reversed(list(data["workload"].items())))
        clone = Scenario.from_json(reordered)
        assert clone.canonical_json() == scenario.canonical_json()

    def test_loads_rejects_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            loads_scenario("{not json", source="inline.json")

    def test_save_load_round_trip(self, tmp_path):
        scenario = sweep_scenario()
        path = tmp_path / "scenario.json"
        text = save_scenario(scenario, str(path))
        assert path.read_text() == text + "\n"
        assert load_scenario(str(path)) == scenario

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_scenario(str(tmp_path / "absent.json"))


class TestScenarioIdentity:
    def test_engine_is_excluded_from_identity(self):
        scenario = sweep_scenario()
        ids = {scenario.replace(engine=engine).scenario_id()
               for engine in ("auto", "vector", "des")}
        assert len(ids) == 1

    def test_workload_changes_identity(self):
        scenario = sweep_scenario()
        other = scenario.replace(workload=dataclasses.replace(
            scenario.workload, packets_per_point=7))
        assert other.scenario_id() != scenario.scenario_id()

    def test_identity_survives_key_reordering(self):
        scenario = sweep_scenario()
        reordered = dict(reversed(list(scenario.to_json().items())))
        assert Scenario.from_json(reordered).scenario_id() == scenario.scenario_id()


class TestEpochsSection:
    def _fleet(self, **changes):
        base = Scenario(kind="fleet",
                        tenancy=TenancySpec(flow_count=500, device_count=12,
                                            tenant_count=3))
        return base.replace(**changes) if changes else base

    def test_round_trips_canonically(self):
        scenario = self._fleet(epochs=EpochsSpec(epochs=6, churn=0.05,
                                                 policy="round-robin"))
        clone = loads_scenario(scenario.canonical_json())
        assert clone == scenario
        assert clone.epochs.policy == "round-robin"
        assert clone.canonical_json() == scenario.canonical_json()

    def test_absent_section_is_omitted_from_json(self):
        # Identity stability: pre-epochs fleet scenarios must keep
        # their serialised bytes (and so their ids) unchanged.
        payload = self._fleet().to_json()
        assert "epochs" not in payload

    def test_section_changes_identity(self):
        plain = self._fleet()
        stepped = self._fleet(epochs=EpochsSpec(epochs=6))
        assert plain.scenario_id() != stepped.scenario_id()
        other = self._fleet(epochs=EpochsSpec(epochs=7))
        assert other.scenario_id() != stepped.scenario_id()

    def test_only_fleet_scenarios_take_epochs(self):
        with pytest.raises(ConfigurationError, match="fleet"):
            sweep_scenario().replace(epochs=EpochsSpec())

    def test_validation_mirrors_orchestrator_spec(self):
        for kwargs in ({"epochs": 0}, {"churn": 0.9}, {"scale_step": 0},
                       {"policy": "bogus"}):
            with pytest.raises(ConfigurationError):
                EpochsSpec(**kwargs)

    def test_unknown_epoch_key_is_rejected(self):
        scenario = self._fleet(epochs=EpochsSpec())
        payload = scenario.to_json()
        payload["epochs"]["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            Scenario.from_json(payload)

    def test_orchestrator_spec_conversion(self):
        from repro.runtime.orchestrator import OrchestratorSpec

        scenario = self._fleet(epochs=EpochsSpec(epochs=6, churn=0.05,
                                                 pr_budget=3))
        spec = scenario.orchestrator_spec()
        assert spec == OrchestratorSpec(epochs=6, churn=0.05, pr_budget=3)
        with pytest.raises(ConfigurationError, match="epochs"):
            self._fleet().orchestrator_spec()


class TestSweepCacheKeyInsensitivity:
    """Satellite: the cache key must not see field order or engine."""

    def _keys(self, scenario):
        keys = []
        for point in scenario.expand_points():
            chain = point_chain(point)
            keys.append(sweep_cache_key(
                chain_signature(chain), point.packet_size_bytes,
                point.packet_count,
                trace_of=chain.name if point.trace else None))
        return keys

    def test_cache_keys_ignore_json_field_order(self):
        scenario = sweep_scenario(
            workload=WorkloadSpec(packet_sizes=(64, 256)))
        reordered = Scenario.from_json(
            dict(reversed(list(scenario.to_json().items()))))
        assert self._keys(reordered) == self._keys(scenario)

    def test_cache_keys_ignore_engine_choice(self):
        scenario = sweep_scenario(
            workload=WorkloadSpec(packet_sizes=(64, 256)))
        per_engine = [self._keys(scenario.replace(engine=engine))
                      for engine in ("auto", "vector", "des")]
        assert per_engine[0] == per_engine[1] == per_engine[2]


class TestTierConversions:
    def test_sweep_plan_round_trips_through_scenario(self):
        plan = SweepPlan(apps=("sec-gateway", "host-network"),
                         devices=("device-a",), packet_sizes=(64, 128),
                         packets_per_point=10, trace=True)
        assert SweepPlan.from_scenario(plan.to_scenario()) == plan

    def test_plan_expand_delegates_to_scenario(self):
        plan = SweepPlan(apps=("sec-gateway",), devices=("device-a",),
                         packet_sizes=(64, 128), packets_per_point=10)
        assert plan.expand() == plan.to_scenario().expand_points()

    def test_scenario_engine_lands_on_every_point(self):
        scenario = sweep_scenario(engine="des")
        assert all(point.engine == "des"
                   for point in scenario.expand_points())

    def test_fleet_spec_from_scenario(self):
        scenario = Scenario(kind="fleet", seed=7, year=2_022,
                            tenancy=TenancySpec(flow_count=123,
                                                device_count=8,
                                                tenant_count=2,
                                                slots_per_device=3,
                                                alpha=1.2,
                                                offered_load=0.5,
                                                mean_packet_bytes=256))
        spec = FleetSpec.from_scenario(scenario)
        assert spec == FleetSpec(flow_count=123, device_count=8,
                                 tenant_count=2, slots_per_device=3,
                                 alpha=1.2, offered_load=0.5,
                                 mean_packet_bytes=256, seed=7, year=2_022)

    def test_build_plan_from_explicit_devices(self):
        scenario = Scenario(kind="build", apps=("sec-gateway",),
                            devices=("device-a", "device-b"),
                            build=BuildSpec(effort=2))
        plan = BuildPlan.from_scenario(scenario)
        assert plan == BuildPlan(devices=("device-a", "device-b"),
                                 roles=("sec-gateway",), effort=2,
                                 software=DEFAULT_SOFTWARE)

    def test_build_plan_defaults_to_fleet_year(self):
        scenario = Scenario(kind="build", year=2_022)
        assert BuildPlan.from_scenario(scenario) == fleet_build_plan(year=2_022)

    def test_kind_mismatch_is_loud(self):
        fleet = Scenario(kind="fleet")
        with pytest.raises(ConfigurationError, match="sweep"):
            SweepPlan.from_scenario(fleet)
        with pytest.raises(ConfigurationError, match="fleet"):
            FleetSpec.from_scenario(sweep_scenario())
        with pytest.raises(ConfigurationError, match="build"):
            BuildPlan.from_scenario(fleet)

    def test_default_build_software_matches_build_farm(self):
        assert DEFAULT_BUILD_SOFTWARE == DEFAULT_SOFTWARE


# ---------------------------------------------------------------------------
# Property suite: serialisation is exact over the whole valid space
# ---------------------------------------------------------------------------

app_lists = st.lists(st.sampled_from(known_app_names()),
                     min_size=1, max_size=3, unique=True).map(tuple)
device_lists = st.lists(st.sampled_from(known_device_names()),
                        min_size=1, max_size=3, unique=True).map(tuple)
workloads = st.builds(
    WorkloadSpec,
    packet_sizes=st.lists(st.integers(1, 9_000), min_size=1, max_size=4,
                          unique=True).map(lambda v: tuple(sorted(v))),
    packets_per_point=st.integers(1, 100_000),
    with_harmonia=st.booleans(),
    include_path_latency=st.booleans(),
    trace=st.booleans(),
)
tenancies = st.builds(
    TenancySpec,
    flow_count=st.integers(1, 10_000_000),
    device_count=st.integers(1, 65_536),
    tenant_count=st.integers(1, 4_096),
    slots_per_device=st.integers(1, 64),
    alpha=st.floats(0.1, 4.0, allow_nan=False, allow_infinity=False),
    offered_load=st.floats(0.01, 2.0, allow_nan=False, allow_infinity=False),
    mean_packet_bytes=st.integers(1, 9_000),
)
builds = st.builds(
    BuildSpec,
    effort=st.integers(0, 8),
    software=st.lists(st.sampled_from(("driver", "runtime-lib",
                                       "health-agent", "telemetry")),
                      min_size=0, max_size=4, unique=True).map(tuple),
)
scenarios = st.builds(
    Scenario,
    kind=st.sampled_from(("sweep", "fleet", "build")),
    apps=app_lists,
    devices=device_lists,
    engine=st.sampled_from(("auto", "vector", "des")),
    seed=st.integers(0, 2 ** 31),
    year=st.integers(2_016, 2_030),
    workload=workloads,
    tenancy=tenancies,
    build=builds,
)


class TestSerialisationProperties:
    @given(scenario=scenarios)
    @settings(max_examples=60, deadline=None)
    def test_canonical_round_trip_is_byte_exact(self, scenario):
        text = scenario.canonical_json()
        clone = Scenario.from_json(json.loads(text))
        assert clone == scenario
        assert clone.canonical_json() == text

    @given(scenario=scenarios)
    @settings(max_examples=60, deadline=None)
    def test_identity_is_engine_free_and_stable(self, scenario):
        base = scenario.scenario_id()
        for engine in ("auto", "vector", "des"):
            assert scenario.replace(engine=engine).scenario_id() == base
        reordered = dict(reversed(list(scenario.to_json().items())))
        assert Scenario.from_json(reordered).scenario_id() == base
