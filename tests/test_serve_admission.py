"""Admission control and request coalescing, in isolation.

Token buckets and the bounded queue use an injected clock, so every
assertion here is deterministic -- no sleeps, no load-dependent flakes.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.errors import ConfigurationError
from repro.serve import AdmissionController, RequestCoalescer, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False]
        clock.advance(0.5)   # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(3_600.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_bad_parameters_are_loud(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_quota_disabled_by_default(self):
        admission = AdmissionController(max_queue=4)
        assert all(admission.check_quota("anyone") for _ in range(1_000))
        assert admission.quota_rejections == 0

    def test_quotas_are_per_tenant(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_queue=4, quota_rps=1.0, quota_burst=1.0, clock=clock)
        assert admission.check_quota("alpha")
        assert not admission.check_quota("alpha")   # alpha's bucket empty
        assert admission.check_quota("beta")        # beta unaffected
        assert admission.quota_rejections == 1
        clock.advance(1.0)
        assert admission.check_quota("alpha")       # refilled

    def test_default_burst_is_twice_rate(self):
        admission = AdmissionController(max_queue=1, quota_rps=5.0)
        assert admission.quota_burst == 10.0

    def test_queue_bound_sheds_then_recovers(self):
        admission = AdmissionController(max_queue=2)
        assert admission.try_enter()
        assert admission.try_enter()
        assert not admission.try_enter()
        assert admission.shed == 1
        assert admission.queue_depth == 2
        admission.leave()
        assert admission.try_enter()

    def test_unbalanced_leave_is_loud(self):
        admission = AdmissionController(max_queue=1)
        with pytest.raises(ConfigurationError):
            admission.leave()

    def test_bad_bounds_are_loud(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=1, quota_burst=0.0)

    def test_concurrent_entries_respect_the_bound(self):
        admission = AdmissionController(max_queue=8)
        admitted = []
        barrier = threading.Barrier(32)

        def worker():
            barrier.wait()
            if admission.try_enter():
                admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 8
        assert admission.queue_depth == 8
        assert admission.shed == 24


class TestRequestCoalescer:
    def test_leader_then_followers_share_one_future(self):
        coalescer = RequestCoalescer()
        leader, future = coalescer.join("key")
        assert leader
        for _ in range(3):
            is_leader, attached = coalescer.join("key")
            assert not is_leader
            assert attached is future
        assert coalescer.counters() == {
            "executions": 1, "attached": 3, "inflight": 1}
        coalescer.resolve("key", future, b"payload")
        assert future.result(timeout=1) == b"payload"
        assert coalescer.inflight == 0

    def test_distinct_keys_never_share(self):
        coalescer = RequestCoalescer()
        _, future_a = coalescer.join(("sweep", "aaa", None))
        _, future_b = coalescer.join(("sweep", "bbb", None))
        assert future_a is not future_b
        assert coalescer.executions == 2

    def test_completion_retires_the_key(self):
        coalescer = RequestCoalescer()
        leader, future = coalescer.join("key")
        coalescer.resolve("key", future, b"one")
        again, fresh = coalescer.join("key")
        assert again                      # a new run, not the stale future
        assert fresh is not future

    def test_rejection_propagates_to_followers(self):
        coalescer = RequestCoalescer()
        _, future = coalescer.join("key")
        _, attached = coalescer.join("key")
        coalescer.reject("key", future, RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            attached.result(timeout=1)

    def test_concurrent_joins_elect_exactly_one_leader(self):
        coalescer = RequestCoalescer()
        barrier = threading.Barrier(16)
        leaders = []
        futures = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            leader, future = coalescer.join("key")
            with lock:
                futures.append(future)
                if leader:
                    leaders.append(future)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(leaders) == 1
        assert len(set(map(id, futures))) == 1
        assert coalescer.executions == 1
        assert coalescer.attached == 15
