"""``repro.cli serve`` as a real subprocess: start, serve, shut down.

This is the lifecycle CI exercises: spawn the daemon, read its
announcement line, health-check it, run one scenario, then SIGTERM and
require a clean exit 0 -- the same contract an operator's service
manager relies on.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.scenario import Scenario, WorkloadSpec
from repro.serve import ServeClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SWEEP = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                 workload=WorkloadSpec(packet_sizes=(64,),
                                       packets_per_point=50))


def _spawn_daemon(extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        cwd=REPO_ROOT, text=True)


def _read_port(process):
    line = process.stdout.readline().strip()
    assert line.startswith("serving on http://"), line
    return int(line.rsplit(":", 1)[1])


class TestServeSubprocess:
    def test_full_lifecycle(self):
        process = _spawn_daemon()
        try:
            port = _read_port(process)
            client = ServeClient("127.0.0.1", port, timeout=30)
            assert client.health()["status"] == "ok"

            response = client.run_scenario(SWEEP, endpoint="sweep")
            assert response.status == 200
            body = response.json()
            assert body["scenario_id"] == SWEEP.scenario_id()
            assert body["exit_code"] == 0

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "# shutdown after" in stderr
        assert "2 request(s)" in stderr

    def test_sigint_also_exits_cleanly(self):
        process = _spawn_daemon()
        try:
            port = _read_port(process)
            ServeClient("127.0.0.1", port, timeout=30).health()
            process.send_signal(signal.SIGINT)
            _, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr

    def test_bad_flags_fail_fast(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--max-queue", "0"],
            capture_output=True, env=env, cwd=REPO_ROOT, text=True,
            timeout=60)
        assert result.returncode == 1
        assert "max_queue" in result.stderr
