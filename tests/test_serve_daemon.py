"""The serving daemon end-to-end, over real sockets on a real thread.

Concurrency-sensitive tests (coalescing, shedding) gate the execution
path on a :class:`threading.Event` by patching the daemon module's
``run_scenario`` -- the test controls exactly when work completes, so
there are no timing-dependent assertions.
"""

import json
import threading

import pytest

import repro.serve.daemon as daemon_module
from repro.scenario import Scenario, TenancySpec, WorkloadSpec
from repro.serve import ServeClient, ServeConfig, serve_in_thread
from repro.service import run_scenario

SWEEP = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                 workload=WorkloadSpec(packet_sizes=(64, 256),
                                       packets_per_point=50))
OTHER_SWEEP = Scenario(kind="sweep", apps=("sec-gateway",),
                       devices=("device-a",),
                       workload=WorkloadSpec(packet_sizes=(128,),
                                             packets_per_point=50))
FLEET = Scenario(kind="fleet",
                 tenancy=TenancySpec(flow_count=2_000, device_count=16,
                                     tenant_count=4))
BUILD = Scenario(kind="build", apps=("sec-gateway",), devices=("device-a",))


@pytest.fixture()
def handle():
    with serve_in_thread(ServeConfig(port=0, exec_workers=2)) as running:
        yield running


@pytest.fixture()
def client(handle):
    return ServeClient(handle.host, handle.port)


class TestEndpoints:
    def test_healthz_reports_warm_state(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["warm"] == {"sweep_cache_entries": 0,
                                  "artifact_store_entries": 0}

    def test_each_kind_executes(self, client):
        for scenario, endpoint in ((SWEEP, "sweep"), (FLEET, "fleet"),
                                   (BUILD, "build")):
            response = client.run_scenario(scenario, endpoint=endpoint)
            assert response.status == 200
            body = response.json()
            assert body["kind"] == scenario.kind
            assert body["scenario_id"] == scenario.scenario_id()
            assert body["exit_code"] == 0
            assert response.headers["x-scenario-id"] == \
                scenario.scenario_id()

    def test_run_endpoint_dispatches_any_kind(self, client):
        for scenario in (SWEEP, FLEET, BUILD):
            response = client.run_scenario(scenario, endpoint="run")
            assert response.status == 200
            assert response.json()["kind"] == scenario.kind

    def test_response_matches_the_service_layer_bytes(self, client):
        served = client.run_scenario(SWEEP, endpoint="sweep")
        solo = run_scenario(SWEEP).response_text().encode("utf-8")
        assert served.body == solo

    def test_warm_requests_reuse_the_resident_cache(self, client):
        first = client.run_scenario(SWEEP, endpoint="sweep")
        second = client.run_scenario(SWEEP, endpoint="sweep")
        assert first.body == second.body
        stats = client.stats()
        assert stats["cache"]["entries"] == len(SWEEP.workload.packet_sizes)
        assert client.health()["warm"]["sweep_cache_entries"] > 0

    def test_slo_query_and_endpoint(self, client):
        response = client.run_scenario(SWEEP, endpoint="sweep",
                                       slo="default")
        assert response.status == 200
        assert response.json()["slo"] is not None
        report = client.slo()
        assert report["exit_code"] == 0

    def test_metrics_exposition_covers_serving(self, client):
        client.run_scenario(SWEEP, endpoint="sweep")
        text = client.metrics_text()
        assert "serve" in text
        snapshot = client.stats()["metrics"]
        assert snapshot["serve"]["requests"] >= 1

    def test_stats_reports_all_subsystems(self, client):
        stats = client.stats()
        assert set(stats) == {"metrics", "coalescer", "admission", "cache",
                              "pool", "orchestrator", "telemetry",
                              "trace_ring"}
        assert stats["admission"]["max_queue"] == 32
        assert stats["pool"] == {"max_workers": 4, "resident": True}
        assert stats["telemetry"]["window_s"] == 60.0
        assert stats["trace_ring"]["enabled"] is True


class TestOrchestratorServing:
    def _epoch_fleet(self):
        from repro.scenario import EpochsSpec

        return FLEET.replace(epochs=EpochsSpec(epochs=3, churn=0.02))

    def test_epoch_fleet_serves_and_matches_solo_bytes(self, client):
        scenario = self._epoch_fleet()
        served = client.run_scenario(scenario, endpoint="fleet")
        assert served.status == 200
        solo = run_scenario(scenario).response_text().encode("utf-8")
        assert served.body == solo

    def test_day_totals_fold_into_stats_counters(self, client):
        scenario = self._epoch_fleet()
        client.run_scenario(scenario, endpoint="fleet")
        client.run_scenario(scenario, endpoint="fleet")
        stats = client.stats()["orchestrator"]
        assert stats["runs"] == 2
        assert stats["epochs"] == 6
        assert stats["migrations"] >= 0
        solo = run_scenario(scenario)
        totals = solo.meta["totals"]
        assert stats["pr_grants"] == 2 * totals["pr_grants"]
        assert stats["slo_violations"] == 2 * totals["slo_violations"]

    def test_plain_fleet_leaves_orchestrator_counters_cold(self, client):
        client.run_scenario(FLEET, endpoint="fleet")
        stats = client.stats()["orchestrator"]
        assert stats["runs"] == 0
        assert stats["epochs"] == 0


class TestErrors:
    def test_unknown_path_is_404(self, client):
        from repro.serve import http_request

        response = http_request(client.host, client.port, "GET", "/nope")
        assert response.status == 404

    def test_wrong_method_is_405(self, client):
        from repro.serve import http_request

        assert http_request(client.host, client.port, "POST",
                            "/healthz").status == 405
        assert http_request(client.host, client.port, "GET",
                            "/v1/sweep").status == 405

    def test_bad_json_is_400(self, client):
        response = client.run_scenario(b"{not json", endpoint="sweep")
        assert response.status == 400
        assert "JSON" in response.json()["error"]

    def test_invalid_scenario_is_400(self, client):
        response = client.run_scenario({"kind": "sweep", "bogus": 1},
                                       endpoint="sweep")
        assert response.status == 400

    def test_kind_endpoint_mismatch_is_400(self, client):
        response = client.run_scenario(FLEET, endpoint="sweep")
        assert response.status == 400
        assert "/v1/fleet" in response.json()["error"]

    def test_file_slo_specs_are_rejected_over_http(self, client):
        response = client.run_scenario(SWEEP, endpoint="sweep",
                                       slo="/etc/slo.json")
        assert response.status == 400

    def test_oversized_body_is_413(self):
        with serve_in_thread(ServeConfig(port=0, max_body=64)) as running:
            response = ServeClient(running.host, running.port).run_scenario(
                SWEEP, endpoint="sweep")
            assert response.status == 413

    def test_remote_shutdown_is_disabled_by_default(self, client):
        assert client.shutdown().status == 404


class _GatedExecution:
    """Patch the daemon's ``run_scenario`` so tests control completion."""

    def __init__(self, monkeypatch):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()
        monkeypatch.setattr(daemon_module, "run_scenario", self._call)

    def _call(self, scenario, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.gate.wait(timeout=30), "test never opened the gate"
        return run_scenario(scenario, **kwargs)


class TestCoalescing:
    def test_concurrent_identical_requests_execute_once(
            self, handle, client, monkeypatch):
        gated = _GatedExecution(monkeypatch)
        responses = [None] * 6

        def request(index):
            responses[index] = client.run_scenario(SWEEP, endpoint="sweep")

        leader = threading.Thread(target=request, args=(0,))
        leader.start()
        assert gated.started.wait(timeout=10)
        followers = [threading.Thread(target=request, args=(i,))
                     for i in range(1, 6)]
        for thread in followers:
            thread.start()
        deadline_stats = None
        for _ in range(500):
            deadline_stats = handle.daemon.coalescer.counters()
            if deadline_stats["attached"] == 5:
                break
            threading.Event().wait(0.01)
        assert deadline_stats["attached"] == 5, deadline_stats
        gated.gate.set()
        leader.join(timeout=30)
        for thread in followers:
            thread.join(timeout=30)

        assert gated.calls == 1, "identical concurrent requests must run once"
        assert [r.status for r in responses] == [200] * 6
        assert len({r.body for r in responses}) == 1
        # ... and those shared bytes match a solo, uncoalesced run:
        assert responses[0].body == \
            run_scenario(SWEEP).response_text().encode("utf-8")
        roles = sorted(r.headers["x-coalesced"] for r in responses)
        assert roles == ["follower"] * 5 + ["leader"]

    def test_distinct_scenarios_never_share_results(
            self, handle, client, monkeypatch):
        gated = _GatedExecution(monkeypatch)
        responses = {}

        def request(name, scenario):
            responses[name] = client.run_scenario(scenario, endpoint="sweep")

        threads = [threading.Thread(target=request, args=("a", SWEEP)),
                   threading.Thread(target=request, args=("b", OTHER_SWEEP))]
        threads[0].start()
        assert gated.started.wait(timeout=10)
        threads[1].start()
        for _ in range(500):
            if gated.calls == 2:
                break
            threading.Event().wait(0.01)
        gated.gate.set()
        for thread in threads:
            thread.join(timeout=30)

        assert gated.calls == 2, "distinct scenarios must not coalesce"
        assert responses["a"].status == responses["b"].status == 200
        assert responses["a"].body != responses["b"].body
        assert responses["a"].headers["x-scenario-id"] != \
            responses["b"].headers["x-scenario-id"]

    def test_sequential_identical_requests_do_not_coalesce(self, client):
        client.run_scenario(SWEEP, endpoint="sweep")
        client.run_scenario(SWEEP, endpoint="sweep")
        counters = client.stats()["coalescer"]
        assert counters["executions"] == 2
        assert counters["attached"] == 0


class TestAdmission:
    def test_queue_full_sheds_with_503(self, monkeypatch):
        config = ServeConfig(port=0, exec_workers=1, max_queue=1)
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            gated = _GatedExecution(monkeypatch)
            holder = [None]

            def hold():
                holder[0] = client.run_scenario(SWEEP, endpoint="sweep")

            thread = threading.Thread(target=hold)
            thread.start()
            assert gated.started.wait(timeout=10)
            shed = client.run_scenario(OTHER_SWEEP, endpoint="sweep")
            assert shed.status == 503
            assert "queue full" in shed.json()["error"]
            gated.gate.set()
            thread.join(timeout=30)
            assert holder[0].status == 200
            stats = client.stats()
            assert stats["admission"]["shed"] == 1
            assert stats["metrics"]["serve"]["shed"] == 1

    def test_quota_rejects_with_429_per_tenant(self):
        config = ServeConfig(port=0, quota_rps=0.001, quota_burst=1.0)
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            first = client.run_scenario(SWEEP, endpoint="sweep",
                                        tenant="alpha")
            second = client.run_scenario(SWEEP, endpoint="sweep",
                                         tenant="alpha")
            other = client.run_scenario(SWEEP, endpoint="sweep",
                                        tenant="beta")
            assert first.status == 200
            assert second.status == 429
            assert second.headers["retry-after"] == "1"
            assert other.status == 200, "quotas are per tenant"
            stats = client.stats()
            assert stats["admission"]["quota_rejections"] == 1
            assert set(stats["admission"]["tenants"]) == {"alpha", "beta"}


class TestWarmState:
    def test_lru_bound_evicts_and_counts(self):
        config = ServeConfig(port=0, cache_entries=2)
        wide = Scenario(
            kind="sweep", apps=("sec-gateway",), devices=("device-a",),
            workload=WorkloadSpec(packet_sizes=(64, 128, 256, 512),
                                  packets_per_point=50))
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            assert client.run_scenario(wide, endpoint="sweep").status == 200
            stats = client.stats()
            assert stats["cache"]["entries"] == 2
            assert stats["cache"]["evictions"] == 2
            assert stats["metrics"]["sweep"]["cache"]["evictions"] == 2
            assert "evictions" in client.metrics_text()

    def test_cache_file_round_trips_across_restarts(self, tmp_path):
        cache_file = str(tmp_path / "cache.json")
        config = ServeConfig(port=0, cache_file=cache_file)
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            client.run_scenario(SWEEP, endpoint="sweep")
        with serve_in_thread(ServeConfig(port=0,
                                         cache_file=cache_file)) as running:
            client = ServeClient(running.host, running.port)
            warm = client.health()["warm"]
            assert warm["sweep_cache_entries"] == \
                len(SWEEP.workload.packet_sizes)

    def test_remote_shutdown_when_enabled(self):
        config = ServeConfig(port=0, allow_remote_shutdown=True)
        handle = serve_in_thread(config)
        client = ServeClient(handle.host, handle.port)
        assert client.shutdown().status == 200
        handle.thread.join(timeout=10)
        assert not handle.thread.is_alive()


class TestResidentPool:
    def test_pool_workers_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServeConfig(port=0, pool_workers=0).validate()

    def test_cold_sweep_goes_through_the_fused_planner(self, client):
        assert client.run_scenario(SWEEP, endpoint="sweep").status == 200
        snapshot = client.stats()["metrics"]["serve"]
        assert snapshot["sweep"]["fused_points"] == \
            len(SWEEP.workload.packet_sizes)
        assert snapshot["sweep"]["fused_groups"] == 1
        # Fused points never touch the ProcessPool, and no per-request
        # pool may ever be spawned inside the daemon.
        assert "pool" not in snapshot

    def test_unfusable_points_dispatch_to_the_resident_pool(self, client):
        first = Scenario(kind="sweep", apps=("sec-gateway",),
                         devices=("device-a",), engine="des",
                         workload=WorkloadSpec(packet_sizes=(64,),
                                               packets_per_point=50))
        second = Scenario(kind="sweep", apps=("sec-gateway",),
                          devices=("device-a",), engine="des",
                          workload=WorkloadSpec(packet_sizes=(128,),
                                                packets_per_point=50))
        for scenario in (first, second):
            assert client.run_scenario(scenario,
                                       endpoint="sweep").status == 200
        snapshot = client.stats()["metrics"]["serve"]
        assert snapshot["sweep"]["pooled_points"] == 2
        assert snapshot["pool"]["dispatches"] == 2     # resident pool reused
        assert "request_spawns" not in snapshot["pool"]

    def test_warm_sweep_executes_nothing(self, client):
        client.run_scenario(SWEEP, endpoint="sweep")
        before = client.stats()["metrics"]["serve"]["sweep"]
        client.run_scenario(SWEEP, endpoint="sweep")
        after = client.stats()["metrics"]["serve"]["sweep"]
        assert after["fused_points"] == before["fused_points"]
        assert after.get("pooled_points") == before.get("pooled_points")
