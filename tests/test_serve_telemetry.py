"""Daemon observability end-to-end: spans, windows, exposition, logs.

Covers the serving side of the tracing stack: request-scoped span
bursts into the resident ring, the ``/telemetry`` window view, native
histogram exposition on ``/metrics``, the structured access log, and
the response-embedded stitched trace staying byte-identical across
resident-pool widths (the coalescer serves one leader's bytes to every
follower, so responses must not depend on who executed).
"""

import json
import threading

import pytest

import repro.serve.daemon as daemon_module
from repro.obs.analyze import TraceAnalysis, parse_trace
from repro.scenario import Scenario, WorkloadSpec
from repro.serve import ServeClient, ServeConfig, http_request, serve_in_thread
from repro.service import run_scenario

TRACED = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                  workload=WorkloadSpec(packet_sizes=(64, 128),
                                        packets_per_point=50, trace=True))
PLAIN = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                 workload=WorkloadSpec(packet_sizes=(64, 256),
                                       packets_per_point=50))


@pytest.fixture()
def handle():
    with serve_in_thread(ServeConfig(port=0, exec_workers=2)) as running:
        yield running


@pytest.fixture()
def client(handle):
    return ServeClient(handle.host, handle.port)


def _ring(client):
    text = client._get("/trace").body.decode("utf-8")
    return TraceAnalysis(parse_trace(text))


class TestTelemetryEndpoint:
    def test_window_view_after_requests(self, client):
        client.run_scenario(PLAIN, endpoint="sweep")
        client._get("/healthz")
        body = client._get("/telemetry").json()
        assert body["window_s"] == 60.0
        assert body["rates"]["serve.requests"]["window_total"] >= 2
        assert body["rates"]["serve.responses.200"]["window_total"] >= 2
        assert body["endpoints"]["/v1/sweep"]["count"] == 1
        assert body["tenants"]["default"]["count"] >= 2
        names = {report["name"] for report in body["slo_burn"]}
        assert names == {"serve-request-p99", "serve-error-ratio",
                         "serve-shed-ratio"}

    def test_tenant_header_lands_in_the_window(self, client):
        client.run_scenario(PLAIN, endpoint="sweep", tenant="acme")
        body = client._get("/telemetry").json()
        assert body["tenants"]["acme"]["count"] == 1

    def test_disabled_telemetry_is_404(self):
        config = ServeConfig(port=0, telemetry=False)
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            assert client._get("/telemetry").status == 404
            assert client.stats()["telemetry"] is None

    def test_metrics_exposes_native_histograms(self, client):
        client.run_scenario(PLAIN, endpoint="sweep")
        text = client.metrics_text()
        bucket_lines = [line for line in text.splitlines()
                        if "serve.window.request" in line
                        and "_bucket" in line]
        assert bucket_lines, "windowed latency must expose le buckets"
        assert any('le="+Inf"' in line for line in bucket_lines)
        assert any("serve.window.request" in line and "_sum" in line
                   for line in text.splitlines())
        assert any("serve.window.request" in line and "_count" in line
                   for line in text.splitlines())

    def test_stats_summarises_the_window(self, client):
        client.run_scenario(PLAIN, endpoint="sweep")
        stats = client.stats()
        assert stats["telemetry"]["window_requests"] >= 1
        assert stats["telemetry"]["tenants"] == 1


class TestTraceRing:
    def test_request_burst_forms_one_tree_per_request(self, client):
        client.run_scenario(PLAIN, endpoint="sweep")
        analysis = _ring(client)
        roots = [node for node in analysis.roots
                 if node.name == "serve.request"]
        sweep_roots = [node for node in roots
                       if node.attrs.get("path") == "/v1/sweep"]
        assert len(sweep_roots) == 1
        children = {child.name for child in sweep_roots[0].children}
        assert {"serve.admission", "serve.execute"} <= children
        admission = next(child for child in sweep_roots[0].children
                         if child.name == "serve.admission")
        assert admission.attrs["outcome"] == "admitted"

    def test_header_supplied_trace_id_propagates(self, handle, client):
        response = http_request(
            handle.host, handle.port, "POST", "/v1/sweep",
            body=json.dumps(PLAIN.to_json()).encode("utf-8"),
            headers={"X-Trace-Id": "caller-abc"})
        assert response.status == 200
        roots = [node for node in _ring(client).roots
                 if node.attrs.get("trace_id") == "caller-abc"]
        assert len(roots) == 1
        assert roots[0].attrs["status"] == 200

    def test_disabled_ring_is_404(self):
        with serve_in_thread(ServeConfig(port=0, trace_ring=0)) as running:
            client = ServeClient(running.host, running.port)
            assert client._get("/trace").status == 404
            assert client.stats()["trace_ring"]["enabled"] is False

    def test_ring_is_bounded(self):
        with serve_in_thread(ServeConfig(port=0, trace_ring=8)) as running:
            client = ServeClient(running.host, running.port)
            for _ in range(10):
                client._get("/healthz")
            stats = client.stats()["trace_ring"]
            assert stats["resident_records"] <= 8
            assert stats["total_records"] > stats["resident_records"]


class TestCoalesceLinking:
    def test_follower_instant_links_to_the_leader_trace(
            self, handle, client, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def gated(scenario, **kwargs):
            started.set()
            assert gate.wait(timeout=30)
            return run_scenario(scenario, **kwargs)

        monkeypatch.setattr(daemon_module, "run_scenario", gated)
        responses = [None, None]

        def leader():
            responses[0] = http_request(
                handle.host, handle.port, "POST", "/v1/sweep",
                body=json.dumps(PLAIN.to_json()).encode("utf-8"),
                headers={"X-Trace-Id": "leader-1"})

        def follower():
            responses[1] = http_request(
                handle.host, handle.port, "POST", "/v1/sweep",
                body=json.dumps(PLAIN.to_json()).encode("utf-8"),
                headers={"X-Trace-Id": "follower-1"})

        lead = threading.Thread(target=leader)
        lead.start()
        assert started.wait(timeout=10)
        follow = threading.Thread(target=follower)
        follow.start()
        # The follower must be attached before the leader finishes.
        deadline = threading.Event()
        for _ in range(200):
            if client.stats()["coalescer"]["attached"] >= 1:
                deadline.set()
                break
            threading.Event().wait(0.05)
        gate.set()
        lead.join(timeout=30)
        follow.join(timeout=30)
        assert deadline.is_set(), "follower never attached to the leader"
        assert responses[0].status == responses[1].status == 200
        assert responses[0].body == responses[1].body

        instants = [node for node in _ring(client).nodes.values()
                    if node.name == "serve.coalesce"]
        roles = {node.attrs["role"]: node for node in instants}
        assert set(roles) == {"leader", "follower"}
        assert roles["follower"].attrs["leader_trace_id"] == "leader-1"
        assert "leader_trace_id" not in roles["leader"].attrs


class TestAccessLog:
    def test_structured_lines_finalised_atomically(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        config = ServeConfig(port=0, access_log=str(log_path))
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            client.run_scenario(PLAIN, endpoint="sweep", tenant="acme")
            client._get("/healthz")
            assert not log_path.exists(), \
                "the log must stay in its .tmp until the daemon drains"
            assert log_path.with_suffix(".jsonl.tmp").exists()
        assert log_path.exists()
        assert not log_path.with_suffix(".jsonl.tmp").exists()
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        assert len(lines) == 2
        sweep = next(line for line in lines if line["path"] == "/v1/sweep")
        assert sweep["status"] == 200
        assert sweep["tenant"] == "acme"
        assert sweep["scenario_id"] == PLAIN.scenario_id()
        assert sweep["trace_id"].startswith("req-")
        assert sweep["wall_ms"] > 0
        assert sweep["coalesced"] is False and sweep["shed"] is False
        for line in lines:
            assert list(line) == sorted(line), "keys are sorted for grep"

    def test_shed_requests_are_marked(self, tmp_path, monkeypatch):
        log_path = tmp_path / "access.jsonl"
        config = ServeConfig(port=0, exec_workers=1, max_queue=1,
                             access_log=str(log_path))
        with serve_in_thread(config) as running:
            client = ServeClient(running.host, running.port)
            gate = threading.Event()
            started = threading.Event()

            def gated(scenario, **kwargs):
                started.set()
                assert gate.wait(timeout=30)
                return run_scenario(scenario, **kwargs)

            monkeypatch.setattr(daemon_module, "run_scenario", gated)
            holder = [None]

            def hold():
                holder[0] = client.run_scenario(PLAIN, endpoint="sweep")

            thread = threading.Thread(target=hold)
            thread.start()
            assert started.wait(timeout=10)
            shed = client.run_scenario(TRACED, endpoint="sweep")
            assert shed.status == 503
            gate.set()
            thread.join(timeout=30)
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        shed_lines = [line for line in lines if line["status"] == 503]
        assert len(shed_lines) == 1
        assert shed_lines[0]["shed"] is True


class TestServedTraceDeterminism:
    def test_stitched_trace_is_identical_across_pool_widths(self):
        bodies = []
        for pool_workers in (1, 4):
            config = ServeConfig(port=0, exec_workers=2,
                                 pool_workers=pool_workers)
            with serve_in_thread(config) as running:
                client = ServeClient(running.host, running.port)
                response = client.run_scenario(TRACED, endpoint="sweep")
                assert response.status == 200
                bodies.append(response.json())
        assert bodies[0]["trace"] == bodies[1]["trace"]
        analysis = TraceAnalysis(parse_trace(bodies[0]["trace"]))
        assert len(analysis.roots) == 1
        path_names = [node.name for node in analysis.critical_path()]
        assert path_names[0] == "serve.request"
        assert path_names[1] == "serve.execute"

    def test_served_bytes_match_the_service_layer(self, client):
        served = client.run_scenario(TRACED, endpoint="sweep")
        solo = run_scenario(TRACED).response_text().encode("utf-8")
        assert served.body == solo
