"""The shared service layer: one execution path for CLI and HTTP.

The load-bearing property is determinism of ``response_text()``: it
must be a pure function of (scenario, slo spec) -- independent of cache
temperature, worker count, and wall-clock -- because the daemon hands
the same bytes to every coalesced request and promises they match what
a solo run would have returned.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import SLO_EXIT_CODE, SloMonitor
from repro.runtime.buildfarm import ArtifactStore
from repro.runtime.sweep import SweepCache
from repro.scenario import EpochsSpec, Scenario, TenancySpec, WorkloadSpec
from repro.service import (
    run_build_service,
    run_fleet_service,
    run_orchestrator_service,
    run_scenario,
    run_sweep_service,
    slo_monitor_for,
)

SWEEP = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                 workload=WorkloadSpec(packet_sizes=(64, 256),
                                       packets_per_point=50))
FLEET = Scenario(kind="fleet",
                 tenancy=TenancySpec(flow_count=2_000, device_count=16,
                                     tenant_count=4))
BUILD = Scenario(kind="build", apps=("sec-gateway",), devices=("device-a",))


class TestSloMonitorFor:
    def test_none_disables(self):
        assert slo_monitor_for("sweep", None) is None

    def test_default_resolves_per_kind(self):
        for kind in ("sweep", "fleet", "build", "serve"):
            monitor = slo_monitor_for(kind, "default")
            assert isinstance(monitor, SloMonitor)
            assert monitor.specs

    def test_serve_defaults_cover_latency_errors_shedding(self):
        names = {spec.name for spec in slo_monitor_for("serve",
                                                       "default").specs}
        assert names == {"serve-request-p99", "serve-error-ratio",
                         "serve-shed-ratio"}

    def test_unknown_kind_is_loud(self):
        with pytest.raises(ConfigurationError, match="no default SLOs"):
            slo_monitor_for("warp", "default")

    def test_other_values_load_spec_files(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(
            [{"name": "x", "metric": "a.b", "upper": 1.0}]))
        monitor = slo_monitor_for("sweep", str(path))
        assert monitor.specs[0].name == "x"

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(OSError):
            slo_monitor_for("sweep", str(tmp_path / "absent.json"))


class TestSweepService:
    def test_kind_mismatch_is_loud(self):
        with pytest.raises(ConfigurationError, match="kind"):
            run_sweep_service(FLEET)

    def test_payload_strips_cache_provenance(self):
        outcome = run_sweep_service(SWEEP)
        for point in outcome.payload["points"]:
            assert "cached" not in point
            assert "cache_key" in point   # content identity survives

    def test_warm_and_cold_responses_are_byte_identical(self):
        cache = SweepCache()
        cold = run_sweep_service(SWEEP, cache=cache)
        warm = run_sweep_service(SWEEP, cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(warm.result)
        assert cold.response_text() == warm.response_text()

    def test_response_text_is_stable_across_worker_counts(self):
        solo = run_sweep_service(SWEEP, workers=1)
        parallel = run_sweep_service(SWEEP, workers=4)
        assert solo.response_text() == parallel.response_text()

    def test_exit_code_follows_slo(self, tmp_path):
        path = tmp_path / "impossible.json"
        path.write_text(json.dumps(
            [{"name": "never", "metric": "sweep.*.throughput_gbps",
              "upper": 0.0}]))
        outcome = run_sweep_service(SWEEP, slo=str(path))
        assert outcome.exit_code == SLO_EXIT_CODE
        assert outcome.response_json()["exit_code"] == SLO_EXIT_CODE
        assert run_sweep_service(SWEEP).exit_code == 0


class TestBuildService:
    def test_payload_folds_cache_temperature(self):
        store = ArtifactStore()
        cold = run_build_service(BUILD, store=store)
        warm = run_build_service(BUILD, store=store)
        assert {t["status"] for t in cold.payload["targets"]} == {"ok"}
        assert cold.response_text() == warm.response_text()
        # the tier-native report still distinguishes built from cached
        assert cold.result.built > 0
        assert warm.result.cached > 0

    def test_kind_mismatch_is_loud(self):
        with pytest.raises(ConfigurationError, match="kind"):
            run_build_service(SWEEP)


class TestFleetService:
    def test_runs_and_reports_deterministically(self):
        first = run_fleet_service(FLEET, policies=("round-robin",))
        second = run_fleet_service(FLEET, policies=("round-robin",))
        assert first.response_text() == second.response_text()

    def test_kind_mismatch_is_loud(self):
        with pytest.raises(ConfigurationError, match="kind"):
            run_fleet_service(BUILD)


class TestOrchestratorService:
    EPOCH_FLEET = FLEET.replace(epochs=EpochsSpec(epochs=4, churn=0.02,
                                                  failure_every=2,
                                                  drain_every=3))

    def test_epochs_scenario_dispatches_to_orchestrator(self):
        outcome = run_fleet_service(self.EPOCH_FLEET)
        assert outcome.meta["epochs"] == 4
        assert outcome.payload["totals"]["arrivals"] > 0
        assert len(outcome.payload["epochs"]) == 4

    def test_modes_serialise_byte_identically(self):
        responses = {
            mode: run_fleet_service(self.EPOCH_FLEET,
                                    mode=mode).response_text()
            for mode in ("incremental", "full", "verify")}
        assert len(set(responses.values())) == 1

    def test_policies_and_epochs_together_are_loud(self):
        with pytest.raises(ConfigurationError, match="epochs"):
            run_fleet_service(self.EPOCH_FLEET, policies=("round-robin",))

    def test_plain_fleet_scenario_is_rejected(self):
        with pytest.raises(ConfigurationError, match="epochs"):
            run_orchestrator_service(FLEET)

    def test_meta_reports_mode_and_totals(self):
        outcome = run_orchestrator_service(self.EPOCH_FLEET, mode="verify")
        assert outcome.meta["mode"] == "verify"
        assert outcome.meta["totals"] == outcome.payload["totals"]


class TestDispatch:
    def test_routes_by_kind(self):
        assert run_scenario(SWEEP).kind == "sweep"
        assert run_scenario(FLEET).kind == "fleet"
        assert run_scenario(BUILD).kind == "build"

    def test_threads_resident_state_through(self):
        cache = SweepCache()
        store = ArtifactStore()
        run_scenario(SWEEP, cache=cache)
        run_scenario(BUILD, store=store)
        assert len(cache) > 0
        assert len(store) > 0

    def test_response_json_has_the_wire_shape(self):
        body = run_scenario(SWEEP).response_json()
        assert set(body) == {"kind", "scenario_id", "result", "slo",
                             "exit_code"}
        assert body["scenario_id"] == SWEEP.scenario_id()
        assert body["slo"] is None
