"""Unit tests for clock domains."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import ClockDomain


class TestConstruction:
    def test_period_of_100mhz_is_10ns(self):
        assert ClockDomain("c", 100.0).period_ps == 10_000

    def test_fractional_frequency_rounds_to_ps(self):
        # The CMAC clock: 322.265625 MHz -> 3103.03 ps -> 3103 ps.
        assert ClockDomain("cmac", 322.265625).period_ps == 3_103

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)
        with pytest.raises(ValueError):
            ClockDomain("bad", -5.0)

    def test_freq_hz(self):
        assert ClockDomain("c", 250.0).freq_hz == pytest.approx(250e6)

    def test_str_includes_name_and_frequency(self):
        assert str(ClockDomain("core", 322.5)) == "core@322.5MHz"

    def test_frozen(self):
        clock = ClockDomain("c", 100.0)
        with pytest.raises(AttributeError):
            clock.freq_mhz = 200.0


class TestConversions:
    def test_cycles_to_ps(self):
        assert ClockDomain("c", 100.0).cycles_to_ps(3) == 30_000

    def test_ps_to_cycles_floors(self):
        clock = ClockDomain("c", 100.0)
        assert clock.ps_to_cycles(25_000) == 2

    def test_roundtrip_whole_cycles(self):
        clock = ClockDomain("c", 250.0)
        assert clock.ps_to_cycles(clock.cycles_to_ps(17)) == 17

    def test_next_edge_on_edge_is_identity(self):
        clock = ClockDomain("c", 100.0)
        assert clock.next_edge_ps(20_000) == 20_000

    def test_next_edge_rounds_up(self):
        clock = ClockDomain("c", 100.0)
        assert clock.next_edge_ps(20_001) == 30_000

    def test_next_edge_at_zero(self):
        assert ClockDomain("c", 100.0).next_edge_ps(0) == 0


class TestBandwidth:
    def test_bandwidth_of_512b_at_322mhz_is_165g(self):
        clock = ClockDomain("cmac", 322.265625)
        assert clock.bandwidth_bps(512) == pytest.approx(165e9, rel=0.01)

    def test_bandwidth_scales_linearly_with_width(self):
        clock = ClockDomain("c", 200.0)
        assert clock.bandwidth_bps(128) * 4 == pytest.approx(clock.bandwidth_bps(512))


@given(freq=st.floats(min_value=1.0, max_value=4_000.0),
       cycles=st.integers(min_value=0, max_value=10_000))
def test_cycles_to_ps_is_linear(freq, cycles):
    clock = ClockDomain("c", freq)
    assert clock.cycles_to_ps(cycles) == cycles * clock.period_ps


@given(freq=st.floats(min_value=1.0, max_value=4_000.0),
       time_ps=st.integers(min_value=0, max_value=10 ** 9))
def test_next_edge_is_aligned_and_not_before(freq, time_ps):
    clock = ClockDomain("c", freq)
    edge = clock.next_edge_ps(time_ps)
    assert edge >= time_ps
    assert edge % clock.period_ps == 0
    assert edge - time_ps < clock.period_ps
