"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import (
    PS_PER_NS,
    PS_PER_US,
    Simulator,
    ms,
    ns,
    seconds,
    us,
)


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now_ps == 0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(300, lambda: fired.append("late"))
        sim.schedule(100, lambda: fired.append("early"))
        sim.schedule(200, lambda: fired.append("middle"))
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(100, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_time_advances_to_event_timestamp(self):
        sim = Simulator()
        seen = []
        sim.schedule(250, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [250]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(500, lambda: seen.append(sim.now_ps))
        sim.run()
        assert seen == [500]

    def test_events_scheduled_during_run_also_fire(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(50, lambda: fired.append("nested"))

        sim.schedule(100, first)
        sim.run()
        assert fired == ["first", "nested"]
        assert sim.now_ps == 150


class TestCallbackArguments:
    def test_schedule_passes_positional_args(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "payload")
        sim.schedule_at(20, lambda a, b: fired.append((a, b)), 1, 2)
        sim.run()
        assert fired == ["payload", (1, 2)]


class TestBatchScheduling:
    def test_batch_matches_serial_schedule_at_order(self):
        serial, batched = Simulator(), Simulator()
        fired_serial, fired_batched = [], []
        # Same timestamps submitted out of order, plus a tie at t=100.
        entries = [(300, "late"), (100, "tie-a"), (100, "tie-b"), (200, "mid")]
        for time_ps, tag in entries:
            serial.schedule_at(time_ps, fired_serial.append, tag)
        batched.schedule_at_batch(
            (time_ps, fired_batched.append, (tag,)) for time_ps, tag in entries
        )
        serial.run()
        batched.run()
        assert fired_batched == fired_serial == ["tie-a", "tie-b", "mid", "late"]

    def test_batch_counts_as_pending_and_returns_events(self):
        sim = Simulator()
        events = sim.schedule_at_batch((t, lambda: None, ()) for t in (10, 20))
        assert len(events) == 2
        assert sim.pending_events() == 2
        events[0].cancel()
        assert sim.pending_events() == 1

    def test_batch_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at_batch([(50, lambda: None, ())])

    def test_empty_batch_is_a_no_op(self):
        sim = Simulator()
        assert sim.schedule_at_batch([]) == []
        assert sim.pending_events() == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(100, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancelled_event_not_counted_pending(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1

    def test_peek_skips_cancelled_events(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        event.cancel()
        assert sim.peek_next_time() == 200

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events() == 1

    def test_cancel_after_firing_is_a_no_op(self):
        sim = Simulator()
        event = sim.schedule(100, lambda: None)
        sim.schedule(200, lambda: None)
        sim.run(max_events=1)
        event.cancel()           # already fired; must not corrupt counts
        assert sim.pending_events() == 1
        assert sim.run() == 1

    def test_pending_count_stays_exact_across_a_mixed_run(self):
        sim = Simulator()
        events = [sim.schedule(10 * (i + 1), lambda: None) for i in range(10)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending_events() == 5
        assert sim.run() == 5
        assert sim.pending_events() == 0

    def test_mass_cancellation_compacts_the_heap(self):
        # Past the compaction threshold (queue >= 64, stale majority),
        # cancelled entries are dropped from the heap outright instead
        # of lingering until popped.
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(100)]
        for event in events[:60]:
            event.cancel()
        # Without compaction all 100 entries would linger until popped;
        # the exact survivor count depends on when the threshold trips.
        assert len(sim._queue) < 60
        assert sim.pending_events() == 40
        assert sim.run() == 40

    def test_small_queues_skip_compaction(self):
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
        for event in events[:8]:
            event.cancel()
        assert len(sim._queue) == 10     # lazy purge only, below threshold
        assert sim.pending_events() == 2


class TestRunControl:
    def test_run_until_deadline_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append("a"))
        sim.schedule(500, lambda: fired.append("b"))
        sim.run(until_ps=200)
        assert fired == ["a"]
        assert sim.now_ps == 200
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_includes_events_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(200, lambda: fired.append(True))
        sim.run(until_ps=200)
        assert fired == [True]

    def test_run_until_advances_clock_when_queue_drains_early(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run(until_ps=1_000)
        assert sim.now_ps == 1_000

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until_ps=750)
        assert sim.now_ps == 750

    def test_run_until_never_moves_clock_backwards(self):
        sim = Simulator()
        sim.schedule(500, lambda: None)
        sim.run()
        sim.run(until_ps=200)
        assert sim.now_ps == 500

    def test_max_events_break_does_not_jump_to_deadline(self):
        sim = Simulator()
        for delay in (10, 20, 30):
            sim.schedule(delay, lambda: None)
        sim.run(until_ps=1_000, max_events=2)
        assert sim.now_ps == 20

    def test_dispatch_hooks_observe_each_event(self):
        sim = Simulator()
        seen = []
        sim.add_dispatch_hook(lambda time_ps, seq: seen.append(time_ps))
        sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        sim.run()
        assert seen == [10, 20]
        sim.remove_dispatch_hook(sim._dispatch_hooks[0])
        sim.schedule(5, lambda: None)
        sim.run()
        assert seen == [10, 20]

    def test_max_events_cap(self):
        sim = Simulator()
        fired = []
        for delay in (10, 20, 30):
            sim.schedule(delay, lambda: fired.append(True))
        processed = sim.run(max_events=2)
        assert processed == 2
        assert len(fired) == 2

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for delay in (10, 20, 30):
            sim.schedule(delay, lambda: None)
        assert sim.run() == 3
        assert sim.events_processed == 3

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as error:
                errors.append(error)

        sim.schedule(10, reenter)
        sim.run()
        assert len(errors) == 1

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False


class TestAdvance:
    def test_advance_moves_clock(self):
        sim = Simulator()
        sim.advance_to(1_000)
        assert sim.now_ps == 1_000

    def test_advance_backwards_rejected(self):
        sim = Simulator()
        sim.advance_to(1_000)
        with pytest.raises(ValueError):
            sim.advance_to(500)

    def test_advance_past_pending_event_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        with pytest.raises(ValueError):
            sim.advance_to(200)


class TestTimeConversions:
    def test_now_properties_scale(self):
        sim = Simulator()
        sim.advance_to(2_500_000)
        assert sim.now_ns == pytest.approx(2_500.0)
        assert sim.now_us == pytest.approx(2.5)

    @pytest.mark.parametrize(
        "func,value,expected",
        [(ns, 1, 1_000), (ns, 0.5, 500), (us, 1, 1_000_000),
         (ms, 2, 2_000_000_000), (seconds, 1, 10 ** 12)],
    )
    def test_helpers(self, func, value, expected):
        assert func(value) == expected

    def test_constants_consistent(self):
        assert PS_PER_US == 1_000 * PS_PER_NS
