"""Unit and property tests for the FIFO models."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import ClockDomain
from repro.sim.fifo import (
    AsyncFifo,
    FifoEmptyError,
    FifoFullError,
    SyncFifo,
    from_gray,
    to_gray,
)


class TestGrayCode:
    @pytest.mark.parametrize("value,gray", [(0, 0), (1, 1), (2, 3), (3, 2), (4, 6)])
    def test_known_values(self, value, gray):
        assert to_gray(value) == gray

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_roundtrip(self, value):
        assert from_gray(to_gray(value)) == value

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_adjacent_codes_differ_in_one_bit(self, value):
        diff = to_gray(value) ^ to_gray(value + 1)
        assert bin(diff).count("1") == 1


class TestSyncFifo:
    def test_fifo_order(self):
        fifo = SyncFifo("f", 4)
        for item in "abc":
            fifo.push(item)
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_push_to_full_raises_and_counts_drop(self):
        fifo = SyncFifo("f", 1)
        fifo.push("x")
        with pytest.raises(FifoFullError):
            fifo.push("y")
        assert fifo.drops == 1

    def test_try_push_returns_false_when_full(self):
        fifo = SyncFifo("f", 1)
        assert fifo.try_push("x") is True
        assert fifo.try_push("y") is False

    def test_pop_from_empty_raises(self):
        with pytest.raises(FifoEmptyError):
            SyncFifo("f", 2).pop()

    def test_peek_does_not_consume(self):
        fifo = SyncFifo("f", 2)
        fifo.push("x")
        assert fifo.peek() == "x"
        assert fifo.occupancy == 1

    def test_peek_empty_raises(self):
        with pytest.raises(FifoEmptyError):
            SyncFifo("f", 2).peek()

    def test_occupancy_and_flags(self):
        fifo = SyncFifo("f", 2)
        assert fifo.is_empty and not fifo.is_full
        fifo.push("x")
        fifo.push("y")
        assert fifo.is_full and not fifo.is_empty

    def test_peak_occupancy_tracks_high_water(self):
        fifo = SyncFifo("f", 4)
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        fifo.push(3)
        assert fifo.peak_occupancy == 2

    def test_push_pop_counters(self):
        fifo = SyncFifo("f", 4)
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        assert fifo.total_pushed == 2
        assert fifo.total_popped == 1

    def test_entry_records_enqueue_time(self):
        fifo = SyncFifo("f", 4)
        fifo.push("x", time_ps=123)
        entry = fifo.pop_entry()
        assert entry.item == "x"
        assert entry.enqueue_time_ps == 123

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            SyncFifo("f", 0)

    @given(st.lists(st.integers(), max_size=50))
    def test_fifo_preserves_sequence(self, items):
        fifo = SyncFifo("f", max(len(items), 1))
        for item in items:
            fifo.push(item)
        assert [fifo.pop() for _ in items] == items


class TestAsyncFifo:
    def _fifo(self, write_mhz=322.0, read_mhz=250.0, stages=2):
        return AsyncFifo(
            "cdc", 32,
            write_clock=ClockDomain("w", write_mhz),
            read_clock=ClockDomain("r", read_mhz),
            sync_stages=stages,
        )

    def test_crossing_latency_counts_read_clock_cycles(self):
        fifo = self._fifo(read_mhz=100.0, stages=2)
        # 2 synchroniser flops + 1 output register at 10 ns each.
        assert fifo.crossing_latency_ps == 30_000

    def test_more_stages_means_more_latency(self):
        assert self._fifo(stages=3).crossing_latency_ps > self._fifo(stages=2).crossing_latency_ps

    def test_sync_stages_must_be_positive(self):
        with pytest.raises(ValueError):
            self._fifo(stages=0)

    def test_bandwidth_for_both_ports(self):
        fifo = self._fifo(write_mhz=322.265625, read_mhz=250.0)
        write_bw, read_bw = fifo.bandwidth_for(512, 1024)
        assert write_bw == pytest.approx(322.265625e6 * 512)
        assert read_bw == pytest.approx(250e6 * 1024)

    def test_lossless_when_read_faster(self):
        # The paper's S x M = R x U rule: 322 MHz x 512 b < 250 MHz x 1024 b.
        fifo = self._fifo(write_mhz=322.265625, read_mhz=250.0)
        assert fifo.is_lossless(512, 1024)

    def test_lossy_when_read_slower(self):
        fifo = self._fifo(write_mhz=322.265625, read_mhz=250.0)
        assert not fifo.is_lossless(512, 512)

    def test_exact_rate_match_is_lossless(self):
        fifo = self._fifo(write_mhz=500.0, read_mhz=250.0)
        assert fifo.is_lossless(512, 1024)

    def test_inherits_fifo_semantics(self):
        fifo = self._fifo()
        fifo.push("a")
        fifo.push("b")
        assert fifo.pop() == "a"
