"""Unit and property tests for the pipeline timing model.

The load-bearing invariant for the whole evaluation lives here: adding
a fully pipelined stage never reduces a chain's throughput, and adds
exactly its fixed latency.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import ClockDomain
from repro.sim.pipeline import (
    PipelineChain,
    PipelineStage,
    Transaction,
    run_packet_sweep,
)


def make_stage(name="s", freq=250.0, width=512, latency=4, ii=1, overhead=0):
    return PipelineStage(
        name, ClockDomain(name, freq), width,
        latency_cycles=latency, initiation_interval=ii,
        per_transaction_overhead_cycles=overhead,
    )


class TestStage:
    def test_beats_rounds_up(self):
        stage = make_stage(width=512)
        assert stage.beats(64) == 1
        assert stage.beats(65) == 2
        assert stage.beats(128) == 2

    def test_zero_size_takes_one_beat(self):
        assert make_stage().beats(0) == 1

    def test_bandwidth(self):
        stage = make_stage(freq=250.0, width=512)
        assert stage.bandwidth_bps == pytest.approx(128e9)

    def test_initiation_interval_halves_bandwidth(self):
        assert make_stage(ii=2).bandwidth_bps == pytest.approx(make_stage(ii=1).bandwidth_bps / 2)

    def test_effective_bandwidth_penalised_by_overhead(self):
        plain = make_stage(overhead=0)
        taxed = make_stage(overhead=4)
        assert taxed.effective_bandwidth_bps(64) < plain.effective_bandwidth_bps(64)
        # Overhead amortises with size.
        small_ratio = taxed.effective_bandwidth_bps(64) / plain.effective_bandwidth_bps(64)
        large_ratio = taxed.effective_bandwidth_bps(4_096) / plain.effective_bandwidth_bps(4_096)
        assert large_ratio > small_ratio

    def test_overhead_bytes_converted_to_cycles(self):
        stage = PipelineStage("s", ClockDomain("c", 100.0), 64,
                              per_transaction_overhead_bytes=20)
        assert stage.per_transaction_overhead_cycles == 3  # ceil(160/64)

    def test_process_latency_is_fixed_cycles(self):
        stage = make_stage(freq=100.0, latency=5)  # 10 ns period
        timing = stage.process(arrival_ps=0, size_bytes=64)
        assert timing.first_beat_out_ps == 50_000

    def test_back_to_back_transactions_queue_on_busy_stage(self):
        stage = make_stage(freq=100.0, width=512, latency=1)
        first = stage.process(0, 512)   # 8 beats -> busy 80 ns
        second = stage.process(0, 512)
        assert second.start_ps >= first.start_ps + 80_000

    def test_reset_clears_occupancy(self):
        stage = make_stage()
        stage.process(0, 4_096)
        stage.reset()
        timing = stage.process(0, 64)
        assert timing.start_ps == 0

    @pytest.mark.parametrize("kwargs", [
        {"width": 0}, {"latency": -1}, {"ii": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        mapping = {"width": "width", "latency": "latency", "ii": "ii"}
        with pytest.raises(ValueError):
            make_stage(**{mapping[k]: v for k, v in kwargs.items()})


class TestChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            PipelineChain("empty", [])

    def test_bandwidth_is_bottleneck(self):
        fast = make_stage("fast", freq=500.0)
        slow = make_stage("slow", freq=100.0)
        chain = PipelineChain("c", [fast, slow])
        assert chain.bandwidth_bps() == pytest.approx(slow.bandwidth_bps)

    def test_zero_load_latency_sums_stage_latencies(self):
        a = make_stage("a", freq=100.0, latency=3)   # 30 ns
        b = make_stage("b", freq=200.0, latency=4)   # 20 ns
        chain = PipelineChain("c", [a, b])
        assert chain.zero_load_latency_ps(64) == 50_000

    def test_process_sets_completion(self):
        chain = PipelineChain("c", [make_stage()])
        txn = chain.process(Transaction(size_bytes=256))
        assert txn.completed_ps is not None
        assert txn.latency_ps > 0

    def test_latency_before_completion_raises(self):
        with pytest.raises(ValueError):
            Transaction(size_bytes=64).latency_ps

    def test_extended_appends_stages(self):
        chain = PipelineChain("c", [make_stage("a")])
        longer = chain.extended("c2", [make_stage("b")])
        assert len(longer) == 2
        assert len(chain) == 1


class TestFullPipeliningInvariant:
    """The paper's wrapper contract, verified mechanically."""

    def _sweep(self, chain, size=512):
        return run_packet_sweep(chain, size, packet_count=1_000)

    def test_extra_pipelined_stage_keeps_throughput(self):
        base = PipelineChain("base", [make_stage("ip", latency=10)])
        wrapped = PipelineChain("wrapped", [make_stage("ip", latency=10),
                                            make_stage("wrapper", latency=3)])
        base_tpt, _ = self._sweep(base)
        wrapped_tpt, _ = self._sweep(wrapped)
        assert wrapped_tpt == pytest.approx(base_tpt, rel=0.01)

    def test_extra_pipelined_stage_adds_fixed_latency(self):
        base = PipelineChain("base", [make_stage("ip", freq=100.0, latency=10)])
        wrapped = PipelineChain("wrapped", [make_stage("ip", freq=100.0, latency=10),
                                            make_stage("wrapper", freq=100.0, latency=3)])
        _, base_lat = self._sweep(base)
        _, wrapped_lat = self._sweep(wrapped)
        assert wrapped_lat - base_lat == pytest.approx(30.0, abs=1.0)  # 3 cyc @ 100 MHz

    def test_slow_stage_does_reduce_throughput(self):
        base = PipelineChain("base", [make_stage("ip", freq=250.0)])
        throttled = PipelineChain("thr", [make_stage("ip", freq=250.0),
                                          make_stage("slow", freq=250.0, ii=2)])
        base_tpt, _ = self._sweep(base)
        throttled_tpt, _ = self._sweep(throttled)
        assert throttled_tpt < base_tpt * 0.6

    @settings(max_examples=30, deadline=None)
    @given(
        latencies=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=5),
        size=st.sampled_from([64, 256, 1_024, 4_096]),
    )
    def test_throughput_independent_of_stage_latencies(self, latencies, size):
        """Fixed latency never shows up in steady-state bandwidth."""
        chains = [
            PipelineChain(
                "c",
                [make_stage(f"s{i}", latency=lat) for i, lat in enumerate(latencies)],
            ),
            PipelineChain("ref", [make_stage("s", latency=0)]),
        ]
        results = [run_packet_sweep(chain, size, 500)[0] for chain in chains]
        assert results[0] == pytest.approx(results[1], rel=0.02)


class TestPacketSweep:
    def test_throughput_bounded_by_bottleneck(self):
        chain = PipelineChain("c", [make_stage(freq=100.0, width=512)])
        throughput, _ = run_packet_sweep(chain, 512, 1_000)
        assert throughput <= chain.bandwidth_bps(512) * 1.001

    def test_explicit_offered_load_respected(self):
        chain = PipelineChain("c", [make_stage(freq=500.0, width=512)])
        throughput, _ = run_packet_sweep(chain, 512, 500, offered_load_bps=10e9)
        assert throughput == pytest.approx(10e9, rel=0.05)

    def test_small_packets_pay_framing_overhead(self):
        stage = PipelineStage("line", ClockDomain("l", 1_562.5), 64,
                              per_transaction_overhead_bytes=20)
        chain = PipelineChain("wire", [stage])
        small, _ = run_packet_sweep(chain, 64, 1_000)
        large, _ = run_packet_sweep(chain, 1_024, 1_000)
        assert small < large
        assert small == pytest.approx(chain.bandwidth_bps(64), rel=0.05)
        # Framing costs ~3 cycles per 8-beat packet: ~27% at 64 B.
        assert small < 0.8 * chain.stages[0].bandwidth_bps


class TestTransactionIds:
    def test_ids_are_resettable_and_sequential(self):
        from repro.sim.pipeline import next_transaction_id, reset_transaction_ids

        reset_transaction_ids()
        first = Transaction(size_bytes=64)
        second = Transaction(size_bytes=64)
        assert (first.txn_id, second.txn_id) == (0, 1)
        reset_transaction_ids()
        assert Transaction(size_bytes=64).txn_id == 0
        reset_transaction_ids(10)
        assert next_transaction_id() == 10

    def test_run_packet_sweep_is_a_run_boundary(self):
        # ISSUE satellite: ids embedded in traces must not depend on how
        # many Transactions this process allocated before the sweep.
        from repro.runtime import SimContext

        def traced_ids():
            chain = PipelineChain("ids", [make_stage()])
            context = SimContext(name="ids", trace=True)
            run_packet_sweep(chain, 64, 20, context=context)
            return [record["attrs"]["txn"]
                    for record in context.trace.records
                    if record.get("attrs", {}).get("txn") is not None]

        first = traced_ids()
        Transaction(size_bytes=64)          # perturb the global counter
        second = traced_ids()
        assert first and first == second
