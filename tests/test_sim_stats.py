"""Unit and property tests for the measurement instrumentation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, LatencyStats, MonitorSnapshot, ThroughputMeter


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("packets")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6
        assert int(counter) == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestLatencyStats:
    def test_mean_min_max(self):
        stats = LatencyStats()
        for sample in (10, 20, 30):
            stats.add(sample)
        assert stats.mean_ps == 20
        assert stats.min_ps == 10
        assert stats.max_ps == 30
        assert stats.count == 3

    def test_unit_conversions(self):
        stats = LatencyStats()
        stats.add(2_000_000)
        assert stats.mean_ns == pytest.approx(2_000.0)
        assert stats.mean_us == pytest.approx(2.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-1)

    def test_empty_stats_raise(self):
        stats = LatencyStats()
        for accessor in ("mean_ps", "min_ps", "max_ps"):
            with pytest.raises(ValueError):
                getattr(stats, accessor)

    def test_percentile_nearest_rank(self):
        stats = LatencyStats()
        for sample in range(1, 11):
            stats.add(sample)
        assert stats.percentile_ps(0.5) == 5
        assert stats.percentile_ps(0.99) == 10
        assert stats.percentile_ps(0.0) == 1

    def test_percentile_bounds_checked(self):
        stats = LatencyStats()
        stats.add(1)
        with pytest.raises(ValueError):
            stats.percentile_ps(1.5)

    def test_merge_combines_samples(self):
        left, right = LatencyStats(), LatencyStats()
        left.add(10)
        right.add(30)
        left.merge(right)
        assert left.count == 2
        assert left.mean_ps == 20

    def test_merge_updates_extremes_and_percentiles(self):
        left, right = LatencyStats(), LatencyStats()
        for sample in (50, 60):
            left.add(sample)
        for sample in (10, 90):
            right.add(sample)
        left.percentile_ps(0.5)  # prime the sorted cache
        left.merge(right)
        assert left.min_ps == 10
        assert left.max_ps == 90
        assert left.percentile_ps(0.0) == 10
        assert left.percentile_ps(1.0) == 90

    def test_merge_empty_is_noop(self):
        stats = LatencyStats()
        stats.add(7)
        stats.merge(LatencyStats())
        assert stats.count == 1
        assert stats.mean_ps == 7

    def test_percentile_cache_invalidated_by_add(self):
        stats = LatencyStats()
        stats.add(100)
        assert stats.percentile_ps(1.0) == 100
        stats.add(5)
        assert stats.percentile_ps(0.0) == 5
        assert stats.percentile_ps(1.0) == 100

    def test_reset_clears_everything(self):
        stats = LatencyStats()
        stats.add(10)
        stats.reset()
        assert stats.count == 0

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9), min_size=1, max_size=200))
    def test_mean_between_min_and_max(self, samples):
        stats = LatencyStats()
        for sample in samples:
            stats.add(sample)
        assert stats.min_ps <= stats.mean_ps <= stats.max_ps

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=100))
    def test_percentiles_monotonic(self, samples):
        stats = LatencyStats()
        for sample in samples:
            stats.add(sample)
        fractions = [0.1, 0.5, 0.9, 1.0]
        values = [stats.percentile_ps(f) for f in fractions]
        assert values == sorted(values)
        assert values[-1] == stats.max_ps


class TestThroughputMeter:
    def test_gbps_over_window(self):
        meter = ThroughputMeter()
        meter.record(1_250, time_ps=0)
        meter.record(1_250, time_ps=1_000_000)  # 1 us window
        # 2500 B over 1 us = 20 Gbps.
        assert meter.gbps == pytest.approx(20.0)

    def test_items_per_second(self):
        meter = ThroughputMeter()
        for index in range(11):
            meter.record(64, time_ps=index * 100_000)
        assert meter.items_per_second == pytest.approx(11 / 1e-6, rel=0.01)

    def test_empty_meter_raises(self):
        with pytest.raises(ValueError):
            ThroughputMeter().window_ps

    def test_out_of_order_records_extend_window(self):
        meter = ThroughputMeter()
        meter.record(100, time_ps=500_000)
        meter.record(100, time_ps=100_000)
        assert meter.window_ps == 400_000

    def test_reset(self):
        meter = ThroughputMeter()
        meter.record(100, 0)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.total_items == 0


class TestMonitorSnapshot:
    def test_as_dict_merges_counters_and_gauges(self):
        snapshot = MonitorSnapshot("network", counters={"rx": 5}, gauges={"load": 0.5})
        merged = snapshot.as_dict()
        assert merged == {"rx": 5, "load": 0.5}
