"""The fused multi-point planner inside :class:`SweepRunner`.

The acceptance bar for the fused path: **invisible in the output**.
``SweepResult.to_json()`` and ``merged_trace_jsonl()`` must be
byte-identical between fused, per-point (``fuse=False``), ``workers=1``
and ``workers=4`` executions; the planner only changes how cache-miss
points execute (in-process batched kernel vs ProcessPool fan-out), which
the provenance attributes -- and nothing else -- expose.
"""

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest

import repro.runtime.sweep as sweep_module
from repro.errors import ConfigurationError
from repro.runtime.sweep import (
    SweepCache,
    SweepPlan,
    SweepPoint,
    SweepRunner,
    _pool_chunksize,
    partition_fusable,
    run_fused_group,
    run_point,
)

APP = "sec-gateway"
DEVICE = "device-a"


def small_plan(**overrides):
    defaults = dict(apps=(APP, "host-network"), devices=(DEVICE,),
                    packet_sizes=(64, 256, 1024), packets_per_point=150)
    defaults.update(overrides)
    return SweepPlan(**defaults)


def result_bytes(result):
    return (json.dumps(result.to_json(), sort_keys=True),
            result.merged_trace_jsonl())


class TestPoolChunksize:
    @pytest.mark.parametrize("count,workers,expected", [
        (1, 1, 1),
        (1, 4, 1),
        (4, 1, 1),
        (16, 4, 1),     # exactly 4 chunks per worker
        (17, 4, 2),     # old floor-divide said 1 -> 17 pickling round trips
        (45, 4, 3),     # old floor-divide said 2 -> a 1-point tail chunk
        (100, 4, 7),
        (3, 8, 1),      # fewer points than workers never chunks to 0
    ])
    def test_ceil_divide_boundaries(self, count, workers, expected):
        assert _pool_chunksize(count, workers) == expected

    def test_always_positive(self):
        for count in range(1, 40):
            for workers in range(1, 9):
                assert _pool_chunksize(count, workers) >= 1


class TestBatchedCacheOps:
    def test_lookup_many_matches_singular_semantics(self):
        cache = SweepCache()
        cache.store("k1", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        cache.store("k2", {"throughput_bps": 3.0, "mean_latency_ns": 4.0,
                           "trace_jsonl": "span\n"})
        found = cache.lookup_many(["k1", "k2", "k1", "missing"],
                                  [False, True, True, False])
        assert found[0]["throughput_bps"] == 1.0
        assert found[1]["trace_jsonl"] == "span\n"
        assert found[2] is None    # k1 has no trace: traced probe misses
        assert found[3] is None
        assert cache.hits == 2 and cache.misses == 2

    def test_lookup_many_refreshes_lru(self):
        cache = SweepCache(max_entries=2)
        cache.store("old", {"throughput_bps": 1.0})
        cache.store("new", {"throughput_bps": 2.0})
        cache.lookup_many(["old"], [False])   # refresh: "new" is now LRU
        cache.store("third", {"throughput_bps": 3.0})
        assert cache.evictions == 1
        assert cache.lookup("old", False) is not None
        assert cache.lookup("new", False) is None

    def test_store_many_keeps_downgrade_protection(self):
        cache = SweepCache()
        cache.store("k", {"throughput_bps": 1.0, "trace_jsonl": "span\n"})
        cache.store_many([
            ("k", {"throughput_bps": 1.0}),     # must not drop the trace
            ("k2", {"throughput_bps": 2.0}),
        ])
        assert cache.lookup("k", True)["trace_jsonl"] == "span\n"
        assert cache.lookup("k2", False)["throughput_bps"] == 2.0

    def test_store_many_enforces_bound(self):
        cache = SweepCache(max_entries=2)
        cache.store_many((f"k{i}", {"throughput_bps": float(i)})
                         for i in range(5))
        assert len(cache) == 2
        assert cache.evictions == 3


class TestPartition:
    def points(self, **overrides):
        base = dict(app=APP, device=DEVICE, packet_size_bytes=64,
                    packet_count=100)
        base.update(overrides)
        return SweepPoint(**base)

    def test_groups_by_chain_and_count(self):
        points = [
            self.points(packet_size_bytes=64),
            self.points(packet_size_bytes=256),
            self.points(packet_size_bytes=64, packet_count=200),
            self.points(app="host-network"),
            self.points(packet_size_bytes=512),
        ]
        groups, pooled = partition_fusable(points, range(len(points)))
        assert pooled == []
        assert list(groups.values()) == [[0, 1, 4], [2], [3]]
        assert list(groups) == [
            ((APP, DEVICE, True), 100),
            ((APP, DEVICE, True), 200),
            (("host-network", DEVICE, True), 100),
        ]

    def test_traced_and_des_points_pool(self):
        points = [
            self.points(),
            self.points(trace=True),
            self.points(engine="des"),
        ]
        groups, pooled = partition_fusable(points, range(3))
        assert list(groups.values()) == [[0]]
        assert pooled == [1, 2]

    def test_non_analytic_chain_pools(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "chain_supports_vector",
                            lambda chain: False)
        groups, pooled = partition_fusable([self.points()], [0])
        assert not groups and pooled == [0]

    def test_fused_group_matches_run_point(self):
        points = [self.points(packet_size_bytes=size)
                  for size in (64, 256, 1024)]
        fused = run_fused_group(points, [0, 1, 2])
        assert fused == [run_point(point) for point in points]


class TestDeterminism:
    def test_fused_perpoint_and_workers_byte_identical(self):
        plan = small_plan()
        runs = [
            SweepRunner(plan, workers=1, cache=SweepCache(), fuse=True).run(),
            SweepRunner(plan, workers=1, cache=SweepCache(), fuse=False).run(),
            SweepRunner(plan, workers=4, cache=SweepCache(), fuse=True).run(),
            SweepRunner(plan, workers=4, cache=SweepCache(), fuse=False).run(),
        ]
        baseline = result_bytes(runs[0])
        for result in runs[1:]:
            assert result_bytes(result) == baseline

    def test_traced_plan_byte_identical_and_unfused(self):
        plan = small_plan(trace=True, packet_sizes=(64, 256),
                          packets_per_point=40)
        fused = SweepRunner(plan, workers=1, cache=SweepCache(),
                            fuse=True).run()
        plain = SweepRunner(plan, workers=4, cache=SweepCache(),
                            fuse=False).run()
        assert result_bytes(fused) == result_bytes(plain)
        assert fused.merged_trace_jsonl()
        assert fused.fused_points == 0       # traces force per-point
        assert fused.pooled_points == len(fused)

    def test_cache_entries_identical_across_modes(self):
        plan = small_plan()
        fused_cache, plain_cache = SweepCache(), SweepCache()
        SweepRunner(plan, cache=fused_cache, fuse=True).run()
        SweepRunner(plan, cache=plain_cache, fuse=False).run()
        assert fused_cache._entries == plain_cache._entries

    def test_warm_cache_serves_fused_results(self):
        cache = SweepCache()
        plan = small_plan()
        cold = SweepRunner(plan, cache=cache, fuse=True).run()
        warm = SweepRunner(plan, cache=cache, fuse=True).run()
        assert warm.cache_hits == len(warm)
        assert warm.fused_points == 0 and warm.pooled_points == 0
        assert json.dumps(cold.to_json(), sort_keys=True).replace(
            '"cached": false', '"cached": true') == json.dumps(
                warm.to_json(), sort_keys=True)


class TestProvenance:
    def test_fused_run_stats(self):
        plan = small_plan()   # 2 apps x 1 device x 3 sizes, one count
        result = SweepRunner(plan, cache=SweepCache(), fuse=True).run()
        assert result.fused_points == 6
        assert result.fused_groups == 2       # one per (app, device) chain
        assert result.pooled_points == 0
        assert result.spawned_pool is False   # nothing pooled, no pool
        for name in ("fused_points", "fused_groups", "pooled_points",
                     "spawned_pool"):
            assert name not in json.dumps(result.to_json())

    def test_unfused_parallel_run_spawns_pool(self):
        plan = small_plan(packet_sizes=(64, 256), packets_per_point=40)
        result = SweepRunner(plan, workers=2, cache=SweepCache(),
                             fuse=False).run()
        assert result.fused_points == 0
        assert result.pooled_points == 4
        assert result.spawned_pool is True

    def test_injected_executor_is_reused_not_owned(self):
        plan = small_plan(packet_sizes=(64, 256), packets_per_point=40)
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = SweepRunner(plan, workers=2, cache=SweepCache(),
                                fuse=False, executor=pool).run()
            second = SweepRunner(plan, workers=2, cache=SweepCache(),
                                 fuse=False, executor=pool).run()
            assert first.spawned_pool is False
            assert second.spawned_pool is False   # still alive, still usable
        assert result_bytes(first) == result_bytes(second)

    def test_engine_des_disables_fusing(self):
        plan = small_plan(packet_sizes=(64,), packets_per_point=40)
        result = SweepRunner(plan, cache=SweepCache(), engine="des",
                             fuse=True).run()
        assert result.fused_points == 0
        assert result.pooled_points == len(result)

    def test_engine_vector_on_unsupported_chain_still_raises(self,
                                                             monkeypatch):
        # The planner must route vector-on-unsupported to the per-point
        # path so the ConfigurationError surfaces instead of silently
        # batching a chain the kernel cannot model.
        import repro.sim.vector as vector_module

        monkeypatch.setattr(sweep_module, "chain_supports_vector",
                            lambda chain: False)
        monkeypatch.setattr(vector_module, "chain_supports_vector",
                            lambda chain: False)
        plan = small_plan(packet_sizes=(64,), packets_per_point=40)
        with pytest.raises(ConfigurationError):
            SweepRunner(plan, cache=SweepCache(), engine="vector",
                        fuse=True).run()

    def test_intra_run_dedup_survives_fusing(self):
        # device-a and device-a listed twice: same content keys, the
        # second copy must be served by dedup, not executed again.
        plan = SweepPlan(apps=(APP,), devices=(DEVICE,),
                         packet_sizes=(64, 64, 256),
                         packets_per_point=40)
        result = SweepRunner(plan, cache=SweepCache(), fuse=True).run()
        assert len(result) == 3
        assert result.fused_points == 2       # 64B executed once
        points = result.to_json()["points"]
        assert points[0]["throughput_gbps"] == points[1]["throughput_gbps"]
        assert points[0]["mean_latency_ns"] == points[1]["mean_latency_ns"]
