"""Tests for the parallel sweep runner and its content-keyed cache.

The load-bearing guarantees: (1) worker count is invisible -- a plan run
at ``workers=1`` and ``workers=4`` produces byte-identical results and
merged traces; (2) the cache only ever returns what a fresh simulation
would have produced, including traces; (3) the batch fast path inside
``run_packet_sweep`` agrees exactly with the pinned reference loop.
"""

import pytest

from repro.apps import application_by_name
from repro.errors import ConfigurationError, HarmoniaError
from repro.platform.catalog import device_by_name
from repro.runtime.sweep import (
    SweepCache,
    SweepPlan,
    SweepPoint,
    SweepRunner,
    chain_signature,
    run_plan,
    sweep_cache_key,
)
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import (
    PipelineChain,
    PipelineStage,
    run_packet_sweep,
    run_packet_sweep_reference,
)

APP = "sec-gateway"
DEVICE = "device-a"


def small_plan(**overrides):
    defaults = dict(apps=(APP,), devices=(DEVICE,), packet_sizes=(64, 256),
                    packets_per_point=200)
    defaults.update(overrides)
    return SweepPlan(**defaults)


def app_chain(app_name=APP, device_name=DEVICE, with_harmonia=True):
    app = application_by_name(app_name)
    device = device_by_name(device_name)
    return app.datapath(app.tailored_shell(device), with_harmonia)


class TestPlan:
    def test_expand_is_app_device_size_ordered(self):
        plan = SweepPlan(apps=("a1", "a2"), devices=("d1", "d2"),
                        packet_sizes=(64, 128), packets_per_point=10)
        labels = [(p.app, p.device, p.packet_size_bytes)
                  for p in plan.expand()]
        assert labels == [
            ("a1", "d1", 64), ("a1", "d1", 128),
            ("a1", "d2", 64), ("a1", "d2", 128),
            ("a2", "d1", 64), ("a2", "d1", 128),
            ("a2", "d2", 64), ("a2", "d2", 128),
        ]
        assert len(plan) == 8

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan(apps=(), devices=("d",), packet_sizes=(64,))

    def test_zero_packets_rejected(self):
        with pytest.raises(ConfigurationError):
            small_plan(packets_per_point=0)

    def test_point_label(self):
        point = SweepPoint(app="a", device="d", packet_size_bytes=64,
                           packet_count=10, with_harmonia=False)
        assert point.label() == "a@d/native/64B"


class TestCacheKey:
    def test_key_is_stable_and_content_only(self):
        chain_a = app_chain()
        chain_b = app_chain()          # fresh tailoring, same content
        sig_a, sig_b = chain_signature(chain_a), chain_signature(chain_b)
        assert sig_a == sig_b
        assert (sweep_cache_key(sig_a, 64, 100)
                == sweep_cache_key(sig_b, 64, 100))

    def test_signature_ignores_names(self):
        def chain(name):
            return PipelineChain(name, [
                PipelineStage(f"{name}-stage", ClockDomain("clk", 250.0), 512,
                              latency_cycles=4)])
        assert chain_signature(chain("x")) == chain_signature(chain("y"))

    def test_key_varies_with_every_sweep_parameter(self):
        sig = chain_signature(app_chain())
        base = sweep_cache_key(sig, 64, 100)
        assert sweep_cache_key(sig, 128, 100) != base
        assert sweep_cache_key(sig, 64, 200) != base
        assert sweep_cache_key(sig, 64, 100, offered_load_bps=1e9) != base

    def test_traced_points_fold_in_the_chain_name(self):
        # Throughput is name-blind but traces embed span names, so a
        # traced entry is only shareable under the same chain name.
        sig = chain_signature(app_chain())
        assert sweep_cache_key(sig, 64, 100, trace_of="c1") != \
            sweep_cache_key(sig, 64, 100, trace_of="c2")
        assert sweep_cache_key(sig, 64, 100, trace_of=None) == \
            sweep_cache_key(sig, 64, 100)


class TestSweepCache:
    def test_untraced_entry_misses_for_traced_request(self):
        cache = SweepCache()
        cache.store("k", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        assert cache.lookup("k", need_trace=True) is None
        assert cache.lookup("k", need_trace=False) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_traced_entry_never_downgraded(self):
        cache = SweepCache()
        cache.store("k", {"throughput_bps": 1.0, "mean_latency_ns": 2.0,
                          "trace_jsonl": "line\n"})
        cache.store("k", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        assert cache.lookup("k", need_trace=True)["trace_jsonl"] == "line\n"

    def test_save_load_roundtrip(self, tmp_path):
        cache = SweepCache()
        cache.store("k1", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        path = tmp_path / "sweep.cache.json"
        assert cache.save(str(path)) == 1
        fresh = SweepCache()
        assert fresh.load(str(path)) == 1
        assert fresh.lookup("k1", need_trace=False)["throughput_bps"] == 1.0

    def test_load_rejects_non_cache_file(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigurationError):
            SweepCache().load(str(path))

    @staticmethod
    def _entry(value):
        return {"throughput_bps": float(value), "mean_latency_ns": 2.0}

    def test_lru_bound_evicts_least_recently_used(self):
        cache = SweepCache(max_entries=2)
        cache.store("a", self._entry(1))
        cache.store("b", self._entry(2))
        assert cache.lookup("a", need_trace=False) is not None  # refresh a
        cache.store("c", self._entry(3))                        # evicts b
        assert cache.lookup("b", need_trace=False) is None
        assert cache.lookup("a", need_trace=False) is not None
        assert cache.lookup("c", need_trace=False) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_unbounded_cache_never_evicts(self):
        cache = SweepCache()
        for index in range(1_000):
            cache.store(f"k{index}", self._entry(index))
        assert len(cache) == 1_000
        assert cache.evictions == 0

    def test_bad_bound_is_loud(self):
        with pytest.raises(ConfigurationError):
            SweepCache(max_entries=0)

    def test_evictions_land_in_an_attached_registry(self):
        from repro.runtime.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = SweepCache(max_entries=1)
        cache.attach_metrics(registry)
        cache.store("a", self._entry(1))
        cache.store("b", self._entry(2))
        assert registry.counter("sweep.cache.evictions").value == 1

    def test_load_respects_the_bound(self, tmp_path):
        full = SweepCache()
        for index in range(5):
            full.store(f"k{index}", self._entry(index))
        path = tmp_path / "sweep.cache.json"
        full.save(str(path))
        bounded = SweepCache(max_entries=2)
        bounded.load(str(path))
        assert len(bounded) == 2
        assert bounded.evictions == 3


class TestRunner:
    def test_second_run_is_all_cache_hits_with_identical_floats(self):
        cache = SweepCache()
        runner = SweepRunner(small_plan(), cache=cache)
        cold = runner.run()
        warm = runner.run()
        assert cold.cache_hits == 0 or cold.cache_hits < len(cold)
        assert warm.cache_hits == len(warm)
        for first, second in zip(cold.points, warm.points):
            assert first.throughput_bps == second.throughput_bps
            assert first.mean_latency_ns == second.mean_latency_ns
            assert first.cache_key == second.cache_key

    def test_use_cache_false_never_reads_or_writes(self):
        cache = SweepCache()
        result = run_plan(small_plan(), cache=cache, use_cache=False)
        assert result.cache_hits == 0
        assert len(cache) == 0

    def test_matches_direct_reference_sweep(self):
        # The runner's numbers are exactly what the seed's serial loop
        # produces point by point -- caching and batching change nothing.
        result = run_plan(small_plan(), use_cache=False)
        chain = app_chain()
        for point in result.points:
            expected = run_packet_sweep_reference(
                chain, packet_size_bytes=point.point.packet_size_bytes,
                packet_count=point.point.packet_count)
            assert point.throughput_bps == expected[0]
            assert point.mean_latency_ns == expected[1]

    def test_samples_match_app_measure(self):
        plan = small_plan(packet_sizes=(64, 256, 1024))
        samples = run_plan(plan, use_cache=False).samples()[(APP, DEVICE)]
        direct = application_by_name(APP).measure(
            device_by_name(DEVICE), packet_sizes=(64, 256, 1024),
            packets_per_point=200)
        assert [s.throughput_gbps for s in samples] == \
            [s.throughput_gbps for s in direct]
        assert [s.latency_us for s in samples] == \
            [s.latency_us for s in direct]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(small_plan(), workers=0)

    def test_unknown_app_raises_harmonia_error(self):
        with pytest.raises(HarmoniaError):
            run_plan(SweepPlan(apps=("no-such-app",), devices=(DEVICE,),
                               packet_sizes=(64,), packets_per_point=10),
                     use_cache=False)


class TestDeterminism:
    def test_worker_count_is_invisible_in_results_and_traces(self):
        # ISSUE acceptance: byte-identical output at workers=1 vs workers=4.
        plan = small_plan(packet_sizes=(64, 256), packets_per_point=50,
                          trace=True)
        serial = run_plan(plan, workers=1, use_cache=False)
        pooled = run_plan(plan, workers=4, use_cache=False)
        assert serial.to_json() == pooled.to_json()
        assert serial.merged_trace_jsonl() == pooled.merged_trace_jsonl()
        assert serial.merged_trace_jsonl()   # non-trivial comparison

    def test_warm_cache_reproduces_cold_traces_byte_for_byte(self):
        plan = small_plan(packet_sizes=(64,), packets_per_point=50, trace=True)
        cache = SweepCache()
        cold = run_plan(plan, cache=cache)
        warm = run_plan(plan, cache=cache)
        assert warm.cache_hits == len(warm)
        assert warm.merged_trace_jsonl() == cold.merged_trace_jsonl()

    def test_each_traced_point_carries_its_own_chain_spans(self):
        # Guards the trace_of key component: a traced point must never
        # serve another chain's spans even when timing content matches.
        plan = SweepPlan(apps=(APP, "host-network"), devices=(DEVICE,),
                         packet_sizes=(64,), packets_per_point=50, trace=True)
        result = run_plan(plan, use_cache=False)
        for point in result.points:
            app = application_by_name(point.point.app)
            chain = app.datapath(
                app.tailored_shell(device_by_name(point.point.device)),
                point.point.with_harmonia)
            assert chain.name in point.trace_jsonl


class TestFastPathAgainstReference:
    @pytest.mark.parametrize("size", [64, 256, 1024])
    def test_run_packet_sweep_equals_reference(self, size):
        chain = app_chain()
        fast = run_packet_sweep(chain, packet_size_bytes=size,
                                packet_count=500)
        reference = run_packet_sweep_reference(chain, packet_size_bytes=size,
                                               packet_count=500)
        assert fast == reference


class TestAtomicCacheSave:
    def test_truncated_cache_file_raises_configuration_error(self, tmp_path):
        # ISSUE satellite: a crash-truncated cache must not surface as a
        # bare JSON traceback.
        path = tmp_path / "sweep.cache.json"
        cache = SweepCache()
        cache.store("k1", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        cache.save(str(path))
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.raises(ConfigurationError) as excinfo:
            SweepCache().load(str(path))
        assert str(path) in str(excinfo.value)

    def test_save_leaves_no_temp_files(self, tmp_path):
        cache = SweepCache()
        cache.store("k1", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        path = tmp_path / "sweep.cache.json"
        cache.save(str(path))
        cache.save(str(path))               # overwrite goes through replace
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.cache.json"]

    def test_failed_save_preserves_previous_file(self, tmp_path, monkeypatch):
        cache = SweepCache()
        cache.store("k1", {"throughput_bps": 1.0, "mean_latency_ns": 2.0})
        path = tmp_path / "sweep.cache.json"
        cache.save(str(path))
        before = path.read_text()

        import json as json_module

        def boom(*_args, **_kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(json_module, "dump", boom)
        with pytest.raises(OSError):
            cache.save(str(path))
        monkeypatch.undo()
        assert path.read_text() == before   # old cache intact
        assert [p.name for p in tmp_path.iterdir()] == ["sweep.cache.json"]


class TestEngineTiers:
    def test_vector_and_des_tiers_are_byte_identical(self):
        # ISSUE acceptance: vector-vs-DES invisible for analytic chains.
        plan = small_plan(packet_sizes=(64, 256), packets_per_point=100,
                          trace=True)
        vector = run_plan(plan, use_cache=False, engine="vector")
        des = run_plan(plan, use_cache=False, engine="des")
        assert vector.to_json() == des.to_json()
        assert vector.merged_trace_jsonl() == des.merged_trace_jsonl()
        assert vector.merged_trace_jsonl()  # non-trivial comparison

    def test_engine_is_not_part_of_the_cache_key(self):
        cache = SweepCache()
        plan = small_plan(packet_sizes=(64,), packets_per_point=100)
        run_plan(plan, cache=cache, engine="vector")
        warm = run_plan(plan, cache=cache, engine="des")
        assert warm.cache_hits == len(warm)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(small_plan(), engine="warp")

    def test_point_results_identical_across_workers_with_vector(self):
        plan = small_plan(packet_sizes=(64, 256), packets_per_point=50)
        serial = run_plan(plan, workers=1, use_cache=False, engine="vector")
        pooled = run_plan(plan, workers=4, use_cache=False, engine="vector")
        assert serial.to_json() == pooled.to_json()
