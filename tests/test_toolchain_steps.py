"""Resumable toolchain steps, canonical hashing, and the compile model."""

import dataclasses
import math

import pytest

from repro.adapters.toolchain import (
    BUILD_STEP_NAMES,
    BitstreamPackage,
    BuildFlow,
    canonical_json,
    compile_cost_units,
    module_inventory,
    run_compile_model,
)
from repro.apps import application_by_name
from repro.errors import ConfigurationError, DeploymentError
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import device_by_name


def _shell(device_name="device-a", app_name="board-test"):
    device = device_by_name(device_name)
    return device, application_by_name(app_name).tailored_shell(device)


class TestCanonicalJson:
    def test_sorted_compact_and_stable(self):
        assert canonical_json({"b": 1, "a": [True, None, 1.5]}) == \
            '{"a":[true,null,1.5],"b":1}'

    def test_key_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == \
            canonical_json({"b": 2, "a": 1})

    def test_rejects_unknown_types_naming_the_path(self):
        with pytest.raises(ConfigurationError, match=r"\$\.config\[1\]"):
            canonical_json({"config": [1, object()]})

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(ConfigurationError):
            canonical_json({1: "x"})

    def test_rejects_non_finite_floats(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"fmax": math.nan})
        with pytest.raises(ConfigurationError):
            canonical_json([math.inf])

    def test_package_checksum_rejects_non_canonical_config(self):
        # Regression: the old encoder used ``default=str``, silently
        # coercing unknown objects into strings inside the checksum.
        device, shell = _shell()
        modules = shell.modules()
        total = ResourceUsage.total(ip.resources for ip in modules)
        with pytest.raises(ConfigurationError):
            BitstreamPackage.build(device, modules, total,
                                   {"bad": object()}, {})

    def test_package_checksum_is_key_order_independent(self):
        device, shell = _shell()
        modules = shell.modules()
        total = ResourceUsage.total(ip.resources for ip in modules)
        one = BitstreamPackage.build(device, modules, total,
                                     {"a": 1, "b": 2}, {})
        two = BitstreamPackage.build(device, modules, total,
                                     {"b": 2, "a": 1}, {})
        assert one.checksum == two.checksum


class TestModuleInventory:
    def test_inventory_is_order_independent(self):
        _device, shell = _shell()
        modules = shell.modules()
        assert module_inventory(modules) == \
            module_inventory(list(reversed(modules)))

    def test_inventory_carries_names_and_dependencies(self):
        _device, shell = _shell()
        inventory = module_inventory(shell.modules())
        assert all(set(entry) == {"name", "dependencies"}
                   for entry in inventory)
        names = [entry["name"] for entry in inventory]
        assert names == sorted(names)


class TestCompileModel:
    def test_zero_effort_skips_the_iteration_loop(self):
        report = run_compile_model("ab" * 32, units=100, effort=0)
        assert report.iterations == 0
        assert 350.0 <= report.fmax_mhz < 550.0

    def test_model_is_deterministic(self):
        one = run_compile_model("12" * 32, units=40, effort=3)
        two = run_compile_model("12" * 32, units=40, effort=3)
        assert one == two
        assert one.iterations == 120

    def test_seed_changes_the_outputs(self):
        one = run_compile_model("11" * 32, units=40, effort=3)
        two = run_compile_model("22" * 32, units=40, effort=3)
        assert (one.fmax_mhz, one.congestion) != (two.fmax_mhz, two.congestion)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_compile_model("ab", units=-1, effort=0)

    def test_cost_units_grow_with_module_count(self):
        _device, shell = _shell()
        modules = shell.modules()
        total = ResourceUsage.total(ip.resources for ip in modules)
        assert compile_cost_units(modules, total) > \
            compile_cost_units(modules[:1], modules[0].resources)


class TestResumableSteps:
    def test_compile_chains_the_steps_with_timings(self):
        device, shell = _shell()
        outcome = BuildFlow(device).compile("proj", shell.modules())
        assert [timing.step for timing in outcome.step_timings] == \
            list(BUILD_STEP_NAMES)
        assert all(timing.wall_s >= 0.0 for timing in outcome.step_timings)
        assert outcome.bundle.bitstream.checksum
        assert outcome.timing_report.iterations == 0

    def test_build_keeps_the_one_call_surface(self):
        device, shell = _shell()
        bundle = BuildFlow(device).build("proj", shell.modules())
        outcome = BuildFlow(device).compile("proj", shell.modules())
        assert bundle.bitstream.checksum == outcome.bundle.bitstream.checksum

    def test_inspect_raises_deployment_error_on_conflict(self):
        device, shell = _shell()
        modules = shell.modules()
        broken = dataclasses.replace(
            modules[0], dependencies={"tool": "some-other-cad"})
        with pytest.raises(DeploymentError, match="dependency inspection"):
            BuildFlow(device).step_inspect("proj", [broken] + modules[1:])

    def test_fit_raises_deployment_error_when_over_budget(self):
        device, shell = _shell()
        oversize = ResourceUsage(lut=device.budget.lut + 1)
        with pytest.raises(DeploymentError, match="does not fit"):
            BuildFlow(device).step_fit("proj", shell.modules(),
                                       extra_resources=oversize)

    def test_fit_returns_total_including_extras(self):
        device, shell = _shell()
        modules = shell.modules()
        extra = ResourceUsage(lut=1_000)
        total, report = BuildFlow(device).step_fit("proj", modules,
                                                   extra_resources=extra)
        bare = ResourceUsage.total(ip.resources for ip in modules)
        assert total.lut == bare.lut + 1_000
        assert report.units == compile_cost_units(modules, total)

    def test_effort_feeds_the_model_not_the_checksum(self):
        device, shell = _shell()
        modules = shell.modules()
        flow = BuildFlow(device)
        _, fast = flow.step_fit("proj", modules, effort=0)
        _, slow = flow.step_fit("proj", modules, effort=2)
        assert slow.iterations > fast.iterations == 0
        bundle_fast = flow.step_package("proj", modules, ResourceUsage())
        bundle_slow = flow.step_package("proj", modules, ResourceUsage())
        assert bundle_fast.bitstream.checksum == bundle_slow.bitstream.checksum
