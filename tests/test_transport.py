"""Tests for the flow-level reliable transport (go-back-N)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.transport import (
    LossyLink,
    ReliableTransport,
    Segment,
    SegmentKind,
    SEGMENT_MTU,
)
from repro.errors import ConfigurationError


def make_transport(drops=None, window=8):
    link = LossyLink(drop_positions=drops)
    transport = ReliableTransport(link, window_segments=window)
    transport.open_connection(1)
    return transport, link


class TestSegmentation:
    def test_message_split_at_mtu(self):
        transport, _link = make_transport()
        segments = transport.send(1, SEGMENT_MTU * 2 + 100)
        assert [s.payload_bytes for s in segments] == [SEGMENT_MTU, SEGMENT_MTU, 100]

    def test_oversized_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(SegmentKind.DATA, 1, 0, SEGMENT_MTU + 1)

    def test_window_limits_outstanding_segments(self):
        transport, link = make_transport(window=4)
        # Drop everything so no ACKs slide the window.
        link._drop_positions = set(range(1_000))
        transport.send(1, SEGMENT_MTU * 10)
        assert transport.stats(1)["in_flight"] == 4


class TestLosslessDelivery:
    def test_all_bytes_arrive(self):
        transport, _link = make_transport()
        transport.send(1, 10_000)
        assert transport.transfer_complete(1, 10_000)
        assert transport.stats(1)["retransmissions"] == 0

    def test_sequence_numbers_monotonic(self):
        transport, link = make_transport()
        transport.send(1, SEGMENT_MTU * 3)
        sequences = [s.sequence for s in link.delivered if s.kind is SegmentKind.DATA]
        assert sequences == [0, 1, 2]

    def test_multiple_connections_independent(self):
        link = LossyLink()
        transport = ReliableTransport(link)
        transport.open_connection(1)
        transport.open_connection(2)
        transport.send(1, 5_000)
        transport.send(2, 3_000)
        assert transport.transfer_complete(1, 5_000)
        assert transport.transfer_complete(2, 3_000)


class TestLossRecovery:
    def test_single_drop_recovered_by_nak(self):
        transport, _link = make_transport(drops=[1])   # drop the 2nd segment
        transport.send(1, SEGMENT_MTU * 4)
        assert transport.transfer_complete(1, SEGMENT_MTU * 4)
        stats = transport.stats(1)
        assert stats["retransmissions"] >= 1
        assert stats["naks"] >= 1

    def test_first_segment_drop_needs_pump(self):
        # Dropping segment 0 leaves the receiver silent (no gap seen yet
        # if nothing else arrives) -- the timeout path recovers it.
        transport, _link = make_transport(drops=[0])
        transport.send(1, SEGMENT_MTU)
        assert not transport.transfer_complete(1, SEGMENT_MTU)
        transport.pump(1)
        assert transport.transfer_complete(1, SEGMENT_MTU)

    def test_burst_drop_recovered(self):
        transport, _link = make_transport(drops=[1, 2])
        transport.send(1, SEGMENT_MTU * 5)
        transport.pump(1)
        assert transport.transfer_complete(1, SEGMENT_MTU * 5)

    def test_no_double_counting_under_loss(self):
        # The receiver discards out-of-order segments and the ACK path is
        # synchronous, so retransmissions never inflate received bytes.
        transport, _link = make_transport(drops=[1])
        transport.send(1, SEGMENT_MTU * 4)
        stats = transport.stats(1)
        assert stats["received_bytes"] == SEGMENT_MTU * 4
        assert stats["duplicates"] == 0

    def test_stale_segment_counted_as_duplicate(self):
        # A segment replayed after its sequence was consumed (e.g. a
        # delayed wire copy) is re-ACKed but not re-counted.
        transport, _link = make_transport()
        transport.send(1, SEGMENT_MTU * 2)
        stale = Segment(SegmentKind.DATA, 1, 0, SEGMENT_MTU)
        transport._on_data(stale)
        stats = transport.stats(1)
        assert stats["duplicates"] == 1
        assert stats["received_bytes"] == SEGMENT_MTU * 2

    @settings(max_examples=30, deadline=None)
    @given(drops=st.lists(st.integers(0, 12), max_size=3, unique=True),
           segments=st.integers(1, 6))
    def test_any_bounded_loss_pattern_recovers(self, drops, segments):
        transport, _link = make_transport(drops=drops, window=16)
        payload = SEGMENT_MTU * segments
        transport.send(1, payload)
        for _ in range(6):   # bounded timeout pumps
            if transport.transfer_complete(1, payload):
                break
            transport.pump(1)
        assert transport.transfer_complete(1, payload)


class TestConnectionLifecycle:
    def test_double_open_rejected(self):
        transport, _link = make_transport()
        with pytest.raises(ConfigurationError):
            transport.open_connection(1)

    def test_send_on_unknown_connection_rejected(self):
        transport, _link = make_transport()
        with pytest.raises(ConfigurationError):
            transport.send(99, 100)

    def test_close_with_in_flight_rejected(self):
        transport, link = make_transport()
        link._drop_positions = set(range(100))
        transport.send(1, SEGMENT_MTU)
        with pytest.raises(ConfigurationError, match="in flight"):
            transport.close_connection(1)

    def test_send_after_close_rejected(self):
        transport, _link = make_transport()
        transport.send(1, 100)
        transport.close_connection(1)
        with pytest.raises(ConfigurationError, match="closed"):
            transport.send(1, 100)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ReliableTransport(LossyLink(), window_segments=0)
