"""The fused multi-train kernel vs the per-point tiers.

``simulate_trains`` / ``run_packet_sweep_vector_batch`` claim **bit
exactness** against the per-point paths -- same completion integers,
same result floats, same folded-back stage occupancy and statistics as
the sequential per-point loop would leave.  These tests pin all of it:
hand-picked chains for the edges, hypothesis over random chain groups,
mixed packet-count buckets, and warm carried-in ``_next_free_ps`` state.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import (
    PipelineChain,
    PipelineStage,
    run_packet_sweep_reference,
)
from repro.sim.vector import (
    BatchTrainTiming,
    run_packet_sweep_vector,
    run_packet_sweep_vector_batch,
    simulate_train,
    simulate_trains,
)

FREQS = (100.0, 250.0, 322.265625, 500.0, 1_562.5)
WIDTHS = (8, 64, 256, 512)


def stage_state(chain):
    """The observable per-stage state the kernels must fold back."""
    return [(stage._next_free_ps, stage.transactions_processed,
             stage.busy_ps) for stage in chain.stages]


@st.composite
def chains(draw, max_stages: int = 4) -> PipelineChain:
    count = draw(st.integers(1, max_stages))
    stages = [
        PipelineStage(
            f"s{index}",
            ClockDomain(f"c{index}", draw(st.sampled_from(FREQS))),
            draw(st.sampled_from(WIDTHS)),
            latency_cycles=draw(st.integers(0, 24)),
            initiation_interval=draw(st.integers(1, 4)),
            per_transaction_overhead_cycles=draw(st.integers(0, 8)),
        )
        for index in range(count)
    ]
    return PipelineChain("prop", stages)


@st.composite
def train_batches(draw, max_rows: int = 5, max_packets: int = 32):
    rows = draw(st.integers(1, max_rows))
    count = draw(st.integers(1, max_packets))
    grids = []
    for _ in range(rows):
        gaps = draw(st.lists(st.integers(0, 60_000),
                             min_size=count, max_size=count))
        grids.append(np.cumsum(np.asarray(gaps, dtype=np.int64)))
    sizes = draw(st.one_of(
        st.integers(1, 4_096),
        st.lists(st.integers(1, 4_096), min_size=rows, max_size=rows),
    ))
    return np.stack(grids), sizes


def simple_chain():
    return PipelineChain("batch", [
        PipelineStage("a", ClockDomain("c1", 322.265625), 64,
                      latency_cycles=3, initiation_interval=2,
                      per_transaction_overhead_cycles=1),
        PipelineStage("b", ClockDomain("c2", 250.0), 256, latency_cycles=7),
    ])


class TestSimulateTrains:
    @settings(max_examples=50, deadline=None)
    @given(chain=chains(), batch=train_batches())
    def test_rows_match_per_train_oracle(self, chain, batch):
        """Each row == simulate_train from the same starting occupancy,
        and the fold-back == the sequential restore-and-replay loop."""
        arrivals, sizes = batch
        rows = arrivals.shape[0]
        row_sizes = ([sizes] * rows if isinstance(sizes, int) else list(sizes))
        chain.reset()
        initial = [stage._next_free_ps for stage in chain.stages]
        expected_rows = []
        for row in range(rows):
            for stage, free in zip(chain.stages, initial):
                stage._next_free_ps = free
            timing = simulate_train(chain, arrivals[row], row_sizes[row])
            expected_rows.append(timing.completed_ps.tolist())
        expected_state = stage_state(chain)

        chain.reset()
        vector_sizes = (sizes if isinstance(sizes, int)
                        else np.asarray(sizes, dtype=np.int64))
        timing = simulate_trains(chain, arrivals, vector_sizes)
        assert timing.completed_ps.tolist() == expected_rows
        assert stage_state(chain) == expected_state

    @settings(max_examples=25, deadline=None)
    @given(chain=chains(), batch=train_batches(max_rows=3, max_packets=16),
           warm=st.lists(st.integers(0, 40_000), min_size=3, max_size=3))
    def test_warm_carried_in_state(self, chain, batch, warm):
        """Rows starting from warm ``_next_free_ps`` fold exactly."""
        arrivals, sizes = batch
        rows = arrivals.shape[0]
        row_sizes = ([sizes] * rows if isinstance(sizes, int) else list(sizes))
        warm_train = np.cumsum(
            np.asarray(warm, dtype=np.int64))  # heats the chain up

        chain.reset()
        simulate_train(chain, warm_train, 512)
        initial = [stage._next_free_ps for stage in chain.stages]
        expected_rows = []
        for row in range(rows):
            for stage, free in zip(chain.stages, initial):
                stage._next_free_ps = free
            expected_rows.append(
                simulate_train(chain, arrivals[row],
                               row_sizes[row]).completed_ps.tolist())
        expected_state = stage_state(chain)

        chain.reset()
        simulate_train(chain, warm_train, 512)
        vector_sizes = (sizes if isinstance(sizes, int)
                        else np.asarray(sizes, dtype=np.int64))
        timing = simulate_trains(chain, arrivals, vector_sizes)
        assert timing.completed_ps.tolist() == expected_rows
        assert stage_state(chain) == expected_state

    def test_update_state_false_leaves_chain_untouched(self):
        chain = simple_chain()
        arrivals = np.asarray([[0, 1_000], [500, 2_500]], dtype=np.int64)
        before = stage_state(chain)
        timing = simulate_trains(chain, arrivals, 64, update_state=False)
        assert stage_state(chain) == before
        assert timing.rows == 2 and timing.packets == 2

    def test_row_accessor_matches_per_train(self):
        chain = simple_chain()
        arrivals = np.asarray([[0, 900, 1_800], [0, 40, 80]], dtype=np.int64)
        batch = simulate_trains(chain, arrivals,
                                np.asarray([64, 1_500], dtype=np.int64),
                                update_state=False)
        assert isinstance(batch, BatchTrainTiming)
        assert len(batch) == 2
        for row, size in enumerate((64, 1_500)):
            chain.reset()
            single = simulate_train(chain, arrivals[row], size)
            view = batch.row(row)
            assert view.completed_ps.tolist() == single.completed_ps.tolist()
            assert view.latencies_ps.tolist() == single.latencies_ps.tolist()

    def test_shape_validation(self):
        chain = simple_chain()
        flat = np.asarray([0, 10], dtype=np.int64)
        with pytest.raises(ConfigurationError):
            simulate_trains(chain, flat, 64)
        with pytest.raises(ConfigurationError):
            simulate_trains(chain, np.empty((0, 4), dtype=np.int64), 64)
        with pytest.raises(ConfigurationError):
            simulate_trains(chain, np.empty((2, 0), dtype=np.int64), 64)
        with pytest.raises(ConfigurationError):
            simulate_trains(chain, np.zeros((2, 3), dtype=np.int64),
                            np.asarray([64], dtype=np.int64))


class TestSweepBatch:
    @settings(max_examples=40, deadline=None)
    @given(chain=chains(),
           sizes=st.lists(st.integers(1, 2_048), min_size=1, max_size=6),
           count=st.integers(1, 300))
    def test_batch_equals_sequential_per_point(self, chain, sizes, count):
        """Fused == per-point vector == DES: floats and folded state."""
        expected = [run_packet_sweep_vector(chain, size, count)
                    for size in sizes]
        expected_state = stage_state(chain)
        scalar = [run_packet_sweep_reference(chain, size, count)
                  for size in sizes]

        batched = run_packet_sweep_vector_batch(chain, sizes, count)
        assert batched == expected          # bit-exact floats
        assert batched == scalar            # and equal to scalar DES
        assert stage_state(chain) == expected_state

    @settings(max_examples=15, deadline=None)
    @given(chain=chains(max_stages=3),
           sizes=st.lists(st.integers(1, 2_048), min_size=1, max_size=4),
           counts=st.lists(st.integers(1, 120), min_size=2, max_size=3,
                           unique=True))
    def test_mixed_count_buckets_compose(self, chain, sizes, counts):
        """One batch call per packet-count bucket == per-point sequence."""
        expected = []
        for count in counts:
            for size in sizes:
                expected.append(run_packet_sweep_vector(chain, size, count))
        expected_state = stage_state(chain)
        batched = []
        for count in counts:
            batched.extend(run_packet_sweep_vector_batch(chain, sizes, count))
        assert batched == expected
        assert stage_state(chain) == expected_state

    def test_empty_sizes_is_noop(self):
        chain = simple_chain()
        assert run_packet_sweep_vector_batch(chain, [], 100) == []
        assert stage_state(chain) == [(0, 0, 0), (0, 0, 0)]

    def test_bad_count_and_load_shapes_rejected(self):
        chain = simple_chain()
        with pytest.raises(ConfigurationError):
            run_packet_sweep_vector_batch(chain, [64], 0)
        with pytest.raises(ConfigurationError):
            run_packet_sweep_vector_batch(chain, [64, 128], 10,
                                          offered_loads_bps=[1e9])

    def test_explicit_offered_loads(self):
        chain = simple_chain()
        loads = [chain.bandwidth_bps(64) * 0.5, chain.bandwidth_bps(256) * 0.9]
        expected = [
            run_packet_sweep_vector(chain, 64, 200, offered_load_bps=loads[0]),
            run_packet_sweep_vector(chain, 256, 200,
                                    offered_load_bps=loads[1]),
        ]
        assert run_packet_sweep_vector_batch(
            chain, [64, 256], 200, offered_loads_bps=loads) == expected

    def test_single_packet_trains(self):
        """packet_count=1 exercises the degenerate duration window."""
        chain = simple_chain()
        expected = [run_packet_sweep_vector(chain, size, 1)
                    for size in (64, 1_024)]
        assert run_packet_sweep_vector_batch(chain, [64, 1_024], 1) == expected
