"""The closed-form vector kernel vs the scalar (DES-reference) loop.

The kernel's whole contract is *exact integer equality* with the
per-Transaction scalar path -- these tests pin it with hypothesis over
random stage configurations and train shapes, and check the physical
sanity property that adding pipeline stages never increases throughput.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import (
    PipelineChain,
    PipelineStage,
    run_packet_sweep,
    run_packet_sweep_reference,
)
from repro.sim.vector import (
    ENGINES,
    chain_supports_vector,
    process_batch_vector,
    resolve_engine,
    run_packet_sweep_vector,
    simulate_train,
    simulate_train_reference,
)

#: Realistic clock frequencies (MHz) drawn from the catalog's range,
#: including the non-integer-period 322.265625 MHz Ethernet clock.
FREQS = (100.0, 250.0, 322.265625, 500.0, 1_562.5)
WIDTHS = (8, 64, 256, 512)


@st.composite
def chains(draw, max_stages: int = 4) -> PipelineChain:
    count = draw(st.integers(1, max_stages))
    stages = [
        PipelineStage(
            f"s{index}",
            ClockDomain(f"c{index}", draw(st.sampled_from(FREQS))),
            draw(st.sampled_from(WIDTHS)),
            latency_cycles=draw(st.integers(0, 24)),
            initiation_interval=draw(st.integers(1, 4)),
            per_transaction_overhead_cycles=draw(st.integers(0, 8)),
        )
        for index in range(count)
    ]
    return PipelineChain("prop", stages)


@st.composite
def trains(draw, max_packets: int = 40):
    count = draw(st.integers(1, max_packets))
    gaps = draw(st.lists(st.integers(0, 60_000),
                         min_size=count, max_size=count))
    arrivals = np.cumsum(np.asarray(gaps, dtype=np.int64))
    sizes = draw(st.one_of(
        st.integers(64, 1_500),
        st.lists(st.integers(1, 4_096), min_size=count, max_size=count),
    ))
    return arrivals, sizes


class TestTrainExactness:
    @settings(max_examples=60, deadline=None)
    @given(chain=chains(), train=trains())
    def test_vector_matches_scalar_packet_for_packet(self, chain, train):
        arrivals, sizes = train
        size_list = ([sizes] * len(arrivals) if isinstance(sizes, int)
                     else list(sizes))
        chain.reset()
        expected = simulate_train_reference(chain, arrivals.tolist(), size_list)
        expected_state = [(s._next_free_ps, s.transactions_processed, s.busy_ps)
                          for s in chain.stages]
        chain.reset()
        vector_sizes = (sizes if isinstance(sizes, int)
                        else np.asarray(sizes, dtype=np.int64))
        timing = simulate_train(chain, arrivals, vector_sizes)
        assert timing.completed_ps.tolist() == expected
        assert [(s._next_free_ps, s.transactions_processed, s.busy_ps)
                for s in chain.stages] == expected_state

    @settings(max_examples=40, deadline=None)
    @given(chain=chains(), train=trains(max_packets=24),
           split=st.integers(1, 23))
    def test_split_train_equals_whole_train(self, chain, train, split):
        """Carried-in stage occupancy between trains is folded exactly."""
        arrivals, sizes = train
        if split >= len(arrivals):
            split = len(arrivals) - 1
        if split < 1:
            return
        vector_sizes = (sizes if isinstance(sizes, int)
                        else np.asarray(sizes, dtype=np.int64))
        chain.reset()
        whole = simulate_train(chain, arrivals, vector_sizes)
        chain.reset()
        head_sizes = (vector_sizes if isinstance(sizes, int)
                      else vector_sizes[:split])
        tail_sizes = (vector_sizes if isinstance(sizes, int)
                      else vector_sizes[split:])
        head = simulate_train(chain, arrivals[:split], head_sizes)
        tail = simulate_train(chain, arrivals[split:], tail_sizes)
        assert (head.completed_ps.tolist() + tail.completed_ps.tolist()
                == whole.completed_ps.tolist())

    @settings(max_examples=40, deadline=None)
    @given(chain=chains(), size=st.integers(64, 1_500),
           count=st.integers(2, 400))
    def test_sweep_floats_match_reference(self, chain, size, count):
        expected = run_packet_sweep_reference(
            chain, packet_size_bytes=size, packet_count=count)
        actual = run_packet_sweep_vector(
            chain, packet_size_bytes=size, packet_count=count)
        assert actual == expected


class TestThroughputMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(chain=chains(max_stages=3), size=st.integers(64, 1_500),
           freq=st.sampled_from(FREQS), width=st.sampled_from(WIDTHS),
           latency=st.integers(0, 24))
    def test_extra_pipelined_stage_never_raises_throughput(
            self, chain, size, freq, width, latency):
        """An extra stage never helps, up to one clock edge of rounding.

        Throughput is measured over the ``last - first`` completion
        window.  The extra stage re-aligns both endpoints to its own
        clock edges, which can shrink the window by at most one period
        (and its tail can legally *compress* absolute completion times
        -- cut-through forwards the first beat, so a wider final stage
        drains faster).  Beyond that one-edge rounding slack, throughput
        must never increase.
        """
        offered = chain.bandwidth_bps(size) * 0.98
        base, _ = run_packet_sweep_vector(
            chain, packet_size_bytes=size, packet_count=200,
            offered_load_bps=offered)
        extra = PipelineStage(
            "extra", ClockDomain("extra", freq), width,
            latency_cycles=latency, initiation_interval=1)
        extended = PipelineChain("extended", list(chain.stages) + [extra])
        longer, _ = run_packet_sweep_vector(
            extended, packet_size_bytes=size, packet_count=200,
            offered_load_bps=offered)

        gap_ps = size * 8 / offered * 1e12
        arrivals = np.rint(
            np.arange(200, dtype=np.float64) * gap_ps).astype(np.int64)
        chain.reset()
        base_train = simulate_train(chain, arrivals, size)
        extended.reset()
        ext_train = simulate_train(extended, arrivals, size)
        base_window = (base_train.last_completion_ps
                       - base_train.first_completion_ps)
        ext_window = (ext_train.last_completion_ps
                      - ext_train.first_completion_ps)
        period = extra.clock.period_ps
        assert ext_window >= base_window - period
        if base_window > period:
            assert longer * (base_window - period) <= base * base_window * (
                1.0 + 1e-12)


class TestEngineSelection:
    def _chain(self):
        return PipelineChain("engine", [
            PipelineStage("s", ClockDomain("c", 250.0), 64),
        ])

    def test_known_engines(self):
        assert ENGINES == ("auto", "vector", "des")

    def test_auto_picks_vector_for_analytic_chain(self):
        chain = self._chain()
        assert chain_supports_vector(chain)
        assert resolve_engine(chain, "auto") is True
        assert resolve_engine(chain, "vector") is True
        assert resolve_engine(chain, "des") is False

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine(self._chain(), "warp")

    def test_subclassed_stage_downgrades_auto_and_blocks_vector(self):
        class OddStage(PipelineStage):
            pass

        chain = PipelineChain("odd", [
            OddStage("s", ClockDomain("c", 250.0), 64),
        ])
        assert not chain_supports_vector(chain)
        assert resolve_engine(chain, "auto") is False
        with pytest.raises(ConfigurationError):
            resolve_engine(chain, "vector")

    def test_sweep_identical_across_engines(self):
        chain = self._chain()
        des = run_packet_sweep(chain, 256, 500, engine="des")
        vec = run_packet_sweep(chain, 256, 500, engine="vector")
        auto = run_packet_sweep(chain, 256, 500, engine="auto")
        assert des == vec == auto


class TestTrainValidation:
    def _chain(self):
        return PipelineChain("v", [
            PipelineStage("s", ClockDomain("c", 250.0), 64),
        ])

    def test_empty_train_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_train(self._chain(), np.asarray([], dtype=np.int64), 64)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_train(self._chain(),
                           np.asarray([0, 10], dtype=np.int64),
                           np.asarray([64], dtype=np.int64))

    def test_zero_count_batch_is_noop(self):
        chain = self._chain()
        assert process_batch_vector(chain, 64, 100.0, 0, 0) == (0, 0, 0)
        assert chain.stages[0].transactions_processed == 0

    def test_timing_accessors(self):
        chain = self._chain()
        arrivals = np.asarray([0, 1_000], dtype=np.int64)
        timing = simulate_train(chain, arrivals, 64)
        assert len(timing) == 2
        assert timing.first_completion_ps == int(timing.completed_ps[0])
        assert timing.last_completion_ps == int(timing.completed_ps[-1])
        assert timing.total_latency_ps == int(timing.latencies_ps.sum())
        assert all(isinstance(v, int) for v in timing.latencies_list())
