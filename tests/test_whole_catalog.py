"""Whole-catalog coverage: every device builds, runs, and measures."""

import pytest

from repro.adapters.toolchain import BuildFlow
from repro.core.host_software import ControlPlane
from repro.core.rbb.memory import MemoryAccess, MemoryRbb
from repro.core.shell import build_unified_shell
from repro.platform.catalog import all_devices, device_by_name

DEVICE_NAMES = [device.name for device in all_devices()]


class TestEveryCatalogDevice:
    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_unified_shell_builds_through_the_flow(self, name):
        device = device_by_name(name)
        shell = build_unified_shell(device)
        bundle = BuildFlow(device).build("catalog-probe", shell.modules())
        assert bundle.bitstream.device_name == name

    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_command_bring_up_clean_everywhere(self, name):
        control = ControlPlane(build_unified_shell(device_by_name(name)))
        control.command_full_init()
        assert control.kernel.commands_failed == 0

    @pytest.mark.parametrize("name", DEVICE_NAMES)
    def test_shell_instances_match_board_peripherals(self, name):
        device = device_by_name(name)
        shell = build_unified_shell(device)
        for rbb in shell.rbbs.values():
            required = rbb.instance.requires_peripheral
            if required is None:
                continue
            from repro.adapters.device_adapter import satisfying_kinds

            assert any(device.has_peripheral(kind)
                       for kind in satisfying_kinds(required)), (name, rbb.name)


class TestDdr3Path:
    def test_zynq_board_gets_ddr3_controller(self):
        shell = build_unified_shell(device_by_name("device-zynq-edge"))
        assert shell.memory.selected_instance_name == "ddr3-xilinx"

    def test_ddr3_timing_selected_with_instance(self):
        rbb = MemoryRbb()
        rbb.select_instance("ddr3-xilinx")
        assert rbb.timing.tck_ps == 1_250
        rbb.select_instance("ddr4-xilinx")
        assert rbb.timing.tck_ps == 833

    def test_ddr3_slower_than_ddr4_sequential(self):
        def sequential_bandwidth(instance):
            rbb = MemoryRbb()
            rbb.select_instance(instance)
            rbb.ex_functions["hot_cache"].enabled = False
            accesses = [MemoryAccess(address=index * 64) for index in range(2_000)]
            return rbb.run_accesses(accesses).bandwidth_gbps

        assert sequential_bandwidth("ddr3-xilinx") < sequential_bandwidth("ddr4-xilinx")

    def test_legacy_families_avoid_uram_ips(self):
        for name in ("device-zynq-edge", "device-vu125-legacy"):
            device = device_by_name(name)
            shell = build_unified_shell(device)
            assert shell.resources().uram == 0
