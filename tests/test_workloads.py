"""Tests for the workload generators and framework benchmarks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rbb.memory import MemoryRbb
from repro.errors import ConfigurationError
from repro.workloads.database import (
    AccessMode,
    VectorDatabase,
    full_sweep,
    run_access_benchmark,
    vectors_per_access,
)
from repro.workloads.matmul import (
    MatmulThroughputModel,
    blocked_matmul,
    reference_matmul,
    run_iterations,
)
from repro.workloads.packets import MAX_FRAME_BYTES, MIN_FRAME_BYTES, Packet, PacketGenerator
from repro.workloads.tcp import TCP_HEADER_BYTES, payload_sweep, run_tcp_benchmark


class TestPacketGenerator:
    def test_deterministic_with_seed(self):
        first = PacketGenerator(seed=9).uniform_stream(20, 256)
        second = PacketGenerator(seed=9).uniform_stream(20, 256)
        assert [p.flow for p in first] == [p.flow for p in second]

    def test_flow_count_respected(self):
        packets = PacketGenerator().uniform_stream(100, 256, flow_count=8)
        assert len({p.flow for p in packets}) == 8

    def test_arrivals_paced_at_line_rate(self):
        packets = PacketGenerator().uniform_stream(10, 1_250, line_rate_gbps=100.0)
        gap = packets[1].arrival_ps - packets[0].arrival_ps
        assert gap == pytest.approx(100_000, rel=0.01)  # 1250 B at 100 Gbps

    def test_frame_size_limits_enforced(self):
        with pytest.raises(ValueError):
            Packet(PacketGenerator().flow(1), MIN_FRAME_BYTES - 1, dst_mac=1)
        with pytest.raises(ValueError):
            Packet(PacketGenerator().flow(1), MAX_FRAME_BYTES + 1, dst_mac=1)

    def test_multicast_and_foreign_fractions(self):
        packets = PacketGenerator(seed=5).uniform_stream(
            1_000, 256, multicast_fraction=0.2, foreign_fraction=0.2
        )
        multicast = sum(1 for p in packets if p.is_multicast)
        assert 120 < multicast < 280

    def test_flow_hash_stable(self):
        flow = PacketGenerator().flow(3)
        assert flow.hash32() == flow.hash32()

    def test_imix_mixes_sizes(self):
        packets = PacketGenerator().imix_stream(24)
        assert {p.size_bytes for p in packets} == {64, 576, 1_500}


class TestMatmul:
    def test_blocked_matches_reference(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((64, 64)).astype(np.float32)
        b = rng.standard_normal((64, 64)).astype(np.float32)
        assert np.allclose(blocked_matmul(a, b), reference_matmul(a, b), atol=1e-3)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_blocked_matches_reference_property(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        assert np.allclose(blocked_matmul(a, b, block=8), reference_matmul(a, b), atol=1e-3)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            blocked_matmul(np.zeros((4, 8)), np.zeros((4, 8)))

    def test_throughput_scales_with_parallelism(self):
        model = MatmulThroughputModel()
        sweep = dict(model.sweep((4, 8, 16)))
        assert sweep[8] == pytest.approx(2 * sweep[4], rel=0.01)
        assert sweep[16] == pytest.approx(4 * sweep[4], rel=0.02)

    def test_paper_scale(self):
        # Figure 18b: roughly 1K-4K matmuls/s across x4-x16.
        model = MatmulThroughputModel()
        assert 500 < model.matmuls_per_second(4) < 2_000
        assert 2_000 < model.matmuls_per_second(16) < 6_000

    def test_invalid_parallelism(self):
        with pytest.raises(ConfigurationError):
            MatmulThroughputModel().matmuls_per_second(0)

    def test_run_iterations_duration(self):
        assert run_iterations(16) < run_iterations(4)

    def test_dsp_accounting(self):
        assert MatmulThroughputModel().dsps_used(16) == 80


class TestDatabase:
    def test_functional_read_write(self):
        database = VectorDatabase(capacity_vectors=1_024)
        database.write(100, 0xDEAD_BEEF)
        assert database.read(100) == 0xDEAD_BEEF

    def test_write_masks_to_32_bits(self):
        database = VectorDatabase(capacity_vectors=64)
        database.write(0, 1 << 33)
        assert database.read(0) == 0

    def test_sequential_addresses_are_contiguous(self):
        database = VectorDatabase()
        addresses = database.addresses(AccessMode.SEQUENTIAL, 320)
        strides = {b - a for a, b in zip(addresses, addresses[1:])}
        assert strides == {64}

    def test_fixed_addresses_cycle(self):
        database = VectorDatabase()
        addresses = database.addresses(AccessMode.FIXED, 64 * 16)
        assert len(set(addresses)) == 8

    def test_amplification_model(self):
        assert vectors_per_access(AccessMode.SEQUENTIAL) == 16
        assert vectors_per_access(AccessMode.RANDOM) == 1

    def test_figure18c_ordering(self):
        memory = MemoryRbb()
        memory.ex_functions["hot_cache"].enabled = False
        results = full_sweep(memory, VectorDatabase(), vector_count=16_000)
        assert (results[("sequential", "read")] > results[("fixed", "read")]
                > results[("random", "read")])

    def test_too_small_database_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorDatabase(capacity_vectors=4)


class TestTcp:
    def test_goodput_rises_with_payload(self):
        results = payload_sweep((64, 512, 1_446))
        goodputs = [result.goodput_gbps for result in results]
        assert goodputs == sorted(goodputs)

    def test_latency_rises_with_payload(self):
        results = payload_sweep((64, 1_446))
        assert results[0].latency_us < results[1].latency_us

    def test_latency_is_tens_of_microseconds(self):
        # Figure 18d's y-axis: host TCP stacks dominate.
        result = run_tcp_benchmark(512)
        assert 20.0 < result.latency_us < 30.0

    def test_goodput_below_line_rate_by_header_share(self):
        result = run_tcp_benchmark(1_446, packet_count=500)
        assert result.goodput_gbps < 100.0 * 1_446 / (1_446 + TCP_HEADER_BYTES)

    def test_framework_latency_offsets_are_second_order(self):
        lean = run_tcp_benchmark(512, framework_latency_ns=8.0)
        heavy = run_tcp_benchmark(512, framework_latency_ns=15.0)
        assert heavy.latency_us >= lean.latency_us
        assert (heavy.latency_us - lean.latency_us) / lean.latency_us < 0.01

    def test_zero_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tcp_benchmark(0)
